"""Figure 6(c): single-node vs MPP (with/without redistributed views).

Compares ProbKB (PostgreSQL role), ProbKB-pn (Greenplum, no
redistributed matviews), and ProbKB-p (Greenplum, tuned) over the S2
fact sweep.  Expected shape: both MPP variants beat single-node
(paper: ≥3.1x), and the redistributed views add a further gap
(paper: up to 6.3x total).
"""


from repro import ProbKB
from repro.bench import format_series, format_table, scaled, write_result
from repro.core import MPPBackend
from repro.datasets import s2_kb

from bench_fig6a_vary_rules import ground_once_probkb

FACT_COUNTS = [4000, 10000, 25000, 60000]
NSEG = 8


def test_fig6c_mpp_variants(reverb_kb, benchmark):
    counts = [scaled(n) for n in FACT_COUNTS]

    def workload():
        rows = []
        series = {"ProbKB": [], "ProbKB-pn": [], "ProbKB-p": []}
        for n_facts in counts:
            kb = s2_kb(reverb_kb, n_facts, seed=1)
            single_s, inferred = ground_once_probkb(kb, "single")
            naive_s, _ = ground_once_probkb(
                kb, MPPBackend(nseg=NSEG, use_matviews=False)
            )
            tuned_s, _ = ground_once_probkb(
                kb, MPPBackend(nseg=NSEG, use_matviews=True)
            )
            rows.append((n_facts, single_s, naive_s, tuned_s, inferred))
            series["ProbKB"].append((n_facts, single_s))
            series["ProbKB-pn"].append((n_facts, naive_s))
            series["ProbKB-p"].append((n_facts, tuned_s))
        return rows, series

    rows, series = benchmark.pedantic(workload, rounds=1, iterations=1)

    table = format_table(
        ["# facts", "ProbKB (s)", "ProbKB-pn (s)", "ProbKB-p (s)", "# inferred"],
        rows,
        title=f"Figure 6(c): MPP variants over S2 ({NSEG} segments; modelled seconds)",
    )
    lines = [table, ""]
    for name, points in series.items():
        lines.append(format_series(name, points, "# facts", "seconds"))
    last = rows[-1]
    lines.append(
        f"largest size: ProbKB-pn speedup {last[1] / last[2]:.1f}x, "
        f"ProbKB-p speedup {last[1] / last[3]:.1f}x "
        "(paper: >=3.1x and up to 6.3x on 32 segments)"
    )
    write_result("fig6c_mpp_variants", "\n".join(lines))

    _, single_s, naive_s, tuned_s, _ = rows[-1]
    assert naive_s < single_s  # MPP beats single-node even untuned
    assert tuned_s < naive_s  # redistributed matviews help further
    # sub-linear speedup: motions prevent a perfect NSEG-fold win
    assert single_s / tuned_s < NSEG
