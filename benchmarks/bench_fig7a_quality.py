"""Figure 7(a) + Table 4: precision of inferred facts under the six
quality-control configurations.

Runs the Section 6.2 protocol on the generated ReVerb-Sherlock KB:
iterate grounding, judge each iteration's new facts with the oracle
(standing in for the paper's two human judges), and report precision
vs the estimated number of correct facts.
"""


from repro.bench import format_series, format_table, write_result
from repro.quality import run_figure7a

#: the paper's reported endpoints (#facts inferred, precision)
PAPER_ENDPOINTS = {
    "no-SC no-RC": (4800, 0.14),
    "no-SC RC top 10%": (9962, 0.72),
    "SC no-RC": (23164, 0.55),
    "SC RC top 50%": (22654, 0.65),
    "SC RC top 20%": (16394, 0.75),
}


def test_fig7a_quality(reverb_kb, benchmark):
    results = benchmark.pedantic(
        lambda: run_figure7a(reverb_kb, max_iterations=12, explosion_cap=300_000),
        rounds=1,
        iterations=1,
    )

    rows = []
    lines = []
    by_label = {}
    for result in results:
        label = result.config.describe()
        by_label[label] = result
        paper = PAPER_ENDPOINTS.get(label)
        rows.append(
            (
                label,
                result.total_new_facts,
                round(result.estimated_correct),
                f"{result.overall_precision:.2f}",
                f"{paper[1]:.2f}" if paper else "-",
                "yes" if result.exploded else "no",
            )
        )
        lines.append(
            format_series(
                label, result.series(), "est. correct facts", "precision"
            )
        )
    table = format_table(
        ["config", "# inferred", "est. correct", "precision", "paper prec.", "exploded"],
        rows,
        title="Figure 7(a)/Table 4: precision under quality control",
    )
    write_result("fig7a_quality", table + "\n\n" + "\n".join(lines))

    base = by_label["no-SC no-RC"]
    # every quality-control configuration beats the raw run on precision
    for label, result in by_label.items():
        if label != "no-SC no-RC":
            assert result.overall_precision > base.overall_precision
    # the no-QC precision decays as errors propagate (paper: drops fast)
    assert base.points[-1].precision < base.points[0].precision
    # constraints preserve recall better than aggressive rule cleaning
    assert (
        by_label["SC no-RC"].estimated_correct
        > by_label["no-SC RC top 10%"].estimated_correct
    )
