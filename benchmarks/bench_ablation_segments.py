"""Ablation: MPP speedup vs segment count.

Section 6.1.3 notes the speedup is "not perfectly linear with the
number of segments (32)" because intermediate results must be
re-shipped.  This ablation sweeps the segment count on a fixed S2
workload and reports the speedup curve and its parallel efficiency.
"""


from repro.bench import format_table, scaled, write_result
from repro.core import MPPBackend
from repro.datasets import s2_kb

from bench_fig6a_vary_rules import ground_once_probkb

SEGMENTS = [1, 2, 4, 8, 16]


def test_ablation_segments(reverb_kb, benchmark):
    kb = s2_kb(reverb_kb, scaled(20000), seed=3)

    def workload():
        rows = []
        base_seconds = None
        for nseg in SEGMENTS:
            seconds, _ = ground_once_probkb(
                kb, MPPBackend(nseg=nseg, use_matviews=True)
            )
            if base_seconds is None:
                base_seconds = seconds
            speedup = base_seconds / seconds
            rows.append((nseg, seconds, speedup, speedup / nseg))
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = format_table(
        ["segments", "seconds", "speedup", "efficiency"],
        rows,
        title="Ablation: ProbKB-p grounding time vs segment count (S2 workload)",
    )
    write_result("ablation_segments", report)

    seconds = [row[1] for row in rows]
    # more segments help...
    assert seconds[-1] < seconds[0]
    # ...but sub-linearly: motions (data dependencies) cap the speedup
    final_speedup = rows[-1][2]
    assert 1.0 < final_speedup < SEGMENTS[-1]
