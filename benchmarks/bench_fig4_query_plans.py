"""Figure 4: MPP query plans with and without redistributed
materialized views.

Joins M3 against a synthetic TΠ on an 8-segment cluster and prints the
EXPLAIN ANALYZE trees for the optimized (redistributed matviews) and
naive configurations.  The paper's observation: the tuned plan only
redistributes the small M3 table and the intermediate join result,
while the naive plan must move the large facts table (broadcast or
redistribute both sides).
"""

import random


from repro import Fact, KnowledgeBase, ProbKB, Relation
from repro.bench import scaled, write_result
from repro.core import Atom, HornClause, MPPBackend, ground_atoms_plan


def synthetic_kb(n_facts, n_rules=40, seed=0):
    """Facts for pattern-3 rules (the paper joins M3 with synthetic TΠ).

    Spread across many relations — ReVerb has 83K of them — so the
    (R, C1, C2) distribution keys spread rows across all segments.
    """
    rng = random.Random(seed)
    n_entities = max(50, n_facts // 3)
    entities = [f"e{i}" for i in range(n_entities)]
    body_relations = [f"rel_{i}" for i in range(2 * n_rules)]
    facts = []
    seen = set()
    while len(facts) < n_facts:
        relation = rng.choice(body_relations)
        key = (relation, rng.choice(entities), rng.choice(entities))
        if key in seen:
            continue
        seen.add(key)
        facts.append(Fact(key[0], key[1], "T", key[2], "T", 0.9))
    rules = [
        HornClause.make(
            Atom(f"head_rel_{i}", ("x", "y")),
            [
                Atom(body_relations[2 * i], ("z", "x")),
                Atom(body_relations[2 * i + 1], ("z", "y")),
            ],
            weight=0.5,
            var_classes={"x": "T", "y": "T", "z": "T"},
        )
        for i in range(n_rules)
    ]
    relations = body_relations + [f"head_rel_{i}" for i in range(n_rules)]
    return KnowledgeBase(
        classes={"T": set(entities)},
        relations=[Relation(r, "T", "T") for r in relations],
        facts=facts,
        rules=rules,
        validate=False,
    )


def run_query13(kb, use_matviews):
    system = ProbKB(
        kb,
        backend=MPPBackend(nseg=8, use_matviews=use_matviews),
        apply_constraints=False,
    )
    backend = system.backend
    before = backend.elapsed_seconds
    backend.query(ground_atoms_plan(3, backend, mln_alias="M3"))
    seconds = backend.elapsed_seconds - before
    return system, backend.explain_last(), seconds


def test_fig4_query_plans(benchmark):
    kb = synthetic_kb(scaled(40_000))

    def workload():
        _, optimized_plan, optimized_s = run_query13(kb, use_matviews=True)
        _, naive_plan, naive_s = run_query13(kb, use_matviews=False)
        return optimized_plan, optimized_s, naive_plan, naive_s

    optimized_plan, optimized_s, naive_plan, naive_s = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    report = "\n".join(
        [
            "Figure 4: Query 1-3 plans on the 8-segment MPP simulator",
            "",
            f"WITH redistributed matviews (ProbKB-p): {optimized_s * 1e3:.1f} ms modelled",
            optimized_plan,
            "",
            f"WITHOUT matviews (naive): {naive_s * 1e3:.1f} ms modelled",
            naive_plan,
            "",
            f"speedup from join collocation: {naive_s / optimized_s:.2f}x "
            "(paper reports 8.06s broadcast motion collapsing to 0.85s redistribute)",
        ]
    )
    write_result("fig4_query_plans", report)

    # tuned plan: facts-table scans are collocated; only small/intermediate
    # data moves. The naive plan must move the big table or broadcast.
    assert optimized_s < naive_s
    assert "T0" in optimized_plan and "Tx" in optimized_plan
    assert "Motion" in naive_plan
