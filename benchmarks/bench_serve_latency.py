"""Serving-layer query latency: cold cache vs warm cache.

The paper's responsivity argument (Section 2.2) is that materializing
inferred results makes query-time access cheap; the serving layer adds
an LRU result cache on top.  This benchmark quantifies both hops on the
bench-scale ReVerb-Sherlock KB: per-query p50/p99 with every query a
cache miss (cold) vs repeat traffic (warm), plus the hit rate achieved.
"""

import time

from repro import InferenceConfig, ProbKB
from repro.bench import format_table, scaled, write_result
from repro.serve import KBService, LatencyRing, ServiceConfig


def percentiles(samples):
    ring = LatencyRing(capacity=max(1, len(samples)))
    for sample in samples:
        ring.observe(sample)
    return ring.percentile(50), ring.percentile(99)


def query_patterns(kb, limit):
    """Distinct single-column patterns drawn from the KB's own facts."""
    patterns, seen = [], set()
    for fact in kb.facts:
        for pattern in (
            {"relation": fact.relation},
            {"subject": fact.subject},
            {"relation": fact.relation, "subject": fact.subject},
        ):
            key = tuple(sorted(pattern.items()))
            if key not in seen:
                seen.add(key)
                patterns.append(pattern)
        if len(patterns) >= limit:
            return patterns[:limit]
    return patterns


def timed_queries(service, patterns, rounds=1):
    samples = []
    for _ in range(rounds):
        for pattern in patterns:
            started = time.perf_counter()
            service.query(**pattern)
            samples.append(time.perf_counter() - started)
    return samples


def test_bench_serve_latency(benchmark, reverb_kb):
    system = ProbKB(reverb_kb.kb, backend="single")
    system.ground(max_iterations=3)
    system.materialize_marginals(config=InferenceConfig(num_sweeps=60, seed=0))
    patterns = query_patterns(reverb_kb.kb, scaled(150))

    def workload():
        service = KBService(system, ServiceConfig(cache_size=4 * len(patterns)))
        cold = timed_queries(service, patterns)  # every pattern a miss
        warm = timed_queries(service, patterns, rounds=3)  # repeat traffic
        return cold, warm, service.stats()

    cold, warm, stats = benchmark.pedantic(workload, rounds=1, iterations=1)

    cold_p50, cold_p99 = percentiles(cold)
    warm_p50, warm_p99 = percentiles(warm)
    rows = [
        ("cold cache", len(cold), cold_p50 * 1e6, cold_p99 * 1e6, 0.0),
        (
            "warm cache",
            len(warm),
            warm_p50 * 1e6,
            warm_p99 * 1e6,
            stats["cache"]["hit_rate"],
        ),
    ]
    report = format_table(
        ["phase", "queries", "p50 (us)", "p99 (us)", "hit rate"],
        rows,
        title=(
            f"Serving latency over {system.fact_count()} facts "
            f"(speedup p50: {cold_p50 / max(warm_p50, 1e-9):.1f}x)"
        ),
    )
    write_result("serve_latency", report)

    assert stats["cache"]["hit_rate"] > 0.5  # repeat traffic mostly hits
    assert warm_p50 <= cold_p50  # cached reads are no slower
