"""Ablation: batch rule application vs per-rule queries on the SAME
engine.

Table 3 and Figure 6 compare full systems; this ablation isolates the
paper's core claim — O(k) batch queries beat O(n) per-rule queries —
by holding the engine constant (our single-node engine) and counting
the statements each strategy issues.
"""


from repro import GroundingConfig, ProbKB, TuffyT
from repro.bench import format_table, scaled, write_result
from repro.datasets import s1_kb

RULE_COUNTS = [200, 1000, 4000]


def test_ablation_batching(reverb_kb, benchmark):
    counts = [scaled(n) for n in RULE_COUNTS]

    def workload():
        rows = []
        for n_rules in counts:
            kb = s1_kb(reverb_kb, n_rules, seed=2)

            system = ProbKB(kb, grounding=GroundingConfig(apply_constraints=False))
            queries_before = system.backend.db.clock.queries
            system.grounder.ground_atoms_iteration(1)
            batch_queries = system.backend.db.clock.queries - queries_before

            tuffy = TuffyT(kb)
            queries_before = tuffy.db.clock.queries
            tuffy.ground_atoms_iteration(1)
            perrule_queries = tuffy.db.clock.queries - queries_before

            rows.append((n_rules, batch_queries, perrule_queries))
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = format_table(
        ["# rules", "batch queries/iter", "per-rule queries/iter"],
        rows,
        title=(
            "Ablation: statements per grounding iteration — batch (ProbKB) "
            "is O(k≤6 partitions), per-rule (Tuffy) is O(n rules).\n"
            "Paper: 6 queries vs 30,912 for the Sherlock MLN."
        ),
    )
    write_result("ablation_batching", report)

    for n_rules, batch, perrule in rows:
        assert batch <= 8  # 6 partition queries + merge bookkeeping
        assert perrule >= n_rules  # one SELECT per rule at minimum
    # batch query count does not grow with the rule count
    assert rows[0][1] == rows[-1][1]
