"""Ablation: learned-weight rule cleaning vs Sherlock-score cleaning.

Section 6.2.3 notes the pitfall of score-based cleaning: "the learned
scores do not always reflect the real quality of the rules".  This
extension experiment trains tied MLN weights by pseudo-likelihood on a
labelled snapshot (the oracle judge standing in for annotators), drops
rules whose learned weight collapses, and compares the resulting rule
set's precision against top-θ score cleaning.
"""


from repro import GroundingConfig, ProbKB
from repro.bench import format_table, scaled, write_result
from repro.core import KnowledgeBase
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.learn import build_tied_graph, learn_weights, observed_from_judge
from repro.quality import QualityConfig, run_quality_experiment, cleaned_kb

WEIGHT_THRESHOLD = 0.3


def test_ablation_learned_weights(benchmark):
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=scaled(150), seed=8), seed=8)
    )

    def workload():
        # train on a constrained snapshot labelled by the oracle
        trainer = ProbKB(
            generated.kb, grounding=GroundingConfig(apply_constraints=True)
        )
        trainer.ground(max_iterations=5)
        tied = build_tied_graph(trainer)
        observed = observed_from_judge(trainer, generated.judge)
        learned = learn_weights(
            tied, observed, iterations=35, learning_rate=0.08, l2=0.005
        )
        fired = {p for p in tied.parameter_of if p >= 0}
        kept_rules = [
            rule
            for index, rule in enumerate(tied.rules)
            if index not in fired or learned.weights[index] >= WEIGHT_THRESHOLD
        ]
        learned_kb = KnowledgeBase(
            classes=generated.kb.classes,
            relations=generated.kb.relations.values(),
            facts=generated.kb.facts,
            rules=kept_rules,
            constraints=generated.kb.constraints,
            validate=False,
        )

        def evaluate(kb, label):
            # same generated world/judge, different rule set under test
            trial = type(generated)(**{**generated.__dict__, "kb": kb})
            return run_quality_experiment(
                trial,
                QualityConfig(use_constraints=True, theta=1.0, label=label),
                max_iterations=8,
            )

        learned_outcome = evaluate(learned_kb, "learned-weight cleaning")
        score_outcome = evaluate(
            cleaned_kb(generated.kb, 0.5), "score top 50% cleaning"
        )
        baseline = evaluate(generated.kb, "no rule cleaning")
        rule_counts = {
            "learned": len(kept_rules),
            "score": len(cleaned_kb(generated.kb, 0.5).rules),
            "none": len(generated.kb.rules),
        }
        return learned_outcome, score_outcome, baseline, rule_counts

    learned_outcome, score_outcome, baseline, rule_counts = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    rows = [
        (
            "learned-weight cleaning",
            rule_counts["learned"],
            learned_outcome.total_new_facts,
            f"{learned_outcome.overall_precision:.2f}",
        ),
        (
            "score top 50%",
            rule_counts["score"],
            score_outcome.total_new_facts,
            f"{score_outcome.overall_precision:.2f}",
        ),
        (
            "no cleaning",
            rule_counts["none"],
            baseline.total_new_facts,
            f"{baseline.overall_precision:.2f}",
        ),
    ]
    report = format_table(
        ["strategy", "rules kept", "# inferred", "precision"],
        rows,
        title=(
            "Ablation (extension): rule cleaning via learned MLN weights "
            f"(drop weight < {WEIGHT_THRESHOLD}) vs Sherlock-score top-θ"
        ),
    )
    write_result("ablation_learned_weights", report)

    # learned cleaning keeps more of the correct rules: it recovers more
    # correct facts than score cleaning at comparable precision, and it
    # clearly beats the uncleaned baseline's precision
    assert learned_outcome.estimated_correct > score_outcome.estimated_correct
    assert learned_outcome.overall_precision > baseline.overall_precision
