"""Calibration of the static plan estimator against executed plans.

`repro explain` predicts rows and modelled seconds for every grounding
query without executing anything.  This benchmark runs the same queries
for real on the 8-segment MPP simulator and reports the q-error
(max(est/actual, actual/est), the planner-literature accuracy metric)
per query, across the paper example and fig4-style synthetic KBs.

Acceptance: median row q-error <= 4.  The machine-readable result is
checked in at benchmarks/results/explain_accuracy.json.
"""

import json
import os
import statistics

from repro import GroundingConfig, ProbKB
from repro.analyze import PlanEnvironment, estimate_plans
from repro.bench import scaled, write_result
from repro.bench.reporting import results_dir
from repro.core import MPPBackend, ground_atoms_plan, ground_factors_plan
from repro.datasets.paper_example import paper_kb

from bench_fig4_query_plans import synthetic_kb

NSEG = 8


def q_error(estimate, actual, floor=1.0):
    """Symmetric relative error with both sides floored (1 row / 1 us),
    so near-empty results compare on the same scale as everything else
    (predicting 1 row when 0 arrive is a q-error of 1, not infinity)."""
    est = max(estimate, floor)
    act = max(actual, floor)
    return max(est / act, act / est)


def measure_workload(label, kb, use_matviews=True):
    """Estimate, then execute, every grounding query of one KB."""
    backend = MPPBackend(nseg=NSEG, use_matviews=use_matviews)
    # the gate's warnings are this benchmark's subject, not its noise
    system = ProbKB(
        kb,
        backend=backend,
        grounding=GroundingConfig(apply_constraints=False, analysis="off"),
    )
    report = estimate_plans(system.kb, PlanEnvironment.from_backend(backend))
    builders = {"1": ground_atoms_plan, "2": ground_factors_plan}
    records = []
    for query in report.queries:
        algorithm = query.name.split(" ")[1].split("-")[0]  # "Query 1-3" -> "1"
        plan = builders[algorithm](query.partition, backend)
        before = backend.elapsed_seconds
        actual_rows = len(backend.query(plan).rows)
        actual_seconds = backend.elapsed_seconds - before
        records.append(
            {
                "workload": label,
                "query": query.name,
                "est_rows": query.estimated_rows,
                "actual_rows": actual_rows,
                "q_error_rows": round(
                    q_error(query.estimated_rows, actual_rows), 4
                ),
                "est_seconds": round(query.estimated_seconds, 6),
                "actual_seconds": round(actual_seconds, 6),
                "q_error_seconds": round(
                    q_error(query.estimated_seconds, actual_seconds, 1e-6), 4
                ),
            }
        )
    backend.close()
    return records


def test_explain_accuracy(benchmark):
    workloads = [
        ("paper_example", paper_kb()),
        ("synthetic_10k", synthetic_kb(scaled(10_000), seed=0)),
        ("synthetic_30k", synthetic_kb(scaled(30_000), seed=1)),
    ]

    def run():
        records = []
        for label, kb in workloads:
            records.extend(measure_workload(label, kb))
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    row_errors = [r["q_error_rows"] for r in records]
    second_errors = [r["q_error_seconds"] for r in records]
    summary = {
        "num_queries": len(records),
        "median_q_error_rows": round(statistics.median(row_errors), 4),
        "max_q_error_rows": round(max(row_errors), 4),
        "median_q_error_seconds": round(statistics.median(second_errors), 4),
        "max_q_error_seconds": round(max(second_errors), 4),
        "queries": records,
    }
    with open(os.path.join(results_dir(), "explain_accuracy.json"), "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    lines = [
        "Static estimator calibration: q-error vs executed grounding queries",
        f"({NSEG}-segment MPP simulator, matviews on)",
        "",
        f"{'workload':<16}{'query':<12}{'est rows':>10}{'actual':>10}"
        f"{'q-err':>8}{'est ms':>10}{'actual ms':>11}",
    ]
    for r in records:
        lines.append(
            f"{r['workload']:<16}{r['query']:<12}{r['est_rows']:>10}"
            f"{r['actual_rows']:>10}{r['q_error_rows']:>8.2f}"
            f"{r['est_seconds'] * 1e3:>10.2f}{r['actual_seconds'] * 1e3:>11.2f}"
        )
    lines += [
        "",
        f"median row q-error    {summary['median_q_error_rows']:.2f}  "
        f"(max {summary['max_q_error_rows']:.2f})",
        f"median time q-error   {summary['median_q_error_seconds']:.2f}  "
        f"(max {summary['max_q_error_seconds']:.2f})",
    ]
    write_result("explain_accuracy", "\n".join(lines))

    # the gate `repro analyze` relies on these estimates; keep them honest
    assert summary["median_q_error_rows"] <= 4.0
