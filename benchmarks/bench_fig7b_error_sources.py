"""Figure 7(b): distribution of error sources behind constraint
violations.

Grounds the KB without quality control, finds every functional-
constraint violation (Query 3's subquery), and categorizes each one
against the generator's ground truth — the reproduction of the paper's
hand-audit of 100 sampled violations.
"""


from repro import GroundingConfig, ProbKB
from repro.bench import format_table, write_result
from repro.quality import CATEGORY_LABELS, categorize_violations

PAPER_DISTRIBUTION = {
    "ambiguity_detected": 0.34,
    "ambiguous_join_key": 0.24,
    "incorrect_rule": 0.33,
    "incorrect_extraction": 0.06,
    "general_types": 0.02,
    "synonyms": 0.01,
    "other": 0.00,
}


def test_fig7b_error_sources(reverb_kb, benchmark):
    def workload():
        system = ProbKB(
            reverb_kb.kb, grounding=GroundingConfig(apply_constraints=False)
        )
        system.ground(max_iterations=2)
        return categorize_violations(system, reverb_kb)

    audit = benchmark.pedantic(workload, rounds=1, iterations=1)
    distribution = audit.distribution()
    counts = audit.counts()

    rows = [
        (
            CATEGORY_LABELS[category],
            counts[category],
            f"{100 * distribution[category]:.0f}%",
            f"{100 * PAPER_DISTRIBUTION[category]:.0f}%",
        )
        for category in CATEGORY_LABELS
    ]
    report = format_table(
        ["error source", "violations", "ours", "paper"],
        rows,
        title=f"Figure 7(b): error sources behind {audit.total} constraint violations",
    )
    write_result("fig7b_error_sources", report)

    assert audit.total > 50
    # the paper's two dominant sources dominate here too
    assert distribution["ambiguity_detected"] >= 0.15
    assert distribution["incorrect_rule"] >= 0.15
    assert (
        distribution["ambiguity_detected"]
        + distribution["incorrect_rule"]
        + distribution["ambiguous_join_key"]
        > 0.5
    )
