"""Delta expansion vs full re-expansion on the ingest path.

The incremental subsystem's pitch (docs/incremental.md): a flush should
cost O(delta), not O(KB).  This benchmark builds a 10k-evidence-fact KB
whose rule chains keep factor-graph components small (the regime the
component-scoped re-sampler is designed for), then lands deltas of 1,
10, and 100 fresh facts through both paths:

``delta``
    A primed :class:`repro.delta.DeltaExpander` — semi-naive delta
    grounding, delta factor joins, re-sample only touched components,
    splice into the stored marginals.
``full``
    The pre-existing path — ``add_evidence`` (atom closure is already
    semi-naive, but TΦ is rebuilt) followed by a componentwise re-sample
    of the whole graph.

Both paths produce bit-identical marginals (asserted); the table
reports wall-clock per flush and the speedup.  The acceptance floor is
5x for single-fact deltas.
"""

import time

from repro import Fact, InferenceConfig, KnowledgeBase, ProbKB, Relation
from repro.bench import format_table, scaled, write_result
from repro.core import Atom, HornClause
from repro.delta import DeltaExpander, componentwise_marginals

NUM_SWEEPS = 20
SEED = 7
NUM_CITIES = 50
DELTA_SIZES = (1, 10, 100)


def make_kb(n_facts, n_spare):
    """n_facts born_in facts over small per-person rule chains."""
    people = [f"p{i}" for i in range(n_facts + n_spare)]
    cities = [f"c{i}" for i in range(NUM_CITIES)]
    classes = {"Person": set(people), "City": set(cities)}
    relations = [
        Relation("born_in", "Person", "City"),
        Relation("live_in", "Person", "City"),
        Relation("grow_up_in", "Person", "City"),
    ]
    facts = [
        Fact("born_in", people[i], "Person", cities[i % NUM_CITIES], "City", 0.9)
        for i in range(n_facts)
    ]

    def rule(head, body, weight):
        return HornClause.make(
            Atom(head, ("x", "y")),
            [Atom(body, ("x", "y"))],
            weight,
            {"x": "Person", "y": "City"},
        )

    rules = [rule("live_in", "born_in", 1.2), rule("grow_up_in", "live_in", 0.8)]
    kb = KnowledgeBase(
        classes=classes, relations=relations, facts=facts, rules=rules
    )
    return kb, people, cities


def delta_batches(people, cities, n_facts):
    """Batches of fresh people: DELTA_SIZES[i] facts each, disjoint."""
    batches, cursor = [], n_facts
    for size in DELTA_SIZES:
        batches.append(
            [
                Fact(
                    "born_in",
                    people[cursor + j],
                    "Person",
                    cities[j % NUM_CITIES],
                    "City",
                    0.9,
                )
                for j in range(size)
            ]
        )
        cursor += size
    return batches


def test_bench_delta_expansion(benchmark):
    n_facts = scaled(10000)
    kb, people, cities = make_kb(n_facts, n_spare=sum(DELTA_SIZES))
    batches = delta_batches(people, cities, n_facts)

    def workload():
        # -- delta path: one primed expander absorbing each flush -----
        system = ProbKB(make_kb(n_facts, sum(DELTA_SIZES))[0], backend="single")
        system.ground()
        expander = DeltaExpander(
            system, inference=InferenceConfig(num_sweeps=NUM_SWEEPS, seed=SEED)
        )
        expander.prime()
        delta_rows = []
        for batch in batches:
            started = time.perf_counter()
            result = expander.expand_delta(batch)
            delta_rows.append(
                (
                    len(batch),
                    time.perf_counter() - started,
                    result.touched_components,
                    result.resampled_variables,
                )
            )

        # -- full path: add_evidence + whole-graph re-sample ----------
        reference = ProbKB(kb, backend="single")
        reference.ground()
        full_seconds = []
        for batch in batches:
            started = time.perf_counter()
            reference.add_evidence(batch)
            marginals = componentwise_marginals(
                reference.factor_rows(), NUM_SWEEPS, SEED
            )
            full_seconds.append(time.perf_counter() - started)
        return system, expander, delta_rows, full_seconds, marginals

    system, expander, delta_rows, full_seconds, full_marginals = (
        benchmark.pedantic(workload, rounds=1, iterations=1)
    )

    # both paths converge to bit-identical marginals over the final KB
    assert expander.marginals == full_marginals

    rows = []
    speedups = []
    for (size, delta_s, components, resampled), full_s in zip(
        delta_rows, full_seconds
    ):
        speedup = full_s / max(delta_s, 1e-9)
        speedups.append(speedup)
        rows.append(
            (
                size,
                delta_s * 1e3,
                full_s * 1e3,
                f"{speedup:.1f}x",
                components,
                resampled,
            )
        )
    report = format_table(
        [
            "delta facts",
            "delta (ms)",
            "full (ms)",
            "speedup",
            "components",
            "resampled vars",
        ],
        rows,
        title=(
            f"Delta vs full expansion on a {system.fact_count()}-fact KB "
            f"({NUM_SWEEPS} sweeps, seed {SEED})"
        ),
    )
    write_result("delta_expansion", report)

    # acceptance: single-fact flushes at least 5x cheaper than full
    assert speedups[0] >= 5.0
