"""Extra benchmark: the marginal-inference engines over a grounded TΦ.

The paper delegates marginal inference to GraphLab's parallel Gibbs
sampler; our substrate provides chromatic Gibbs, loopy BP, and exact
enumeration.  This benchmark grounds the running-example-scale KB and
compares the engines' accuracy (vs exact on a small subgraph) and the
chromatic structure that yields parallel speedup.
"""


from repro import GroundingConfig, ProbKB
from repro.bench import format_table, scaled, write_result
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.infer import GibbsSampler, bp_marginals


def test_inference_engines(benchmark):
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=scaled(150)), seed=5)
    )
    system = ProbKB(
        generated.kb, grounding=GroundingConfig(apply_constraints=True)
    )
    system.ground(max_iterations=6)
    graph = system.factor_graph()

    def workload():
        sampler = GibbsSampler(graph, seed=0)
        gibbs = sampler.run(num_sweeps=200)
        bp = bp_marginals(graph, max_iterations=50)
        agreement = _mean_abs_difference(gibbs.marginals, bp.marginals)
        return gibbs, bp, agreement

    gibbs, bp, agreement = benchmark.pedantic(workload, rounds=1, iterations=1)

    sequential_updates = graph.num_variables
    parallel_speedup = sequential_updates / max(1, gibbs.num_colors)
    rows = [
        ("variables", graph.num_variables),
        ("factors", graph.num_factors),
        ("chromatic colors", gibbs.num_colors),
        ("ideal parallel speedup per sweep", f"{parallel_speedup:.1f}x"),
        ("BP iterations (converged)", f"{bp.iterations} ({bp.converged})"),
        ("mean |gibbs - bp| marginal gap", f"{agreement:.3f}"),
    ]
    report = format_table(
        ["metric", "value"],
        rows,
        title="Inference engines over the grounded factor graph (TΦ -> GraphLab role)",
    )
    write_result("inference_engines", report)

    assert graph.num_variables > 100
    # chromatic scheduling exposes massive per-sweep parallelism
    assert gibbs.num_colors < graph.num_variables / 4
    # the two approximate engines roughly agree
    assert agreement < 0.15


def _mean_abs_difference(first, second):
    keys = set(first) & set(second)
    return sum(abs(first[k] - second[k]) for k in keys) / max(1, len(keys))
