"""Real wall-clock of the inference engines behind the registry API.

The paper delegates marginal inference to GraphLab's parallel chromatic
Gibbs sampler; our registry provides ``gibbs`` (serial or color-parallel
on the worker pool) and ``bp``.  This benchmark grounds the
running-example-scale KB through one :class:`ExpansionSession` and then

- times the ``gibbs`` engine serially and with a 2-worker pool on the
  *same* config otherwise, and **gates on bit-identical marginals** —
  the parallel driver's determinism contract, asserted on every host;
- runs the ``bp`` engine for the accuracy cross-check the old version
  of this benchmark reported (mean |gibbs - bp| gap);
- reports the chromatic structure (colors vs variables) that bounds the
  per-sweep parallelism.

Like ``bench_mpp_wallclock``, the measured-speedup assertion presumes
real cores; on a single-core host the pool is pure overhead, so it is
conditioned on ``os.cpu_count()``.  Excluded from tier-1 by the ``mpp``
marker; run with ``make bench-infer``.
"""

import os
import time

import pytest

from repro.api import ExpansionSession, GroundingConfig, InferenceConfig, registered_engines
from repro.bench import format_table, scaled, write_result
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig

pytestmark = pytest.mark.mpp

SWEEPS = 200
SEED = 0
WORKERS = 2
SPEEDUP_TARGET = 1.2


def timed_infer(session, config):
    started = time.perf_counter()
    result = session.infer(config)
    wall = time.perf_counter() - started
    info = session.probkb.inference_info(config)
    return result, wall, info


def test_inference_engines(benchmark):
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=scaled(150)), seed=5)
    )
    cores = os.cpu_count() or 1
    serial_config = InferenceConfig(engine="gibbs", sweeps=SWEEPS, seed=SEED)
    pooled_config = InferenceConfig(
        engine="gibbs", sweeps=SWEEPS, seed=SEED, num_workers=WORKERS
    )
    bp_config = InferenceConfig(engine="bp")

    with ExpansionSession(
        generated.kb, grounding=GroundingConfig(apply_constraints=True)
    ) as session:
        session.ground(max_iterations=6)

        def workload():
            serial = timed_infer(session, serial_config)
            pooled = timed_infer(session, pooled_config)
            bp = timed_infer(session, bp_config)
            return serial, pooled, bp

        (
            (serial, serial_wall, serial_info),
            (pooled, pooled_wall, pooled_info),
            (bp, bp_wall, bp_info),
        ) = benchmark.pedantic(workload, rounds=1, iterations=1)

    identical = dict(serial) == dict(pooled)
    speedup = serial_wall / pooled_wall
    agreement = _mean_abs_difference(serial, bp)
    colors = serial_info["colors"]
    rows = [
        ("gibbs (serial)", f"{serial_wall:.2f}", "1", "yes"),
        (f"gibbs ({WORKERS} workers)", f"{pooled_wall:.2f}", str(WORKERS),
         "yes" if identical else "NO"),
        ("bp", f"{bp_wall:.2f}", "1", "n/a"),
    ]
    table = format_table(
        ["engine", "wall-clock (s)", "workers", "bit-identical"],
        rows,
        title=(
            f"Inference engines over the grounded factor graph "
            f"({serial.num_variables} variables, {serial.num_factors} factors, "
            f"{SWEEPS} sweeps, {cores} core(s) available)"
        ),
    )
    lines = [
        table,
        "",
        f"registered engines: {', '.join(registered_engines())}",
        f"chromatic colors: {colors} "
        f"(ideal per-sweep parallelism {serial.num_variables / max(1, colors):.1f}x)",
        f"measured pooled speedup: {speedup:.2f}x "
        f"(target >={SPEEDUP_TARGET}x, needs >=2 cores)",
        f"serial == pooled marginals (bit-identical): {identical}",
        f"BP iterations (converged): {bp_info['iterations']} ({bp_info['converged']})",
        f"mean |gibbs - bp| marginal gap: {agreement:.3f}",
    ]
    write_result("inference_engines", "\n".join(lines))

    # correctness holds regardless of the host: the parallel driver's
    # contract is bit-identical marginals at a fixed seed, any pool size
    assert identical, "pooled gibbs diverged from serial at the same seed"
    assert pooled_info["pooled"] is True and pooled_info["degraded"] is False
    assert serial.num_variables > 100
    # chromatic scheduling exposes massive per-sweep parallelism
    assert colors < serial.num_variables / 4
    # the two approximate engines roughly agree
    assert agreement < 0.15

    # the speedup claim is a statement about parallel hardware
    if cores >= 2:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >={SPEEDUP_TARGET}x with {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def _mean_abs_difference(first, second):
    keys = set(first) & set(second)
    return sum(abs(first[k] - second[k]) for k in keys) / max(1, len(keys))
