"""Wall-clock of the columnar executor vs the row engine.

Times the grounding-shaped operators (hash join on int keys, anti-join,
distinct, group-by) on synthetic int-keyed tables — the plan shapes
Algorithm 1 actually spends its time in — plus one end-to-end grounding
run.  Both engines are checked bit-identical on every measured query
before timing is trusted.

With numpy available the columnar engine must clear a >=2x speedup on
the grounding-operator mix; without numpy (``PROBKB_NO_NUMPY=1``) the
pure-Python columnar fallback is only asserted to stay within 3x of the
row engine (it exists for correctness, not speed).

Run with ``make bench-columnar``; the report is checked in at
``benchmarks/results/columnar.txt``.
"""

import random
import time

from repro.bench import format_table, scaled, write_result
from repro.core import ProbKB, SingleNodeBackend
from repro.datasets.paper_example import paper_kb
from repro.relational import (
    Aggregate,
    Database,
    Distinct,
    HashJoin,
    Project,
    Scan,
    col,
    numpy_enabled,
    schema,
)
from repro.relational.plan import AntiJoin

N_LEFT = scaled(30000)
N_RIGHT = scaled(6000)
REPEATS = 3
SPEEDUP_TARGET = 2.0


def make_db(engine, rows_l, rows_r):
    db = Database("bench", executor=engine)
    db.create_table(schema("L", "k:int", "g:int", "v:int"))
    db.create_table(schema("R", "k:int", "g:int", "v:int"))
    db.bulkload("L", rows_l)
    db.bulkload("R", rows_r)
    return db


def operator_plans():
    return {
        "hash_join": lambda: Project(
            HashJoin(Scan("L", "l"), Scan("R", "r"), ["l.k"], ["r.k"]),
            [(col("l.v"), "lv"), (col("r.v"), "rv")],
        ),
        "anti_join": lambda: AntiJoin(
            Scan("L", "l"), Scan("R", "r"), ["l.k"], ["r.k"]
        ),
        "distinct": lambda: Distinct(
            Project(Scan("L", "l"), [(col("l.g"), "g"), (col("l.k"), "k")])
        ),
        "group_by": lambda: Aggregate(
            Scan("L", "l"),
            group_by=["l.g"],
            aggregates=[("count", None, "n"), ("sum", "l.v", "total")],
        ),
    }


def time_plan(db, factory):
    best = float("inf")
    rows = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = db.query(factory())
        best = min(best, time.perf_counter() - started)
        rows = result.rows
    return best, rows


def test_columnar_operator_speedup():
    rng = random.Random(7)
    rows_l = [
        (rng.randint(0, N_RIGHT), rng.randint(0, 40), rng.randint(0, 10**6))
        for _ in range(N_LEFT)
    ]
    rows_r = [
        (rng.randint(0, N_RIGHT), rng.randint(0, 40), rng.randint(0, 10**6))
        for _ in range(N_RIGHT)
    ]
    rows_db = make_db("rows", rows_l, rows_r)
    col_db = make_db("columnar", rows_l, rows_r)

    lines = []
    total_rows_s = 0.0
    total_col_s = 0.0
    for name, factory in operator_plans().items():
        rows_s, expected = time_plan(rows_db, factory)
        col_s, actual = time_plan(col_db, factory)
        assert actual == expected, f"{name}: engines disagree"
        total_rows_s += rows_s
        total_col_s += col_s
        lines.append(
            (name, len(expected), f"{rows_s * 1e3:.1f}", f"{col_s * 1e3:.1f}",
             f"{rows_s / col_s:.2f}x")
        )
    speedup = total_rows_s / total_col_s
    lines.append(
        ("TOTAL", "", f"{total_rows_s * 1e3:.1f}", f"{total_col_s * 1e3:.1f}",
         f"{speedup:.2f}x")
    )

    # end-to-end: grounding the paper KB on both engines, same tables
    ground = {}
    for engine in ("rows", "columnar"):
        backend = SingleNodeBackend(executor=engine)
        started = time.perf_counter()
        ProbKB(paper_kb(), backend=backend).ground()
        wall = time.perf_counter() - started
        ground[engine] = (wall, backend.db.table("TP").rows)
    assert ground["rows"][1] == ground["columnar"][1]

    numpy_on = numpy_enabled()
    report = format_table(
        ["operator", "out rows", "rows ms", "columnar ms", "speedup"],
        lines,
        title=(
            "Columnar executor vs row engine "
            f"(|L|={N_LEFT}, |R|={N_RIGHT}, numpy={'on' if numpy_on else 'off'})"
        ),
    )
    report += (
        f"\n\ngrounding paper KB end-to-end: rows {ground['rows'][0] * 1e3:.1f} ms, "
        f"columnar {ground['columnar'][0] * 1e3:.1f} ms"
        "\n(engines verified bit-identical on every measured query)"
    )
    write_result("columnar", report)

    if numpy_on:
        assert speedup >= SPEEDUP_TARGET, (
            f"columnar speedup {speedup:.2f}x below {SPEEDUP_TARGET}x target"
        )
    else:
        # pure-Python fallback: correctness lane, must not be pathological
        assert speedup >= 1 / 3, f"no-numpy columnar {speedup:.2f}x is pathological"
