"""Table 3: the ReVerb-Sherlock case study.

Protocol (Section 6.1.1): apply Query 3 once up front, bulkload into
each system, run Query 1 for four iterations, then Query 2; report
per-phase times and result sizes for Tuffy-T, ProbKB (single node) and
ProbKB-p (MPP with redistributed matviews).

Times are the engines' modelled elapsed seconds (cost-model clock: row
work + per-statement overhead + MPP shipping), which is what makes the
query-count effects the paper measures visible inside one process.
"""


from repro import GroundingConfig, ProbKB, TuffyT
from repro.bench import format_table, scaled, write_result
from repro.core import MPPBackend
from repro.datasets import ReVerbSherlockConfig, WorldConfig, generate
from repro.quality import precleaned_kb

ITERATIONS = 4


def case_study_kb():
    """A mid-size KB whose uncontrolled growth is visible by iteration 4
    (the paper's run also blows up: 592M factors) without exhausting a
    laptop — the sweep benchmarks use the larger shared fixture."""
    config = ReVerbSherlockConfig(
        world=WorldConfig(
            n_countries=8,
            n_cities_per_country=6,
            n_people=scaled(400),
            n_organizations=40,
        ),
        n_bulk_relations=100,
        n_bulk_facts=300,
    )
    return generate(config)

#: Paper's Table 3, in minutes, for orientation.
PAPER_ROWS = {
    "ProbKB-p": (0.25, [0.07, 0.07, 0.15, 0.48], 9.75),
    "ProbKB": (0.03, [0.05, 0.12, 0.23, 1.28], 36.28),
    "Tuffy-T": (18.22, [1.92, 9.40, 22.40, 44.77], 84.07),
}


def run_probkb(kb, backend):
    system = ProbKB(
        kb, backend=backend, grounding=GroundingConfig(apply_constraints=False)
    )
    load = system.load_seconds
    iteration_times = []
    for iteration in range(1, ITERATIONS + 1):
        stats = system.grounder.ground_atoms_iteration(iteration)
        iteration_times.append(stats.seconds)
    factors, factor_seconds = system.grounder.ground_factors()
    return {
        "load": load,
        "iterations": iteration_times,
        "query2": factor_seconds,
        "facts": system.fact_count(),
        "factors": factors,
    }


def run_tuffy(kb):
    tuffy = TuffyT(kb)
    load = tuffy.elapsed_seconds
    iteration_times = []
    for iteration in range(1, ITERATIONS + 1):
        stats = tuffy.ground_atoms_iteration(iteration)
        iteration_times.append(stats.seconds)
    factors, factor_seconds = tuffy.ground_factors()
    return {
        "load": load,
        "iterations": iteration_times,
        "query2": factor_seconds,
        "facts": tuffy.fact_count(),
        "factors": factors,
    }


def test_table3_case_study(benchmark):
    kb = precleaned_kb(case_study_kb().kb)

    def workload():
        return {
            "ProbKB-p": run_probkb(kb, MPPBackend(nseg=8, use_matviews=True)),
            "ProbKB": run_probkb(kb, "single"),
            "Tuffy-T": run_tuffy(kb),
        }

    results = benchmark.pedantic(workload, rounds=1, iterations=1)

    headers = ["system", "load(s)"] + [
        f"Q1 iter{i}(s)" for i in range(1, ITERATIONS + 1)
    ] + ["Q2(s)", "facts", "factors"]
    rows = []
    for name in ("ProbKB-p", "ProbKB", "Tuffy-T"):
        outcome = results[name]
        rows.append(
            [name, outcome["load"]]
            + outcome["iterations"]
            + [outcome["query2"], outcome["facts"], outcome["factors"]]
        )
    paper_rows = [
        [f"paper {name} (min)", load] + iters + [q2, "-", "-"]
        for name, (load, iters, q2) in PAPER_ROWS.items()
    ]
    report = format_table(
        headers,
        rows + paper_rows,
        title="Table 3: ReVerb-Sherlock case study (modelled seconds; paper values in minutes)",
    )
    write_result("table3_case_study", report)

    probkb_p, probkb, tuffy = results["ProbKB-p"], results["ProbKB"], results["Tuffy-T"]
    # every system derives the same knowledge
    assert probkb["facts"] == tuffy["facts"] == probkb_p["facts"]
    assert probkb["factors"] == tuffy["factors"] == probkb_p["factors"]
    # Tuffy's per-relation-table bulkload is far slower; the gap scales
    # with |R| (paper: 607x at 83K relations; ~8x at our ~260)
    assert tuffy["load"] > 5 * probkb["load"]
    # batch rule application beats per-rule queries on every iteration
    for ours, theirs in zip(probkb["iterations"], tuffy["iterations"]):
        assert ours < theirs
    # the MPP backend beats single-node overall (paper: ~4x)
    assert sum(probkb_p["iterations"]) < sum(probkb["iterations"])
    assert probkb_p["query2"] < probkb["query2"]
