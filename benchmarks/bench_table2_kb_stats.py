"""Table 2: ReVerb-Sherlock KB statistics.

Regenerates the dataset statistics table.  Absolute sizes are scaled to
the benchmark machine; the paper's values are printed alongside so the
ratios (facts ≈ 1.5× entities, rules ≪ relations) can be compared.
"""

from repro.bench import format_table, write_result
from repro.datasets import generate

from conftest import bench_config

PAPER_STATS = {
    "relations": 82_768,
    "rules": 30_912,
    "entities": 277_216,
    "facts": 407_247,
}


def test_table2_kb_stats(benchmark):
    generated = benchmark.pedantic(
        lambda: generate(bench_config()), rounds=1, iterations=1
    )
    stats = generated.stats()
    rows = []
    for key in ("relations", "rules", "entities", "facts"):
        paper = PAPER_STATS[key]
        ours = stats[key]
        rows.append(
            (
                f"# {key}",
                f"{paper:,}",
                f"{ours:,}",
                f"{paper / PAPER_STATS['entities']:.2f}",
                f"{ours / stats['entities']:.2f}",
            )
        )
    report = format_table(
        ["statistic", "paper", "ours", "paper/|E|", "ours/|E|"],
        rows,
        title="Table 2: ReVerb-Sherlock KB statistics (scaled reproduction)",
    )
    write_result("table2_kb_stats", report)
    assert stats["facts"] > stats["entities"]  # denser facts than entities
    assert stats["rules"] < stats["relations"] * 2
