"""Figure 6(b): grounding time vs number of facts (S2).

Sweeps the fact count with the rule set fixed.  All three systems grow
with the data size, but Tuffy-T keeps paying its per-rule query
overhead while ProbKB amortizes it over six batch joins; ProbKB-p
divides the scan/join work across segments.
"""


from repro import ProbKB
from repro.bench import format_series, format_table, scaled, write_result
from repro.core import MPPBackend
from repro.datasets import s2_kb

from bench_fig6a_vary_rules import ground_once_probkb, ground_once_tuffy

FACT_COUNTS = [4000, 10000, 25000, 60000]


def test_fig6b_vary_facts(reverb_kb, benchmark):
    counts = [scaled(n) for n in FACT_COUNTS]

    def workload():
        rows = []
        series = {"Tuffy-T": [], "ProbKB": [], "ProbKB-p": []}
        for n_facts in counts:
            kb = s2_kb(reverb_kb, n_facts, seed=1)
            tuffy_s, inferred = ground_once_tuffy(kb)
            single_s, _ = ground_once_probkb(kb, "single")
            mpp_s, _ = ground_once_probkb(kb, MPPBackend(nseg=8))
            rows.append((n_facts, tuffy_s, single_s, mpp_s, inferred))
            series["Tuffy-T"].append((n_facts, tuffy_s))
            series["ProbKB"].append((n_facts, single_s))
            series["ProbKB-p"].append((n_facts, mpp_s))
        return rows, series

    rows, series = benchmark.pedantic(workload, rounds=1, iterations=1)

    table = format_table(
        ["# facts", "Tuffy-T (s)", "ProbKB (s)", "ProbKB-p (s)", "# inferred"],
        rows,
        title="Figure 6(b): grounding time vs # facts (S2, first iteration; modelled seconds)",
    )
    lines = [table, ""]
    for name, points in series.items():
        lines.append(format_series(name, points, "# facts", "seconds"))
    lines.append("paper @10M facts: speed-up of 237x for ProbKB-p over Tuffy-T")
    write_result("fig6b_vary_facts", "\n".join(lines))

    last = rows[-1]
    assert last[3] < last[2] < last[1]  # ProbKB-p < ProbKB < Tuffy-T
    speedup = last[1] / last[3]
    assert speedup > 5, f"expected a large ProbKB-p speedup, got {speedup:.1f}x"
