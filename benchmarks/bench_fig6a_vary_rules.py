"""Figure 6(a): grounding time vs number of rules (S1).

Sweeps the MLN size with the fact set fixed and runs the first
grounding iteration plus the factor query on Tuffy-T, ProbKB, and
ProbKB-p (as the paper does for the synthetic KBs).  The expected
shape: Tuffy-T grows linearly in the rule count (one query per rule)
while both ProbKB variants stay nearly flat (six batch queries).
"""


from repro import GroundingConfig, ProbKB, TuffyT
from repro.bench import format_series, format_table, scaled, write_result
from repro.core import MPPBackend
from repro.datasets import s1_kb

RULE_COUNTS = [200, 1000, 3000, 8000]


def ground_once_probkb(kb, backend):
    system = ProbKB(
        kb, backend=backend, grounding=GroundingConfig(apply_constraints=False)
    )
    start = system.backend.elapsed_seconds
    system.grounder.ground_atoms_iteration(1)
    factors, _ = system.grounder.ground_factors()
    inferred = system.fact_count() - len(kb.facts)
    return system.backend.elapsed_seconds - start, inferred


def ground_once_tuffy(kb):
    tuffy = TuffyT(kb)
    start = tuffy.elapsed_seconds
    tuffy.ground_atoms_iteration(1)
    tuffy.ground_factors()
    inferred = tuffy.fact_count() - len(kb.facts)
    return tuffy.elapsed_seconds - start, inferred


def test_fig6a_vary_rules(reverb_kb, benchmark):
    counts = [scaled(n) for n in RULE_COUNTS]

    def workload():
        rows = []
        series = {"Tuffy-T": [], "ProbKB": [], "ProbKB-p": []}
        for n_rules in counts:
            kb = s1_kb(reverb_kb, n_rules, seed=1)
            tuffy_s, inferred = ground_once_tuffy(kb)
            single_s, _ = ground_once_probkb(kb, "single")
            mpp_s, _ = ground_once_probkb(kb, MPPBackend(nseg=8))
            rows.append((n_rules, tuffy_s, single_s, mpp_s, inferred))
            series["Tuffy-T"].append((n_rules, tuffy_s))
            series["ProbKB"].append((n_rules, single_s))
            series["ProbKB-p"].append((n_rules, mpp_s))
        return rows, series

    rows, series = benchmark.pedantic(workload, rounds=1, iterations=1)

    table = format_table(
        ["# rules", "Tuffy-T (s)", "ProbKB (s)", "ProbKB-p (s)", "# inferred"],
        rows,
        title="Figure 6(a): grounding time vs # rules (S1, first iteration; modelled seconds)",
    )
    lines = [table, ""]
    for name, points in series.items():
        lines.append(format_series(name, points, "# rules", "seconds"))
    lines.append(
        "paper @1M rules: Tuffy-T 16507s, ProbKB 210s, ProbKB-p 53s (311x)"
    )
    write_result("fig6a_vary_rules", "\n".join(lines))

    # ProbKB's time grows only with the inferred-output volume, while
    # Tuffy additionally pays per-rule query overhead: the gap widens
    first, last = rows[0], rows[-1]
    assert last[1] / last[2] > first[1] / first[2] * 0.8  # gap holds or widens
    assert last[1] / last[2] > 10  # order-of-magnitude win at scale
    # ordering at the largest size: ProbKB-p < ProbKB < Tuffy-T
    assert last[3] < last[2] < last[1]
