"""Measured wall-clock of the multi-process MPP executor vs serial.

Unlike every other benchmark in this directory — which report the
*modelled* MPP seconds of the paper's cost model — this one times the
real Python processes with a real clock.  It grounds the same KB twice
on the same cluster shape (serial executor, then ``num_workers=4``),
checks the two runs produced bit-identical TΠ/TΦ shards, and reports
the measured speedup.

The speedup target (>=1.5x with 4 workers) presumes >=2 physical cores;
on a single-core host the worker pool cannot beat serial execution
(process scheduling + row pickling are pure overhead there), so the
speedup assertion is conditioned on ``os.cpu_count()``.  The
bit-identity assertions hold everywhere.

Excluded from tier-1 by the ``mpp`` marker; run with ``make bench-mpp``.
"""

import os
import time

import pytest

from repro.bench import format_table, scaled, write_result
from repro.core import MPPBackend, ProbKB
from repro.datasets import s2_kb

pytestmark = pytest.mark.mpp

NSEG = 8
WORKERS = 4
N_FACTS = 12000
SPEEDUP_TARGET = 1.5


def ground_wallclock(kb, num_workers):
    backend = MPPBackend(nseg=NSEG, num_workers=num_workers)
    started = time.perf_counter()
    system = ProbKB(kb, backend=backend)
    result = system.ground()
    wall = time.perf_counter() - started
    tables = {
        name: [part.rows for part in backend.db.table(name).parts]
        for name in ("TP", "TF")
    }
    outcome = {
        "wall": wall,
        "modelled": backend.elapsed_seconds,
        "new_facts": result.total_new_facts,
        "degraded": backend.db.degraded,
        "tables": tables,
    }
    backend.close()
    return outcome


def test_mpp_wallclock(reverb_kb, benchmark):
    kb = s2_kb(reverb_kb, scaled(N_FACTS), seed=1)
    cores = os.cpu_count() or 1

    def workload():
        serial = ground_wallclock(kb, num_workers=0)
        pooled = ground_wallclock(kb, num_workers=WORKERS)
        return serial, pooled

    serial, pooled = benchmark.pedantic(workload, rounds=1, iterations=1)

    speedup = serial["wall"] / pooled["wall"]
    rows = [
        ("serial", f"{serial['wall']:.2f}", f"{serial['modelled']:.2f}",
         serial["new_facts"]),
        (f"{WORKERS} workers", f"{pooled['wall']:.2f}",
         f"{pooled['modelled']:.2f}", pooled["new_facts"]),
    ]
    table = format_table(
        ["executor", "wall-clock (s)", "modelled (s)", "# inferred"],
        rows,
        title=(
            f"MPP wall-clock: serial vs {WORKERS} worker processes "
            f"({NSEG} segments, {scaled(N_FACTS)} facts, "
            f"{cores} core(s) available)"
        ),
    )
    lines = [
        table,
        "",
        f"measured speedup: {speedup:.2f}x "
        f"(target >={SPEEDUP_TARGET}x, needs >=2 cores)",
        f"host cores: {cores}",
        "bit-identical TP/TF shards: "
        f"{serial['tables'] == pooled['tables']}",
        "modelled seconds identical: "
        f"{serial['modelled'] == pooled['modelled']}",
    ]
    write_result("mpp_wallclock", "\n".join(lines))

    # correctness holds regardless of the host: both executors must
    # produce the same tables, row for row and shard for shard, and
    # charge the same simulated clock
    assert not pooled["degraded"]
    assert serial["tables"] == pooled["tables"]
    assert serial["modelled"] == pooled["modelled"]
    assert serial["new_facts"] == pooled["new_facts"]

    # the speedup claim is a statement about parallel hardware
    if cores >= 2:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >={SPEEDUP_TARGET}x with {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )
