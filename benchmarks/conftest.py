"""Shared benchmark fixtures: the bench-scale ReVerb-Sherlock KB.

Workload sizes scale with $REPRO_BENCH_SCALE (default 1.0 ≈ laptop);
the paper's sizes are quoted in each benchmark's report for comparison.
"""

import pytest

from repro.bench import scaled
from repro.datasets import ReVerbSherlockConfig, WorldConfig, generate


def bench_config(seed: int = 0) -> ReVerbSherlockConfig:
    return ReVerbSherlockConfig(
        world=WorldConfig(
            n_countries=scaled(10),
            n_cities_per_country=8,
            n_districts_per_city=2,
            n_people=scaled(800),
            n_organizations=scaled(60),
            seed=seed,
        ),
        # error-source knobs scale with the population so the
        # Figure 7(b) mix stays calibrated
        ambiguous_groups=scaled(120),
        synonym_entities=scaled(8),
        n_bulk_relations=scaled(150),
        n_bulk_facts=scaled(600),
        seed=seed,
    )


@pytest.fixture(scope="session")
def reverb_kb():
    """The bench-scale ReVerb-Sherlock stand-in (shared by benchmarks)."""
    return generate(bench_config())
