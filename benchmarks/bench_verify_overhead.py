"""PlanCheck overhead: plan verification vs grounding cost.

The runtime gate (``PROBKB_VERIFY_PLANS=1``) verifies each distinct
plan object once, right before its first execution, so what a user
pays is a fixed number of pure tree walks per grounding run — the
plans themselves are compiled and statically planned whether or not
the gate is on.  This benchmark grounds a synthetic KB on the
8-segment simulator and compares

* the wall-clock cost of the verifier walks alone (logical +
  physical, over the same plans grounding executes), and
* the end-to-end grounding wall-clock with the gate on vs off,

against the gate-off grounding wall-clock.  The checked-in result
asserts the verifier walks stay under 5% of grounding.
"""

import time

from repro import ProbKB
from repro.analyze import (
    PlanEnvironment,
    grounding_schemas,
    kb_statistics,
    partition_plans,
)
from repro.bench import scaled, write_result
from repro.core import GroundingConfig, MPPBackend
from repro.mpp.static_planner import StaticPlanner
from repro.mpp.verify import verify_physical_plan
from repro.relational.verify import verify_plan

from bench_fig4_query_plans import synthetic_kb

NSEG = 8


def ground_wallclock(kb, verify_plans):
    system = ProbKB(
        kb,
        backend=MPPBackend(nseg=NSEG, verify_plans=verify_plans),
        grounding=GroundingConfig(apply_constraints=False, analysis="off"),
    )
    start = time.perf_counter()
    system.ground()
    return time.perf_counter() - start


def verifier_walks_wallclock(kb, repeats=20):
    """Time only what the gate adds: the verify passes over plans that
    the planner has already produced."""
    env = PlanEnvironment(kind="mpp", num_segments=NSEG)
    plans = partition_plans(kb, env)
    planner = StaticPlanner(kb_statistics(kb, env), NSEG)
    roots = [(name, planner.plan(plan).root) for name, _, plan in plans]
    schemas = grounding_schemas()

    start = time.perf_counter()
    for _ in range(repeats):
        for (name, _, plan), (_, root) in zip(plans, roots):
            assert verify_plan(plan, tables=schemas, name=name).ok
            assert verify_physical_plan(root, NSEG, name=name).ok
    elapsed = (time.perf_counter() - start) / repeats
    return elapsed, len(plans)


def test_verify_overhead(benchmark):
    kb = synthetic_kb(scaled(20_000))

    def workload():
        ground_wallclock(kb, verify_plans=False)  # warm-up
        baseline_s = ground_wallclock(kb, verify_plans=False)
        gated_s = ground_wallclock(kb, verify_plans=True)
        verify_s, plans = verifier_walks_wallclock(kb)
        return baseline_s, gated_s, verify_s, plans

    baseline_s, gated_s, verify_s, plans = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    overhead = verify_s / baseline_s

    report = "\n".join(
        [
            "PlanCheck verification cost vs grounding wall-clock",
            f"(synthetic KB, {len(kb.facts)} facts, {len(kb.rules)} rules, "
            f"{NSEG}-segment simulator)",
            "",
            f"grounding, gate off       {baseline_s * 1e3:10.1f} ms",
            f"grounding, gate on        {gated_s * 1e3:10.1f} ms",
            f"verifier walks (x{plans:2d} plans){verify_s * 1e3:8.1f} ms  "
            "(logical + physical verify per plan)",
            f"walk overhead             {overhead * 100:10.2f} %  of gate-off grounding",
            "",
            "the runtime gate pays the walks once per distinct plan object;",
            "re-executions of a verified plan skip verification entirely",
        ]
    )
    write_result("verify_overhead", report)

    assert overhead < 0.05, (
        f"verifier walks are {overhead:.1%} of grounding wall-clock "
        "(budget: 5%)"
    )
