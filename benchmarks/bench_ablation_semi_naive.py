"""Ablation: naive (Algorithm 1) vs semi-naive (delta) grounding.

The paper's Algorithm 1 re-joins the *entire* TΠ against every MLN
partition in every iteration; classic Datalog semi-naive evaluation
joins only the facts derived in the previous iteration.  Both reach the
same closure; this ablation quantifies the work saved — an extension
beyond the paper (its future-work discussion of incremental grounding).
"""


from repro import Fact, GroundingConfig, KnowledgeBase, ProbKB, Relation
from repro.bench import format_table, scaled, write_result
from repro.core import Atom, HornClause


def chain_kb(length):
    """A located_in chain a0 ⊂ a1 ⊂ ... ⊂ aN with a transitivity rule:
    the closure is O(N²) pairs reached over O(log N) iterations — the
    workload where naive evaluation re-derives everything every round."""
    entities = [f"a{i}" for i in range(length)]
    facts = [
        Fact("located_in", entities[i], "Place", entities[i + 1], "Place", 0.9)
        for i in range(length - 1)
    ]
    rule = HornClause.make(
        Atom("located_in", ("x", "y")),
        [Atom("located_in", ("x", "z")), Atom("located_in", ("z", "y"))],
        weight=1.0,
        var_classes={"x": "Place", "y": "Place", "z": "Place"},
    )
    return KnowledgeBase(
        classes={"Place": set(entities)},
        relations=[Relation("located_in", "Place", "Place")],
        facts=facts,
        rules=[rule],
    )


def test_ablation_semi_naive(benchmark):
    kb = chain_kb(scaled(220))

    def run(semi_naive):
        system = ProbKB(kb, grounding=GroundingConfig(semi_naive=semi_naive))
        result = system.ground(max_iterations=30)
        clock = system.backend.db.clock
        return {
            "iterations": len(result.iterations),
            "facts": system.fact_count(),
            "rows_probed": clock.rows_probed,
            "rows_scanned": clock.rows_scanned,
            "seconds": result.atoms_seconds,
        }

    def workload():
        return run(False), run(True)

    naive, delta = benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = [
        ("naive (Algorithm 1)", naive["iterations"], naive["facts"],
         naive["rows_scanned"], naive["rows_probed"], naive["seconds"]),
        ("semi-naive (delta)", delta["iterations"], delta["facts"],
         delta["rows_scanned"], delta["rows_probed"], delta["seconds"]),
    ]
    report = format_table(
        ["strategy", "iters", "facts", "rows scanned", "rows probed", "Q1 time (s)"],
        rows,
        title=(
            "Ablation: naive vs semi-naive grounding to closure "
            f"(probe-work saved: {naive['rows_probed'] / max(1, delta['rows_probed']):.1f}x)"
        ),
    )
    write_result("ablation_semi_naive", report)

    assert delta["facts"] == naive["facts"]  # identical closure
    assert delta["rows_probed"] < naive["rows_probed"]
    assert delta["seconds"] < naive["seconds"]
