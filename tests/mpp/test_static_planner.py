"""Static planning mode: estimates drive motions, results never change.

``plan="static"`` must be a pure *latency* trade (decide motions before
reading any row) — rows stay bit-identical to adaptive mode, and on
exact statistics the statically chosen plan tree matches the adaptive
executor's recorded plan shape operator for operator.
"""

import pytest

from repro.core import MPPBackend, ProbKB
from repro.core.config import BackendConfig, MPPConfig, build_backend
from repro.core.sqlgen import ground_atoms_plan, ground_factors_plan
from repro.datasets.paper_example import paper_kb
from repro.mpp import (
    HashDistribution,
    MPPDatabase,
    RandomDistribution,
    ReplicatedDistribution,
)
from repro.mpp.static_planner import (
    FALLBACK_BROADCAST_LEFT,
    FALLBACK_BROADCAST_RIGHT,
    FALLBACK_REDISTRIBUTE_BOTH,
    StaticPlanner,
    choose_fallback_motion,
    collect_mpp_statistics,
)
from repro.relational import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Project,
    Scan,
    col,
    eq_const,
    resolve_executor,
    schema,
)

PEOPLE = [(i, f"p{i}", (i % 7) * 10) for i in range(60)]
CITIES = [(c * 10, f"city{c}", c * 1000) for c in range(7)]


def make_db(plan_mode, nseg=4, person_policy=None, city_policy=None):
    db = MPPDatabase(nseg=nseg, plan_mode=plan_mode)
    db.create_table(
        schema("person", "id:int", "name:text", "city:int"),
        person_policy or HashDistribution(["id"]),
    )
    db.create_table(
        schema("city", "id:int", "name:text", "pop:int"),
        city_policy or HashDistribution(["id"]),
    )
    db.bulkload("person", PEOPLE)
    db.bulkload("city", CITIES)
    return db


def plans():
    return {
        "scan": lambda: Scan("person"),
        "filter": lambda: Filter(Scan("person", "P"), eq_const("P.city", 30)),
        "join": lambda: HashJoin(
            Scan("person", "P"), Scan("city", "C"), ["P.city"], ["C.id"]
        ),
        "aggregate": lambda: Aggregate(
            Scan("person", "P"),
            group_by=["P.city"],
            aggregates=[("count", None, "n")],
        ),
        "distinct": lambda: Distinct(
            Project(Scan("person", "P"), [(col("P.city"), "city")])
        ),
    }


def shape(node):
    """A plan tree's structure, ignoring rows/seconds (which differ
    between an estimate and an execution)."""
    return (node.kind, node.detail, tuple(shape(c) for c in node.children))


class TestFallbackChoice:
    def test_broadcasts_the_smaller_side(self):
        assert choose_fallback_motion(10, 10_000, 4) == FALLBACK_BROADCAST_LEFT
        assert choose_fallback_motion(10_000, 10, 4) == FALLBACK_BROADCAST_RIGHT

    def test_redistributes_balanced_inputs(self):
        # broadcast cost 100*4 >= 100+100: ship each side once instead
        assert choose_fallback_motion(100, 100, 4) == FALLBACK_REDISTRIBUTE_BOTH

    def test_single_segment_prefers_redistribute_tie(self):
        # nseg=1: broadcast_cost == small_rows, strictly less than the sum
        assert choose_fallback_motion(5, 100, 1) == FALLBACK_BROADCAST_LEFT


class TestCollectStatistics:
    def test_analyze_reads_layout_and_skew(self):
        db = make_db("adaptive", city_policy=ReplicatedDistribution())
        catalog = collect_mpp_statistics(db)
        assert set(catalog.table_names) == {"person", "city"}
        person = catalog.stats("person")
        assert person.rows == len(PEOPLE)
        assert person.column("id").distinct == len(PEOPLE)
        assert person.column("city").distinct == 7
        assert catalog.distribution("person").columns == ("id",)
        assert catalog.distribution("city").kind == "replicated"
        assert catalog.num_segments == db.nseg

    def test_random_policy_maps_to_random(self):
        db = make_db("adaptive", person_policy=RandomDistribution())
        assert collect_mpp_statistics(db).distribution("person").kind == "random"

    def test_subset_of_tables(self):
        db = make_db("adaptive")
        catalog = collect_mpp_statistics(db, ["city"])
        assert list(catalog.table_names) == ["city"]
        assert "person" not in catalog


@pytest.mark.parametrize(
    "policies",
    [
        {},  # collocation decided purely by hash layout
        {"person_policy": RandomDistribution()},  # forces fallback motions
        {
            "person_policy": RandomDistribution(),
            "city_policy": RandomDistribution(),
        },
    ],
    ids=["hash", "random-left", "random-both"],
)
class TestStaticModeParity:
    def test_rows_bit_identical(self, policies):
        adaptive = make_db("adaptive", **policies)
        static = make_db("static", **policies)
        for name, factory in plans().items():
            ours = adaptive.query(factory())
            theirs = static.query(factory())
            # identical rows in identical order, not just same sets
            assert ours.rows == theirs.rows, name
            assert ours.columns == theirs.columns, name
        assert adaptive.last_static_plan is None
        assert static.last_static_plan is not None

    def test_static_plan_shape_matches_executed(self, policies):
        """On exact statistics the static tree IS the adaptive tree."""
        adaptive = make_db("adaptive", **policies)
        static = make_db("static", **policies)
        for name, factory in plans().items():
            adaptive.query(factory())
            static.query(factory())
            executed = adaptive.last_plan.children[0]
            assert shape(static.last_static_plan.root) == shape(executed), name
            # and the static executor really ran the predicted shape
            assert shape(static.last_plan.children[0]) == shape(executed), name


class TestGroundingParity:
    def ground(self, plan_mode):
        backend = MPPBackend(nseg=4, plan=plan_mode)
        system = ProbKB(paper_kb(), backend=backend)
        result = system.ground()
        outcome = {
            # exact per-segment rows: static motion choices must place
            # every row exactly where the adaptive ones do
            "tp_parts": [part.rows for part in backend.db.table("TP").parts],
            "tf_parts": [part.rows for part in backend.db.table("TF").parts],
            "iterations": [
                (s.new_facts, s.removed_facts, s.fact_count, s.seconds)
                for s in result.iterations
            ],
            "factors": result.factors,
            "elapsed": backend.elapsed_seconds,
        }
        return backend, outcome

    def test_paper_example_identical(self):
        adaptive_backend, adaptive = self.ground("adaptive")
        static_backend, static = self.ground("static")
        assert adaptive == static
        assert adaptive_backend.db.last_static_plan is None
        assert static_backend.db.last_static_plan is not None
        assert static_backend.executor_info()["plan"] == "static"

    def test_naive_policy_identical(self):
        backends = []
        for plan_mode in ("adaptive", "static"):
            backend = MPPBackend(nseg=4, plan=plan_mode, use_matviews=False)
            ProbKB(paper_kb(), backend=backend).ground()
            backends.append(backend)
        adaptive, static = backends
        # estimate-driven fallbacks may cost differently than the
        # adaptive ones under the naive policy, but every row must land
        # on the same segment either way
        assert [p.rows for p in adaptive.db.table("TP").parts] == [
            p.rows for p in static.db.table("TP").parts
        ]
        assert [p.rows for p in adaptive.db.table("TF").parts] == [
            p.rows for p in static.db.table("TF").parts
        ]

    def test_grounding_query_motions_match(self):
        """Acceptance: on the paper example, the statically chosen
        motions equal the adaptive executor's recorded plan, per query."""
        backend = MPPBackend(nseg=4)
        ProbKB(paper_kb(), backend=backend)
        planner = StaticPlanner(collect_mpp_statistics(backend.db), backend.nseg)
        for partition in (1, 3):
            for build in (ground_atoms_plan, ground_factors_plan):
                plan = build(partition, backend)
                static = planner.plan(plan)
                backend.query(plan)
                executed = backend.db.last_plan.children[0]
                assert shape(static.root) == shape(executed), (
                    build.__name__,
                    partition,
                )


class TestConfigSurface:
    def test_mpp_config_validates_plan(self):
        assert MPPConfig(plan="static").plan == "static"
        with pytest.raises(ValueError, match="plan"):
            MPPConfig(plan="bogus")

    def test_backend_config_builds_static_backend(self):
        config = BackendConfig(
            kind="mpp", mpp=MPPConfig(num_segments=2, plan="static")
        )
        backend = build_backend(config)
        assert backend.db.plan_mode == "static"
        assert backend.executor_info() == {
            "mode": "serial",
            "segments": 2,
            "workers": 0,
            "degraded": False,
            "plan": "static",
            "engine": resolve_executor(None),
        }
