"""PhysicalNode (EXPLAIN trees) and CostClock (modelled time) units.

These two types carry `repro explain`'s numbers; their invariants —
lossless dict round-trips, additive totals, exact counter arithmetic —
are what make the estimate-vs-actual comparisons meaningful.
"""

import pytest

from repro.mpp import PhysicalNode
from repro.relational.cost import (
    QUERY_OVERHEAD_S,
    ROW_SCAN_S,
    ROW_SHIP_S,
    CostClock,
)


def sample_tree():
    scan_left = PhysicalNode("Seq Scan", "on TP", seconds=0.25, rows=100)
    scan_right = PhysicalNode("Seq Scan", "on M3", seconds=0.05, rows=10)
    motion = PhysicalNode(
        "Broadcast Motion", children=[scan_right], seconds=0.5, rows=10
    )
    join = PhysicalNode(
        "Hash Join",
        "on P.R = M.R1",
        children=[scan_left, motion],
        seconds=0.2,
        rows=40,
    )
    return PhysicalNode("Gather Motion", children=[join], seconds=0.0, rows=40)


class TestPhysicalNode:
    def test_explain_indents_children(self):
        text = sample_tree().explain()
        lines = text.splitlines()
        assert lines[0].startswith("Gather Motion")
        assert lines[1] == "  Hash Join on P.R = M.R1  (rows=40, 200.00ms)"
        assert lines[2].startswith("    Seq Scan on TP")
        # the broadcast's child is nested one level deeper than it
        assert lines[3] == "    Broadcast Motion  (rows=10, 500.00ms)"
        assert lines[4].startswith("      Seq Scan on M3")

    def test_total_seconds_sums_the_whole_tree(self):
        assert sample_tree().total_seconds() == pytest.approx(1.0)

    def test_find_all_walks_depth_first(self):
        tree = sample_tree()
        scans = tree.find_all("Seq Scan")
        assert [s.detail for s in scans] == ["on TP", "on M3"]
        assert tree.find_all("Gather Motion") == [tree]
        assert tree.find_all("Redistribute Motion") == []

    def test_to_dict_omits_empty_fields(self):
        leaf = PhysicalNode("Distinct", rows=3, seconds=0.01)
        payload = leaf.to_dict()
        assert payload == {"kind": "Distinct", "rows": 3, "seconds": 0.01}
        assert "detail" not in payload
        assert "children" not in payload

    def test_dict_round_trip_is_lossless(self):
        tree = sample_tree()
        rebuilt = PhysicalNode.from_dict(tree.to_dict())
        assert rebuilt == tree
        assert rebuilt.to_dict() == tree.to_dict()

    def test_from_dict_defaults_missing_fields(self):
        node = PhysicalNode.from_dict({"kind": "Limit"})
        assert node == PhysicalNode("Limit")


class TestCostClock:
    def test_seconds_is_a_linear_counter_model(self):
        clock = CostClock()
        assert clock.seconds == 0.0
        clock.charge_query()
        clock.rows_scanned += 1000
        clock.rows_shipped += 50
        assert clock.seconds == pytest.approx(
            QUERY_OVERHEAD_S + 1000 * ROW_SCAN_S + 50 * ROW_SHIP_S
        )

    def test_merge_adds_counters(self):
        a = CostClock(queries=1, rows_scanned=10, extra_seconds=0.5)
        b = CostClock(queries=2, rows_scanned=5, rows_broadcast=7)
        a.merge(b)
        assert a.queries == 3
        assert a.rows_scanned == 15
        assert a.rows_broadcast == 7
        assert a.extra_seconds == 0.5
        assert b.queries == 2  # merge never mutates its argument

    def test_copy_is_independent(self):
        original = CostClock(queries=4, rows_output=9)
        clone = original.copy()
        clone.charge_query(10)
        assert original.queries == 4
        assert clone.queries == 14
        assert clone.rows_output == 9

    def test_delta_since_inverts_merge(self):
        earlier = CostClock(queries=1, rows_scanned=100, rows_shipped=3)
        later = earlier.copy()
        later.charge_query(2)
        later.rows_scanned += 50
        delta = later.delta_since(earlier)
        assert delta.queries == 2
        assert delta.rows_scanned == 50
        assert delta.rows_shipped == 0
        assert delta.seconds == pytest.approx(
            later.seconds - earlier.seconds
        )

    def test_reset_zeroes_everything(self):
        clock = CostClock(queries=5, rows_inserted=2, extra_seconds=1.5)
        clock.reset()
        assert clock == CostClock()
        assert clock.seconds == 0.0

    def test_snapshot_reports_seconds(self):
        clock = CostClock(queries=2)
        snap = clock.snapshot()
        assert snap["queries"] == 2
        assert snap["seconds"] == pytest.approx(2 * QUERY_OVERHEAD_S)
