"""PlanCheck, physical layer: PKB209-212 on hand-built trees, plus the
runtime ``PROBKB_VERIFY_PLANS`` gate over the in-process MPP executor."""

import pytest

from repro.mpp import HashDistribution, MPPDatabase, ReplicatedDistribution
from repro.mpp.plannodes import DistDesc, PhysicalNode
from repro.mpp.verify import PHYSICAL_CODES, verify_physical_plan
from repro.relational import Database, Filter, HashJoin, Scan, schema
from repro.relational.expr import Col, Compare, Const
from repro.relational.verify import PlanVerificationError

NSEG = 4


def scan(table, dist):
    return PhysicalNode("Seq Scan", f"on {table}", dist=dist)


def hashed(*columns):
    return DistDesc.hash_on(list(columns))


def codes(report):
    return report.codes


# -- registry ----------------------------------------------------------------


def test_registry_covers_pkb209_to_212():
    assert set(PHYSICAL_CODES) == {f"PKB{i}" for i in range(209, 213)}
    for code, (severity, title) in PHYSICAL_CODES.items():
        assert severity in ("error", "warning")
        assert title


# -- PKB209: non-collocated join ---------------------------------------------


def test_pkb209_non_collocated_join():
    join = PhysicalNode(
        "Hash Join",
        "on L.a = R.b",
        children=[scan("L", hashed("a")), scan("R", hashed("c"))],
    )
    report = verify_physical_plan(join, NSEG)
    (finding,) = report.findings
    assert finding.code == "PKB209"
    assert finding.path == "root"
    assert finding.severity == "error"
    assert "neither collocated" in finding.message
    assert "hash(a)" in finding.message and "hash(c)" in finding.message


def test_pkb209_anti_join_with_replicated_left():
    # the preserved side of an anti-join must not be replicated against
    # a hashed right: each copy would test only one segment's rows
    join = PhysicalNode(
        "Hash Anti Join",
        "on L.a = R.a",
        children=[scan("L", DistDesc.replicated()), scan("R", hashed("a"))],
    )
    report = verify_physical_plan(join, NSEG)
    assert codes(report) == ["PKB209"]


def test_collocated_replicated_and_singleton_joins_are_clean():
    collocated = PhysicalNode(
        "Hash Join",
        "on L.a = R.b",
        children=[scan("L", hashed("a")), scan("R", hashed("b"))],
    )
    assert verify_physical_plan(collocated, NSEG).ok
    broadcast = PhysicalNode(
        "Hash Join",
        "on L.a = R.b",
        children=[scan("L", hashed("z")), scan("R", DistDesc.replicated())],
    )
    assert verify_physical_plan(broadcast, NSEG).ok


def test_table_dists_feed_unannotated_scans():
    join = PhysicalNode(
        "Hash Join",
        "on L.a = R.b",
        children=[
            PhysicalNode("Seq Scan", "on L"),
            PhysicalNode("Seq Scan", "on R"),
        ],
    )
    dists = {"L": hashed("a"), "R": hashed("z")}
    report = verify_physical_plan(join, NSEG, table_dists=dists)
    assert codes(report) == ["PKB209"]
    dists["R"] = hashed("b")
    assert verify_physical_plan(join, NSEG, table_dists=dists).ok


# -- PKB210: redundant motions -----------------------------------------------


def test_pkb210_redundant_redistribute():
    motion = PhysicalNode(
        "Redistribute Motion", "on (a)", children=[scan("T", hashed("a"))]
    )
    motion.dist = hashed("a")
    (finding,) = verify_physical_plan(motion, NSEG).findings
    assert finding.code == "PKB210"
    assert finding.severity == "warning"
    assert finding.path == "root"
    assert "already" in finding.message


def test_pkb210_redundant_broadcast_and_gather():
    broadcast = PhysicalNode(
        "Broadcast Motion",
        "",
        children=[scan("T", DistDesc.replicated())],
    )
    broadcast.dist = DistDesc.replicated()
    report = verify_physical_plan(broadcast, NSEG)
    assert codes(report) == ["PKB210"]

    gather = PhysicalNode(
        "Gather Motion",
        "to seg0",
        children=[PhysicalNode("Values", "")],
    )
    report = verify_physical_plan(gather, NSEG)
    assert codes(report) == ["PKB210"]
    assert "single segment" in report.findings[0].message


def test_master_gather_with_empty_detail_is_never_redundant():
    gather = PhysicalNode(
        "Gather Motion", "", children=[PhysicalNode("Values", "")]
    )
    assert verify_physical_plan(gather, NSEG).ok


# -- PKB211: receiver requirements -------------------------------------------


def test_pkb211_distinct_over_arbitrary_input():
    distinct = PhysicalNode(
        "Distinct", "", children=[scan("T", DistDesc.arbitrary())]
    )
    (finding,) = verify_physical_plan(distinct, NSEG).findings
    assert finding.code == "PKB211"
    assert finding.path == "root"
    assert "different" in finding.message and "segments" in finding.message


def test_pkb211_grouped_aggregate_hashed_outside_group_keys():
    agg = PhysicalNode(
        "HashAggregate",
        "group by (R, x)",
        children=[scan("T", hashed("y"))],
    )
    (finding,) = verify_physical_plan(agg, NSEG).findings
    assert finding.code == "PKB211"
    assert "share" in finding.message
    # hashed within the group keys (qualified spelling) is fine
    ok = PhysicalNode(
        "HashAggregate",
        "group by (R, x)",
        children=[scan("T", hashed("T.R"))],
    )
    assert verify_physical_plan(ok, NSEG).ok


def test_pkb211_global_aggregate_and_sort_need_a_gather():
    agg = PhysicalNode(
        "HashAggregate", "group by ()", children=[scan("T", hashed("a"))]
    )
    report = verify_physical_plan(agg, NSEG)
    assert codes(report) == ["PKB211"]
    assert "gather first" in report.findings[0].message

    sort = PhysicalNode("Sort", "a ASC", children=[scan("T", hashed("a"))])
    assert codes(verify_physical_plan(sort, NSEG)) == ["PKB211"]
    gathered = PhysicalNode(
        "Sort",
        "a ASC",
        children=[
            PhysicalNode("Gather Motion", "to seg0", children=[scan("T", hashed("a"))])
        ],
    )
    assert verify_physical_plan(gathered, NSEG).ok


# -- PKB212: malformed nodes and declaration mismatches ----------------------


def test_pkb212_unknown_kind():
    node = PhysicalNode("Quantum Scan", "on T")
    (finding,) = verify_physical_plan(node, NSEG).findings
    assert finding.code == "PKB212"
    assert finding.path == "root"
    assert "unknown physical operator kind 'Quantum Scan'" in finding.message


def test_pkb212_wrong_child_count():
    join = PhysicalNode("Hash Join", "on a = b", children=[scan("T", None)])
    (finding,) = verify_physical_plan(join, NSEG).findings
    assert finding.code == "PKB212"
    assert "has 1 children, expected 2" in finding.message
    empty_append = PhysicalNode("Append", "")
    (finding,) = verify_physical_plan(empty_append, NSEG).findings
    assert finding.code == "PKB212"
    assert "expected >=1" in finding.message


def test_pkb212_unparsable_join_detail():
    join = PhysicalNode(
        "Hash Join",
        "using keys",
        children=[scan("L", hashed("a")), scan("R", hashed("a"))],
    )
    (finding,) = verify_physical_plan(join, NSEG).findings
    assert finding.code == "PKB212"
    assert "unparsable join detail" in finding.message


def test_pkb212_declared_dist_contradicts_derivation():
    node = PhysicalNode("Filter", "a = 1", children=[scan("T", hashed("a"))])
    node.dist = hashed("b")
    (finding,) = verify_physical_plan(node, NSEG).findings
    assert finding.code == "PKB212"
    assert finding.path == "root"
    assert "declares hash(b)" in finding.message
    assert "derivation gives hash(a)" in finding.message


def test_pkb212_motions_are_strict_but_arbitrary_weakening_is_not():
    # declared arbitrary on an ordinary operator: sound weakening, clean
    node = PhysicalNode("Filter", "a = 1", children=[scan("T", hashed("a"))])
    node.dist = DistDesc.arbitrary()
    assert verify_physical_plan(node, NSEG).ok
    # the same declaration on a motion contradicts the motion semantics
    motion = PhysicalNode(
        "Redistribute Motion", "on (b)", children=[scan("T", hashed("a"))]
    )
    motion.dist = DistDesc.arbitrary()
    (finding,) = verify_physical_plan(motion, NSEG).findings
    assert finding.code == "PKB212"
    assert "Redistribute Motion" in finding.message


def test_single_segment_skips_distribution_checks_only():
    join = PhysicalNode(
        "Hash Join",
        "on L.a = R.b",
        children=[scan("L", hashed("a")), scan("R", hashed("c"))],
    )
    assert verify_physical_plan(join, 1).ok  # nseg=1: trivially sound
    broken = PhysicalNode("Quantum Scan", "on T")
    assert not verify_physical_plan(broken, 1).ok  # structure still checked


def test_paths_descend_into_children():
    inner = PhysicalNode("Quantum Scan", "on T")
    outer = PhysicalNode(
        "Hash Join",
        "on L.a = R.a",
        children=[scan("L", hashed("a")), PhysicalNode("Filter", "x", children=[inner])],
    )
    report = verify_physical_plan(outer, NSEG)
    (finding,) = [f for f in report.findings if f.code == "PKB212"]
    assert finding.path == "root.1.0"


# -- the runtime gate over live executions -----------------------------------

PEOPLE = [(i, f"p{i}", (i % 7) * 10) for i in range(60)]
CITIES = [(c * 10, f"city{c}", c * 1000) for c in range(7)]


def make_cluster(nseg=4, verify_plans=None, city_policy=None):
    cluster = MPPDatabase(nseg=nseg, verify_plans=verify_plans)
    cluster.create_table(
        schema("person", "id:int", "name:text", "city:int"),
        HashDistribution(["id"]),
    )
    cluster.create_table(
        schema("city", "id:int", "name:text", "pop:int"),
        city_policy or HashDistribution(["id"]),
    )
    cluster.bulkload("person", PEOPLE)
    cluster.bulkload("city", CITIES)
    return cluster


def join_plan():
    return HashJoin(
        Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"]
    )


@pytest.mark.parametrize("mode", ["adaptive", "static"])
@pytest.mark.parametrize("policy", [None, ReplicatedDistribution()])
def test_gate_on_results_identical_and_plans_clean(mode, policy):
    loud = make_cluster(verify_plans=True, city_policy=policy)
    quiet = make_cluster(verify_plans=False, city_policy=policy)
    loud.plan_mode = mode
    quiet.plan_mode = mode
    assert (
        loud.query(join_plan()).sorted_rows()
        == quiet.query(join_plan()).sorted_rows()
    )


def test_gate_rejects_a_malformed_plan_before_execution():
    cluster = make_cluster(verify_plans=True)
    bad = Filter(Scan("person", "p"), Compare("=", Col("ghost"), Const(1)))
    with pytest.raises(PlanVerificationError) as info:
        cluster.query(bad)
    assert "PKB203" in str(info.value)
    assert info.value.report.errors


def test_gate_env_var_reaches_the_cluster(monkeypatch):
    monkeypatch.setenv("PROBKB_VERIFY_PLANS", "1")
    assert make_cluster().verify_plans is True
    monkeypatch.delenv("PROBKB_VERIFY_PLANS")
    assert make_cluster().verify_plans is False
    assert make_cluster(verify_plans=True).verify_plans is True


def test_single_node_gate_rejects_malformed_plans():
    db = Database(verify_plans=True)
    db.create_table(schema("t", "a:int"))
    db.bulkload("t", [(1,)])
    bad = Filter(Scan("t"), Compare("=", Col("ghost"), Const(1)))
    with pytest.raises(PlanVerificationError):
        db.query(bad)
    good = Filter(Scan("t"), Compare("=", Col("a"), Const(1)))
    assert db.query(good).rows == [(1,)]


def test_each_plan_object_is_verified_once():
    cluster = make_cluster(verify_plans=True)
    plan = join_plan()
    cluster.query(plan)
    assert plan in cluster._verified_plans
    cluster.query(plan)  # second run: cache hit, still correct
    assert len(cluster.query(plan).rows) == 60
