"""MPP SQL execution and aggregate/distinct parity details."""

import pytest

from repro.mpp import HashDistribution, MPPDatabase
from repro.relational import Database, schema

ROWS = [(i, i % 4, f"s{i % 3}") for i in range(50)]


def engines(nseg=4):
    single = Database()
    cluster = MPPDatabase(nseg=nseg)
    single.create_table(schema("t", "a:int", "b:int", "s:text"))
    cluster.create_table(
        schema("t", "a:int", "b:int", "s:text"), HashDistribution(["a"])
    )
    single.bulkload("t", ROWS)
    cluster.bulkload("t", ROWS)
    return single, cluster


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT t.a FROM t WHERE t.b = 2",
        "SELECT DISTINCT t.b FROM t",
        "SELECT t.b, COUNT(*) AS n FROM t GROUP BY t.b",
        "SELECT t.b, COUNT(*) AS n FROM t GROUP BY t.b HAVING COUNT(*) > 12",
        "SELECT t.s, MIN(t.a) AS lo, MAX(t.a) AS hi FROM t GROUP BY t.s",
        "SELECT COUNT(*) AS n FROM t",
        "SELECT t.b, COUNT(DISTINCT t.s) AS n FROM t GROUP BY t.b",
        "SELECT x.a FROM t x, t y WHERE x.a = y.b",
        "SELECT t.a FROM t ORDER BY t.a DESC LIMIT 3",
    ],
)
def test_sql_parity_single_vs_mpp(sql):
    single, cluster = engines()
    ours = single.execute_sql(sql).rows
    theirs = cluster.execute_sql(sql).rows
    if "ORDER BY" in sql:
        assert ours == theirs  # ordered results compare positionally
    else:
        assert sorted(map(tuple, ours)) == sorted(map(tuple, theirs))


@pytest.mark.parametrize("nseg", [1, 2, 7])
def test_group_by_collocation_across_segment_counts(nseg):
    single, cluster = engines(nseg)
    sql = "SELECT t.b, COUNT(*) AS n FROM t GROUP BY t.b"
    assert sorted(single.execute_sql(sql).rows) == sorted(
        cluster.execute_sql(sql).rows
    )


def test_aggregate_on_distribution_key_needs_no_motion():
    _, cluster = engines()
    cluster.execute_sql("SELECT t.a, COUNT(*) AS n FROM t GROUP BY t.a")
    explain = cluster.explain_last()
    # grouped by the distribution key: no redistribution below the gather
    assert "Redistribute Motion" not in explain


def test_aggregate_on_other_column_redistributes():
    _, cluster = engines()
    cluster.execute_sql("SELECT t.b, COUNT(*) AS n FROM t GROUP BY t.b")
    assert "Redistribute Motion" in cluster.explain_last()


def test_global_aggregate_gathers():
    _, cluster = engines()
    result = cluster.execute_sql("SELECT COUNT(*) AS n FROM t")
    assert result.rows == [(len(ROWS),)]
    assert "Gather Motion" in cluster.explain_last()
