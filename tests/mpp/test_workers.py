"""Multi-process MPP executor tests.

Everything here spawns real worker processes, so the whole module is
behind the ``mpp`` marker (excluded from tier-1; run with
``pytest -m mpp tests/mpp/test_workers.py`` or ``make test-mpp``).

The contract under test: with ``num_workers >= 1`` the cluster must
produce *bit-identical* results to serial execution — same rows, same
row order per segment, same modelled clock — and any worker failure
must degrade to serial execution with a warning, never a hang or a
wrong answer.
"""

import time

import pytest

from repro.core import MPPBackend, ProbKB
from repro.core.config import BackendConfig, MPPConfig
from repro.datasets import ReVerbSherlockConfig, WorldConfig, generate
from repro.datasets.paper_example import paper_kb
from repro.mpp import (
    HashDistribution,
    MPPDatabase,
    RandomDistribution,
    ReplicatedDistribution,
    WorkerCrashError,
    WorkerPool,
)
from repro.relational import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Project,
    Scan,
    col,
    eq_const,
    resolve_executor,
    schema,
)

pytestmark = pytest.mark.mpp

PEOPLE = [(i, f"p{i}", (i % 7) * 10) for i in range(60)]
CITIES = [(c * 10, f"city{c}", c * 1000) for c in range(7)]


def make_cluster(num_workers, nseg=4, city_policy=None):
    cluster = MPPDatabase(nseg=nseg, num_workers=num_workers, worker_timeout=30.0)
    cluster.create_table(
        schema("person", "id:int", "name:text", "city:int"),
        HashDistribution(["id"]),
    )
    cluster.create_table(
        schema("city", "id:int", "name:text", "pop:int"),
        city_policy or HashDistribution(["id"]),
    )
    cluster.bulkload("person", PEOPLE)
    cluster.bulkload("city", CITIES)
    return cluster

def plans():
    return {
        "scan": lambda: Scan("person"),
        "filter": lambda: Filter(Scan("person", "P"), eq_const("P.city", 30)),
        "join": lambda: HashJoin(
            Scan("person", "P"), Scan("city", "C"), ["P.city"], ["C.id"]
        ),
        "aggregate": lambda: Aggregate(
            Scan("person", "P"),
            group_by=["P.city"],
            aggregates=[("count", None, "n")],
        ),
        "global_count": lambda: Aggregate(
            Scan("person", "P"), group_by=[], aggregates=[("count", None, "n")]
        ),
        "distinct": lambda: Distinct(
            Project(Scan("person", "P"), [(col("P.city"), "city")])
        ),
    }


class TestQueryParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_pooled_queries_match_serial_bit_for_bit(self, num_workers):
        serial = make_cluster(0)
        pooled = make_cluster(num_workers)
        try:
            for name, factory in plans().items():
                ours = serial.query(factory())
                theirs = pooled.query(factory())
                # identical rows in identical order, not just same sets
                assert ours.rows == theirs.rows, name
                assert ours.columns == theirs.columns, name
            assert serial.elapsed_seconds == pooled.elapsed_seconds
        finally:
            pooled.close()

    def test_replicated_dimension_join(self):
        serial = make_cluster(0, city_policy=ReplicatedDistribution())
        pooled = make_cluster(2, city_policy=ReplicatedDistribution())
        try:
            plan = HashJoin(
                Scan("person", "P"), Scan("city", "C"), ["P.city"], ["C.id"]
            )
            assert serial.query(plan).rows == pooled.query(plan).rows
            assert serial.elapsed_seconds == pooled.elapsed_seconds
        finally:
            pooled.close()

    def test_random_distribution_parity(self):
        rows = [(i, i % 5) for i in range(40)]
        results = []
        for workers in (0, 2):
            db = MPPDatabase(nseg=3, num_workers=workers)
            db.create_table(schema("R", "a:int", "b:int"), RandomDistribution())
            db.bulkload("R", rows)
            results.append(
                (db.query(Scan("R")).sorted_rows(), db.elapsed_seconds)
            )
            db.close()
        assert results[0] == results[1]


class TestDMLParity:
    def test_insert_delete_truncate_stay_synced(self):
        serial = make_cluster(0)
        pooled = make_cluster(2)
        try:
            for db in (serial, pooled):
                db.insert_rows("person", [(100, "newp", 30), (101, "newq", 0)])
                db.delete_in(
                    "person",
                    ["id"],
                    Project(
                        Filter(Scan("person", "P"), eq_const("P.city", 10)),
                        [(col("P.id"), "id")],
                    ),
                )
            assert (
                serial.query(Scan("person")).rows
                == pooled.query(Scan("person")).rows
            )
            for db in (serial, pooled):
                db.truncate("city")
            assert serial.query(Scan("city")).rows == []
            assert pooled.query(Scan("city")).rows == []
            assert serial.elapsed_seconds == pooled.elapsed_seconds
        finally:
            pooled.close()

    def test_executor_info_reports_pool(self):
        pooled = make_cluster(2)
        try:
            info = pooled.executor_info()
            assert info["mode"] == "multiprocess"
            assert info["workers"] == 2
            assert info["segments"] == 4
            assert info["degraded"] is False
        finally:
            pooled.close()
        serial = make_cluster(0)
        assert serial.executor_info()["mode"] == "serial"


class TestGroundingEquivalence:
    def ground_pair(self, kb, **kwargs):
        outcomes = []
        for workers in (0, 2):
            backend = MPPBackend(nseg=4, num_workers=workers, **kwargs)
            system = ProbKB(kb, backend=backend)
            result = system.ground()
            outcomes.append(
                {
                    # exact per-segment rows, not just the union: the
                    # pooled executor must place every row where the
                    # serial one does
                    "tp_parts": [
                        part.rows for part in backend.db.table("TP").parts
                    ],
                    "tf_parts": [
                        part.rows for part in backend.db.table("TF").parts
                    ],
                    "iterations": [
                        (s.new_facts, s.removed_facts, s.fact_count, s.seconds)
                        for s in result.iterations
                    ],
                    "factors": result.factors,
                    "elapsed": backend.elapsed_seconds,
                    "degraded": backend.db.degraded,
                }
            )
            backend.close()
        return outcomes

    def test_paper_example_identical(self):
        serial, pooled = self.ground_pair(paper_kb())
        assert pooled["degraded"] is False
        assert serial == pooled

    def test_synthetic_kb_identical(self):
        generated = generate(
            ReVerbSherlockConfig(
                world=WorldConfig(n_people=40, seed=3), seed=3
            )
        )
        serial, pooled = self.ground_pair(generated.kb)
        assert pooled["degraded"] is False
        assert serial == pooled

    def test_naive_policy_identical(self):
        serial, pooled = self.ground_pair(paper_kb(), use_matviews=False)
        assert serial == pooled


class TestCrashRecovery:
    def test_query_survives_worker_death(self):
        pooled = make_cluster(2, nseg=4)
        try:
            expected = pooled.query(Scan("person")).sorted_rows()
            pooled.pool.processes[0].terminate()
            pooled.pool.processes[0].join()
            with pytest.warns(RuntimeWarning, match="worker pool lost"):
                survived = pooled.query(Scan("person")).sorted_rows()
            assert survived == expected
            assert pooled.degraded
            assert pooled.executor_info() == {
                "mode": "serial",
                "segments": 4,
                "workers": 0,
                "degraded": True,
                "plan": "adaptive",
                "engine": resolve_executor(None),
            }
            # the degraded cluster still accepts DML and queries
            pooled.insert_rows("person", [(999, "late", 0)])
            assert len(pooled.table("person")) == len(PEOPLE) + 1
        finally:
            pooled.close()

    def test_grounding_survives_worker_death(self):
        backend = MPPBackend(nseg=4, num_workers=2, worker_timeout=30.0)
        system = ProbKB(paper_kb(), backend=backend)
        backend.db.pool.processes[-1].terminate()
        backend.db.pool.processes[-1].join()
        with pytest.warns(RuntimeWarning, match="worker pool lost"):
            result = system.ground()
        assert backend.db.degraded

        reference_backend = MPPBackend(nseg=4, num_workers=0)
        reference = ProbKB(paper_kb(), backend=reference_backend)
        ref_result = reference.ground()
        assert sorted(backend.db.table("TP").all_rows()) == sorted(
            reference_backend.db.table("TP").all_rows()
        )
        assert result.total_new_facts == ref_result.total_new_facts
        backend.close()

    def test_close_terminates_workers(self):
        pooled = make_cluster(2)
        processes = list(pooled.pool.processes)
        assert all(p.is_alive() for p in processes)
        pooled.close()
        for p in processes:
            p.join(timeout=10)
        assert not any(p.is_alive() for p in processes)


class TestWorkerPool:
    def test_workers_capped_at_segments(self):
        pool = WorkerPool(nseg=2, num_workers=8)
        try:
            assert pool.num_workers == 2
            assert pool.ping()
        finally:
            pool.close()

    def test_segment_ownership_covers_all_segments(self):
        pool = WorkerPool(nseg=5, num_workers=2)
        try:
            owned = sorted(
                seg
                for worker in range(pool.num_workers)
                for seg in pool.segments_of(worker)
            )
            assert owned == [0, 1, 2, 3, 4]
        finally:
            pool.close()

    def test_dispatch_after_close_raises(self):
        pool = WorkerPool(nseg=2, num_workers=2)
        pool.close()
        with pytest.raises(WorkerCrashError):
            pool.dispatch(("ping",))

    def test_dead_worker_raises_crash_error(self):
        pool = WorkerPool(nseg=2, num_workers=2, reply_timeout=30.0)
        try:
            pool.processes[0].terminate()
            pool.processes[0].join()
            with pytest.raises(WorkerCrashError, match="died"):
                pool.dispatch(("ping",))
        finally:
            pool.close(force=True)

    def test_workers_ignore_sigint(self):
        """Ctrl-C hits the whole process group; only the master may
        stop workers, else an interactive interrupt degrades the pool."""
        import os
        import signal

        pool = WorkerPool(nseg=4, num_workers=2)
        try:
            for proc in pool.processes:
                os.kill(proc.pid, signal.SIGINT)
            time.sleep(0.3)
            assert all(proc.is_alive() for proc in pool.processes)
            assert pool.ping()
        finally:
            pool.close()


class TestSessionIntegration:
    def test_expansion_session_with_workers(self):
        from repro.api import ExpansionSession

        config = BackendConfig(
            kind="mpp", mpp=MPPConfig(num_segments=4, num_workers=2)
        )
        with ExpansionSession(paper_kb(), backend=config) as session:
            session.ground()
            info = session.executor_info()
            assert info["mode"] == "multiprocess"
            assert info["workers"] == 2
            processes = list(session.backend.db.pool.processes)
        for p in processes:
            p.join(timeout=10)
        assert not any(p.is_alive() for p in processes)
