"""Out-of-order task-epoch buffering in ``_WorkerState.task_mail``.

In-process tests (plain ``queue.Queue`` inboxes, no worker processes),
so this module is tier-1: the buffering logic is pure bookkeeping and
must hold regardless of the transport underneath.

Scenario under test: a task runs many barriers per command, so a fast
peer's piece for barrier N+1 can land in the inbox while this worker
still waits on barrier N.  Tuple epochs must be buffered and drained at
their own barrier; integer (motion) epochs are stale leftovers and are
dropped.
"""

import queue

from repro.mpp.workers import _WorkerState


def make_state(num_workers=2):
    inboxes = [queue.Queue() for _ in range(num_workers)]
    state = _WorkerState(
        worker_id=0,
        segments=[0],
        nseg=num_workers,
        seg_worker=tuple(range(num_workers)),
        exchange_queues=inboxes,
    )
    return state, inboxes


def test_future_epoch_buffered_stale_motion_dropped():
    state, _ = make_state()
    current = (7, 0, 0)  # (base, sweep, color)
    future = (7, 1, 0)
    state.inbox.put((future, 1, 0, "future-piece"))  # fast peer, next barrier
    state.inbox.put((3, 1, 0, "stale-motion-rows"))  # int epoch: dropped
    state.inbox.put((current, 1, 0, "current-piece"))

    got = state.collect_from_workers(current, [1])
    assert got == {1: "current-piece"}
    assert state.task_mail == {future: {1: "future-piece"}}
    assert state.inbox.empty()  # the stale motion piece was not buffered


def test_buffered_piece_drained_at_its_own_barrier():
    state, _ = make_state()
    current = (7, 0, 0)
    future = (7, 1, 0)
    state.inbox.put((future, 1, 0, "future-piece"))
    state.inbox.put((current, 1, 0, "current-piece"))
    state.collect_from_workers(current, [1])

    # the inbox is now empty: the future barrier must be satisfied
    # entirely from task_mail, without touching the (empty) queue
    got = state.collect_from_workers(future, [1])
    assert got == {1: "future-piece"}
    assert state.task_mail == {}


def test_interleaved_stale_and_future_across_barriers():
    state, _ = make_state(num_workers=3)
    barrier_a = (2, 0, 1)
    barrier_b = (2, 1, 1)
    # worker 2 is a full barrier ahead; worker 1 is on time; plus noise
    state.inbox.put((barrier_b, 2, 0, "b-from-2"))
    state.inbox.put((11, 1, 0, "stale-int"))
    state.inbox.put((barrier_a, 1, 0, "a-from-1"))
    state.inbox.put((barrier_a, 2, 0, "a-from-2"))

    assert state.collect_from_workers(barrier_a, [1, 2]) == {
        1: "a-from-1",
        2: "a-from-2",
    }
    # barrier B: one piece pre-buffered, the other arrives late
    state.inbox.put((barrier_b, 1, 0, "b-from-1"))
    assert state.collect_from_workers(barrier_b, [1, 2]) == {
        1: "b-from-1",
        2: "b-from-2",
    }
    assert state.task_mail == {}


def test_send_to_worker_wire_shape_matches_motions():
    state, inboxes = make_state()
    state.send_to_worker((1, 2, 3), 1, {"payload": True})
    assert inboxes[1].get_nowait() == ((1, 2, 3), 0, 1, {"payload": True})
