"""MPP simulator tests: result parity with the single-node engine,
motion planning, matviews, and simulated-time accounting."""

import pytest

from repro.mpp import HashDistribution, MPPDatabase, ReplicatedDistribution
from repro.relational import (
    Aggregate,
    Database,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Project,
    Scan,
    UnionAll,
    Values,
    col,
    const,
    eq_const,
    schema,
)
from repro.relational.expr import Compare

PEOPLE = [(i, f"p{i}", (i % 7) * 10) for i in range(60)]
CITIES = [(c * 10, f"city{c}", c * 1000) for c in range(7)]


def make_pair(nseg=4, city_policy=None):
    """Build equivalent single-node and MPP databases."""
    single = Database()
    cluster = MPPDatabase(nseg=nseg)
    person_schema = schema("person", "id:int", "name:text", "city:int")
    city_schema = schema("city", "id:int", "name:text", "pop:int")
    single.create_table(person_schema)
    single.create_table(city_schema)
    cluster.create_table(person_schema, HashDistribution(["id"]))
    cluster.create_table(city_schema, city_policy or HashDistribution(["id"]))
    single.bulkload("person", PEOPLE)
    single.bulkload("city", CITIES)
    cluster.bulkload("person", PEOPLE)
    cluster.bulkload("city", CITIES)
    return single, cluster


def assert_same(single, cluster, plan_factory):
    ours = single.query(plan_factory()).sorted_rows()
    theirs = cluster.query(plan_factory()).sorted_rows()
    assert ours == theirs


@pytest.mark.parametrize("nseg", [1, 3, 8])
def test_scan_parity(nseg):
    single, cluster = make_pair(nseg)
    assert_same(single, cluster, lambda: Scan("person"))


def test_filter_parity():
    single, cluster = make_pair()
    assert_same(
        single, cluster, lambda: Filter(Scan("person"), eq_const("person.city", 10))
    )


def test_join_parity_not_collocated():
    single, cluster = make_pair()
    factory = lambda: HashJoin(
        Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"]
    )
    assert_same(single, cluster, factory)


def test_join_collocated_when_distributed_on_keys():
    # person distributed by city, city by id: join keys match distributions
    cluster = MPPDatabase(nseg=4)
    cluster.create_table(
        schema("person", "id:int", "name:text", "city:int"),
        HashDistribution(["city"]),
    )
    cluster.create_table(
        schema("city", "id:int", "name:text", "pop:int"), HashDistribution(["id"])
    )
    cluster.bulkload("person", PEOPLE)
    cluster.bulkload("city", CITIES)
    result = cluster.query(
        HashJoin(Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"])
    )
    assert len(result) == len(PEOPLE)
    explain = cluster.explain_last()
    assert "Motion" not in explain.replace("Gather Motion", "")


def test_join_uncollocated_has_motion():
    single, cluster = make_pair()
    plan = HashJoin(Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"])
    cluster.query(plan)
    explain = cluster.explain_last()
    assert "Redistribute Motion" in explain or "Broadcast Motion" in explain


def test_replicated_join_needs_no_motion():
    single, cluster = make_pair(city_policy=ReplicatedDistribution())
    plan_factory = lambda: HashJoin(
        Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"]
    )
    assert_same(single, cluster, plan_factory)
    explain = cluster.explain_last()
    assert "Redistribute Motion" not in explain
    assert "Broadcast Motion" not in explain


def test_aggregate_parity():
    single, cluster = make_pair()
    factory = lambda: Aggregate(
        Scan("person", "p"),
        group_by=["p.city"],
        aggregates=[("count", None, "n"), ("min", "p.id", "min_id")],
    )
    assert_same(single, cluster, factory)


def test_aggregate_having_parity():
    single, cluster = make_pair()
    factory = lambda: Aggregate(
        Scan("person", "p"),
        group_by=["p.city"],
        aggregates=[("count", None, "n")],
        having=Compare(">", col("n"), const(8)),
    )
    assert_same(single, cluster, factory)


def test_global_aggregate_parity():
    single, cluster = make_pair()
    factory = lambda: Aggregate(
        Scan("person"), group_by=[], aggregates=[("count", None, "n")]
    )
    assert_same(single, cluster, factory)


def test_distinct_parity():
    single, cluster = make_pair()
    factory = lambda: Distinct(
        Project(Scan("person"), [(col("person.city"), "c")])
    )
    assert_same(single, cluster, factory)


def test_union_parity():
    single, cluster = make_pair()
    factory = lambda: UnionAll(
        [
            Project(Scan("person"), [(col("person.city"), "c")]),
            Project(Scan("city"), [(col("city.id"), "c")]),
        ]
    )
    assert_same(single, cluster, factory)


def test_limit():
    _, cluster = make_pair()
    result = cluster.query(Limit(Scan("person"), 5))
    assert len(result) == 5


def test_insert_from_dedups_across_segments():
    cluster = MPPDatabase(nseg=4)
    cluster.create_table(
        schema("t", "a:int", "b:int", unique_key=["a", "b"]),
        HashDistribution(["a"]),
    )
    cluster.bulkload("t", [(1, 1), (2, 2)])
    inserted = cluster.insert_from("t", Values(["a", "b"], [(1, 1), (3, 3), (3, 3)]))
    assert inserted == 1  # (1,1) already present; (3,3) stored exactly once
    assert len(cluster.table("t")) == 3


def test_delete_in():
    _, cluster = make_pair()
    removed = cluster.delete_in("person", ["city"], Values(["k"], [(10,), (20,)]))
    assert removed == sum(1 for p in PEOPLE if p[2] in (10, 20))


def test_redistributed_matview():
    _, cluster = make_pair()
    cluster.create_redistributed_matview("person_by_city", "person", ["city"])
    view = cluster.table("person_by_city")
    assert len(view) == len(PEOPLE)
    # all rows with the same city on the same segment
    for _part in view.parts:
        pass
    plan = HashJoin(
        Scan("person_by_city", "p"), Scan("city", "c"), ["p.city"], ["c.id"]
    )
    cluster.query(plan)
    explain = cluster.explain_last()
    # collocated: no motion below the final gather
    assert explain.count("Motion") == 1  # only the Gather


def test_matview_refresh_picks_up_new_rows():
    _, cluster = make_pair()
    cluster.create_redistributed_matview("v", "person", ["city"])
    cluster.bulkload("person", [(999, "new", 30)])
    cluster.refresh_all_matviews()
    assert len(cluster.table("v")) == len(PEOPLE) + 1


def test_elapsed_time_accumulates():
    _, cluster = make_pair()
    before = cluster.elapsed_seconds
    cluster.query(Scan("person"))
    assert cluster.elapsed_seconds > before


def test_unique_key_requires_distkey_subset():
    cluster = MPPDatabase(nseg=2)
    with pytest.raises(Exception):
        cluster.create_table(
            schema("t", "a:int", "b:int", unique_key=["a"]),
            HashDistribution(["b"]),
        )


def test_more_segments_less_elapsed():
    """Parallel (modelled) time should shrink with more segments."""
    times = {}
    for nseg in (1, 8):
        cluster = MPPDatabase(nseg=nseg)
        cluster.create_table(
            schema("big", "a:int", "b:int"), HashDistribution(["a"])
        )
        cluster.bulkload("big", [(i, i % 100) for i in range(20000)])
        cluster.query(Filter(Scan("big"), eq_const("big.b", 5)))
        times[nseg] = cluster.elapsed_seconds
    assert times[8] < times[1]
