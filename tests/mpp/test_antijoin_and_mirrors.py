"""MPP anti-joins, mirror (matview) maintenance, and explain output."""

from collections import Counter

import pytest

from repro.mpp import HashDistribution, MPPDatabase, ReplicatedDistribution
from repro.relational import Database, Scan, Values, schema
from repro.relational.plan import AntiJoin

LEFT = [(i, i % 5) for i in range(40)]
RIGHT = [(j, 0) for j in range(0, 40, 3)]


def build(nseg=4, right_policy=None):
    single = Database()
    cluster = MPPDatabase(nseg=nseg)
    single.create_table(schema("l", "a:int", "b:int"))
    single.create_table(schema("r", "c:int", "d:int"))
    cluster.create_table(schema("l", "a:int", "b:int"), HashDistribution(["a"]))
    cluster.create_table(
        schema("r", "c:int", "d:int"), right_policy or HashDistribution(["c"])
    )
    for engine in (single, cluster):
        engine.bulkload("l", LEFT)
        engine.bulkload("r", RIGHT)
    return single, cluster


def anti_plan():
    return AntiJoin(Scan("l"), Scan("r"), ["l.a"], ["r.c"])


def test_anti_join_single_node():
    single, _ = build()
    result = single.query(anti_plan())
    expected = [row for row in LEFT if row[0] % 3 != 0]
    assert sorted(result.rows) == sorted(expected)


@pytest.mark.parametrize("nseg", [1, 3, 8])
def test_anti_join_mpp_parity(nseg):
    single, cluster = build(nseg)
    ours = single.query(anti_plan()).sorted_rows()
    theirs = cluster.query(anti_plan()).sorted_rows()
    assert ours == theirs


def test_anti_join_against_replicated_right():
    single, cluster = build(right_policy=ReplicatedDistribution())
    assert (
        single.query(anti_plan()).sorted_rows()
        == cluster.query(anti_plan()).sorted_rows()
    )
    explain = cluster.explain_last()
    assert "Hash Anti Join" in explain
    assert "Redistribute Motion" not in explain


def test_anti_join_collocated_when_keys_match_distribution():
    _, cluster = build()  # l by a, r by c; anti keys a = c -> collocated
    cluster.query(anti_plan())
    explain = cluster.explain_last()
    assert explain.count("Motion") == 1  # only the final Gather


def test_anti_join_redistributes_when_not_collocated():
    _, cluster = build(right_policy=HashDistribution(["d"]))
    single, _ = build()
    assert (
        single.query(anti_plan()).sorted_rows()
        == cluster.query(anti_plan()).sorted_rows()
    )
    assert "Redistribute Motion" in cluster.explain_last()


class TestMirrors:
    def make(self):
        cluster = MPPDatabase(nseg=4)
        cluster.create_table(schema("t", "a:int", "b:int"), HashDistribution(["a"]))
        cluster.bulkload("t", LEFT)
        cluster.create_redistributed_matview("t_by_b", "t", ["b"])
        cluster.add_mirror("t", "t_by_b")
        return cluster

    def content(self, cluster, name):
        return Counter(cluster.table(name).all_rows())

    def test_mirror_starts_in_sync(self):
        cluster = self.make()
        assert self.content(cluster, "t") == self.content(cluster, "t_by_b")

    def test_bulkload_propagates(self):
        cluster = self.make()
        cluster.bulkload("t", [(100, 1), (101, 2)])
        assert self.content(cluster, "t") == self.content(cluster, "t_by_b")

    def test_insert_from_propagates(self):
        cluster = self.make()
        cluster.insert_from("t", Values(["a", "b"], [(200, 3), (201, 4)]))
        assert self.content(cluster, "t") == self.content(cluster, "t_by_b")

    def test_insert_from_with_ids_propagates(self):
        cluster = self.make()
        inserted, next_id = cluster.insert_from_with_ids(
            "t", Values(["b"], [(7,), (8,)]), next_id=500
        )
        assert inserted == 2 and next_id == 502
        assert self.content(cluster, "t") == self.content(cluster, "t_by_b")
        assert (500, 7) in self.content(cluster, "t")

    def test_delete_propagates(self):
        cluster = self.make()
        cluster.delete_in("t", ["b"], Values(["k"], [(0,)]))
        assert self.content(cluster, "t") == self.content(cluster, "t_by_b")
        assert all(row[1] != 0 for row in cluster.table("t").all_rows())

    def test_mirror_distribution_differs(self):
        cluster = self.make()
        view = cluster.table("t_by_b")
        for seg, part in enumerate(view.parts):
            values = {row[1] for row in part.rows}
            # every copy of a given b lands on one segment
            for other_seg, other in enumerate(view.parts):
                if other_seg != seg:
                    assert values.isdisjoint({row[1] for row in other.rows})


def test_insert_from_with_ids_single_node():
    db = Database()
    db.create_table(schema("t", "i:int", "v:int", "w:float"))
    inserted, next_id = db.insert_from_with_ids(
        "t", Values(["v"], [(5,), (6,)]), next_id=10, pad_nulls=1
    )
    assert inserted == 2 and next_id == 12
    assert db.table("t").rows == [(10, 5, None), (11, 6, None)]
