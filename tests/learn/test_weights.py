"""Weight learning tests: tied grounding, PLL ascent, and the key
behavioural property — correct rules earn higher weights than wrong
ones when trained on oracle labels."""

import pytest

from repro import GroundingConfig, ProbKB
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.learn import (
    build_tied_graph,
    learn_weights,
    observed_from_judge,
    pseudo_log_likelihood,
    reweighted_rules,
)

from repro.datasets import paper_kb


class TestTiedGrounding:
    @pytest.fixture(scope="class")
    def tied(self):
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        return system, build_tied_graph(system)

    def test_factor_counts_match_batch_grounding(self, tied):
        system, graph = tied
        # per-rule grounding reproduces the same TΦ multiset size
        assert graph.graph.num_factors == system.factor_count()

    def test_every_rule_parameter_present(self, tied):
        _, graph = tied
        used = {p for p in graph.parameter_of if p >= 0}
        # 4 of the 6 rules fire on this tiny KB (both M1 pairs + both M3)
        assert used <= set(range(len(graph.rules)))
        assert len(used) == 6

    def test_singletons_are_fixed(self, tied):
        _, graph = tied
        fixed = [p for p in graph.parameter_of if p == -1]
        assert len(fixed) == 2  # the two extracted facts


class TestLearning:
    def test_pll_increases_during_ascent(self):
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        tied = build_tied_graph(system)
        observed = {fid: 1 for fid in tied.graph.external_ids()}
        result = learn_weights(tied, observed, iterations=25, learning_rate=0.1)
        assert result.pll_trace[-1] >= result.pll_trace[0]

    def test_all_true_labels_grow_weights(self):
        """If every fact is observed true, supporting rules should get
        positive weight."""
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        tied = build_tied_graph(system)
        observed = {fid: 1 for fid in tied.graph.external_ids()}
        result = learn_weights(
            tied, observed, iterations=40, learning_rate=0.1, l2=0.001
        )
        assert all(weight > 0.5 for weight in result.weights)

    def test_correct_rules_outscore_wrong_rules(self):
        """The headline property: trained on oracle labels, the wrong
        rules' learned weights fall below the correct rules'."""
        generated = generate(
            ReVerbSherlockConfig(world=WorldConfig(n_people=120, seed=6), seed=6)
        )
        system = ProbKB(
            generated.kb, grounding=GroundingConfig(apply_constraints=True)
        )
        system.ground(max_iterations=6)
        tied = build_tied_graph(system)
        observed = observed_from_judge(system, generated.judge)
        result = learn_weights(
            tied, observed, iterations=40, learning_rate=0.08, l2=0.005
        )
        fired = {p for p in tied.parameter_of if p >= 0}
        correct_weights = [
            result.weights[i]
            for i in fired
            if generated.rule_is_correct.get(tied.rules[i], False)
        ]
        wrong_weights = [
            result.weights[i]
            for i in fired
            if not generated.rule_is_correct.get(tied.rules[i], True)
        ]
        assert correct_weights and wrong_weights
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(correct_weights) > mean(wrong_weights)

    def test_reweighted_rules_roundtrip(self):
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        tied = build_tied_graph(system)
        observed = {fid: 1 for fid in tied.graph.external_ids()}
        result = learn_weights(tied, observed, iterations=10)
        relearned = reweighted_rules(tied, result)
        assert len(relearned) == len(tied.rules)
        for old, new in zip(tied.rules, relearned):
            assert new.head == old.head and new.body == old.body
            assert new.weight == pytest.approx(
                result.weights[tied.rules.index(old)], abs=1e-3
            )

    def test_pll_is_finite(self):
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        tied = build_tied_graph(system)
        observed = {fid: 1 for fid in tied.graph.external_ids()}
        value = pseudo_log_likelihood(tied, observed, [1.0] * tied.num_parameters)
        assert value < 0 and value == value  # finite, negative log-prob
