"""Inference engine tests: Gibbs and BP validated against exact
enumeration on small graphs, plus structural/diagnostic checks."""

import math

import pytest

from repro.infer import (
    FactorGraph,
    GibbsSampler,
    bp_marginals,
    exact_map,
    exact_marginals,
    gibbs_marginals,
)


def single_fact_graph(weight=1.0):
    graph = FactorGraph()
    graph.add_clause(1, [], weight)
    return graph


def chain_graph():
    """The paper's Figure 2 shape: facts 1,2 with priors; rules derive 3,4,5."""
    graph = FactorGraph()
    graph.add_clause(1, [], 0.96)
    graph.add_clause(2, [], 0.93)
    graph.add_clause(3, [1], 1.53)  # live_in <- born_in
    graph.add_clause(4, [2], 1.40)
    graph.add_clause(5, [2, 1], 0.52)  # located_in <- born_in, born_in
    graph.add_clause(5, [4, 3], 0.32)
    return graph


def test_singleton_marginal_matches_logistic():
    # one variable, factor e^w if true: P(true) = e^w / (1 + e^w)
    weight = 0.96
    marginals = exact_marginals(single_fact_graph(weight))
    expected = math.exp(weight) / (1 + math.exp(weight))
    assert marginals[1] == pytest.approx(expected)


def test_clause_factor_semantics():
    graph = FactorGraph()
    factor = graph.add_clause(10, [11, 12], 0.5)
    # body true, head false -> violated
    assert not factor.satisfied([0, 1, 1])
    # body true, head true -> satisfied
    assert factor.satisfied([1, 1, 1])
    # body false -> vacuously satisfied regardless of head
    assert factor.satisfied([0, 0, 1])
    assert factor.satisfied([1, 1, 0])


def test_infinite_weight_rejected():
    graph = FactorGraph()
    with pytest.raises(ValueError):
        graph.add_clause(1, [2], math.inf)


def test_rule_raises_head_probability():
    """A derived fact should be more probable when its body is likely."""
    weak = FactorGraph()
    weak.add_clause(1, [], -2.0)  # body unlikely
    weak.add_clause(2, [1], 2.0)
    strong = FactorGraph()
    strong.add_clause(1, [], 2.0)  # body likely
    strong.add_clause(2, [1], 2.0)
    assert exact_marginals(strong)[2] > exact_marginals(weak)[2]


def test_gibbs_matches_exact_on_chain():
    graph = chain_graph()
    exact = exact_marginals(graph)
    approx = gibbs_marginals(graph, num_sweeps=4000, seed=7)
    for var, p in exact.items():
        assert approx[var] == pytest.approx(p, abs=0.05)


def test_bp_matches_exact_on_tree():
    graph = FactorGraph()
    graph.add_clause(1, [], 0.8)
    graph.add_clause(2, [1], 1.2)
    graph.add_clause(3, [2], 0.5)
    exact = exact_marginals(graph)
    result = bp_marginals(graph, max_iterations=200)
    assert result.converged
    for var, p in exact.items():
        assert result.marginals[var] == pytest.approx(p, abs=0.02)


def test_bp_close_on_loopy_graph():
    graph = chain_graph()
    exact = exact_marginals(graph)
    result = bp_marginals(graph, max_iterations=300)
    for var, p in exact.items():
        assert result.marginals[var] == pytest.approx(p, abs=0.08)


def test_chromatic_coloring_is_valid():
    graph = chain_graph()
    sampler = GibbsSampler(graph, seed=0)
    neighbors = graph.neighbors()
    for color_class in sampler._colors:
        class_set = set(color_class)
        for var in color_class:
            assert class_set.isdisjoint(neighbors[var])


def test_gibbs_deterministic_for_seed():
    graph = chain_graph()
    first = gibbs_marginals(graph, num_sweeps=100, seed=42)
    second = gibbs_marginals(graph, num_sweeps=100, seed=42)
    assert first == second


def test_exact_map_prefers_satisfying_world():
    graph = FactorGraph()
    graph.add_clause(1, [], 3.0)
    graph.add_clause(2, [1], 3.0)
    assignment = exact_map(graph)
    assert assignment == {1: 1, 2: 1}


def test_exact_rejects_large_graphs():
    graph = FactorGraph()
    for i in range(30):
        graph.add_clause(i, [], 0.1)
    with pytest.raises(ValueError):
        exact_marginals(graph)


def test_empty_graph():
    graph = FactorGraph()
    assert exact_marginals(graph) == {}
    assert gibbs_marginals(graph) == {}
    assert bp_marginals(graph).marginals == {}


def test_from_factor_rows_with_nulls():
    rows = [(1, None, None, 0.9), (2, 1, None, 1.1), (3, 1, 2, 0.3)]
    graph = FactorGraph.from_factor_rows(rows)
    assert graph.num_variables == 3
    assert graph.num_factors == 3
    assert graph.factors[0].body == ()
    assert len(graph.factors[2].body) == 2


def test_multichain_diagnostics_converge_on_chain_graph():
    from repro.infer import exact_marginals, gibbs_with_diagnostics

    graph = chain_graph()
    diagnostics = gibbs_with_diagnostics(graph, num_chains=4, num_sweeps=1500, seed=2)
    assert diagnostics.converged(threshold=1.1)
    exact = exact_marginals(graph)
    for var, p in exact.items():
        assert diagnostics.marginals[var] == pytest.approx(p, abs=0.06)


def test_multichain_diagnostics_shapes():
    from repro.infer import gibbs_with_diagnostics

    graph = chain_graph()
    diagnostics = gibbs_with_diagnostics(graph, num_chains=3, num_sweeps=50, seed=0)
    assert set(diagnostics.marginals) == set(diagnostics.r_hat)
    assert diagnostics.num_chains == 3
    assert diagnostics.max_r_hat >= 1.0


def test_multichain_empty_graph():
    from repro.infer import FactorGraph, gibbs_with_diagnostics

    diagnostics = gibbs_with_diagnostics(FactorGraph())
    assert diagnostics.marginals == {} and diagnostics.converged()
