"""Color-parallel Gibbs on the worker pool: bit-identity and degrade.

Everything here spawns real worker processes, so the module carries the
``mpp`` marker and runs outside tier-1 (``make test-mpp`` /
``pytest -m mpp``).  The planner unit tests live here too so the whole
parallel-inference surface is in one place.
"""

import random

import pytest

from repro.api import ExpansionSession, InferenceConfig
from repro.datasets.paper_example import paper_kb
from repro.delta.inference import componentwise_marginals, sample_components
from repro.infer.parallel import (
    ParallelGibbsDriver,
    plan_shards,
    split_ranges,
)

pytestmark = pytest.mark.mpp


def random_rows(seed, n_vars=60, n_extra_edges=25):
    """Random factor rows over several components.

    Chains the variables into a handful of runs, then sprinkles extra
    clauses (some with two-atom bodies) inside each run so components
    have cycles and varied factor arity.
    """
    rng = random.Random(seed)
    rows = []
    run_length = rng.randint(5, 12)
    runs = [
        list(range(start, min(start + run_length, n_vars)))
        for start in range(0, n_vars, run_length)
    ]
    for run in runs:
        for head, body in zip(run[1:], run[:-1]):
            rows.append((head, body, None, round(rng.uniform(0.3, 2.5), 3)))
    for _ in range(n_extra_edges):
        run = rng.choice(runs)
        if len(run) < 3:
            continue
        head, b1, b2 = rng.sample(run, 3)
        if rng.random() < 0.5:
            rows.append((head, b1, b2, round(rng.uniform(0.3, 2.0), 3)))
        else:
            rows.append((head, b1, None, round(rng.uniform(0.3, 2.0), 3)))
    return rows


def one_big_component(n_vars=80, seed=7):
    """A single connected component big enough to shard at threshold 16."""
    rng = random.Random(seed)
    rows = [
        (var, var - 1, None, round(rng.uniform(0.4, 2.0), 3))
        for var in range(1, n_vars)
    ]
    for _ in range(n_vars // 2):
        head, b1, b2 = rng.sample(range(n_vars), 3)
        rows.append((head, b1, b2, round(rng.uniform(0.3, 1.5), 3)))
    return rows


# ------------------------------------------------------------------ planner


class TestShardPlanner:
    def test_split_ranges_contiguous_and_even(self):
        ranges = split_ranges(10, 4)
        assert ranges == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert split_ranges(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_big_components_shard_small_ones_batch(self):
        snapshots = [
            (list(range(100)), []),          # big -> sharded
            ([100, 101], [(100, 101, None, 1.0)]),
            ([102, 103], [(102, 103, None, 1.0)]),
            ([104], []),
        ]
        plan = plan_shards(snapshots, num_workers=2, shard_threshold=64)
        assert plan.sharded == [0]
        assert plan.batched_components == 3
        assert sorted(i for batch in plan.batches for i in batch) == [1, 2, 3]

    def test_planning_is_deterministic(self):
        snapshots = [(list(range(i * 10, i * 10 + 5)), []) for i in range(9)]
        first = plan_shards(snapshots, num_workers=4)
        second = plan_shards(snapshots, num_workers=4)
        assert first.batches == second.batches
        assert first.sharded == second.sharded


# --------------------------------------------------------------- bit-identity


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_randomized_graphs_identical(self, graph_seed, num_workers):
        rows = random_rows(graph_seed)
        serial = componentwise_marginals(rows, num_sweeps=40, seed=11)
        with ParallelGibbsDriver(num_workers=num_workers) as driver:
            pooled = componentwise_marginals(rows, num_sweeps=40, seed=11, driver=driver)
            assert driver.info()["pooled"] is True
        assert pooled == serial  # bit-identical, not approximately equal

    def test_single_worker_is_inactive_and_identical(self):
        rows = random_rows(5)
        serial = componentwise_marginals(rows, num_sweeps=30, seed=4)
        with ParallelGibbsDriver(num_workers=1) as driver:
            assert not driver.active
            assert componentwise_marginals(rows, 30, 4, driver=driver) == serial
            assert driver.pool is None  # never spawned anything

    @pytest.mark.parametrize("num_workers", [2, 3, 4])
    def test_huge_component_sharded_identical(self, num_workers):
        rows = one_big_component()
        serial = componentwise_marginals(rows, num_sweeps=30, seed=9)
        driver = ParallelGibbsDriver(num_workers=num_workers, shard_threshold=16)
        try:
            pooled = componentwise_marginals(rows, num_sweeps=30, seed=9, driver=driver)
            info = driver.info()
            assert info["sharded_components"] == 1
            assert not driver.degraded
        finally:
            driver.close()
        assert pooled == serial

    def test_mixed_batch_and_shard_identical(self):
        rows = one_big_component(n_vars=40) + [
            (1000, 1001, None, 1.2),
            (1002, 1003, 1004, 0.7),
        ]
        serial = componentwise_marginals(rows, num_sweeps=25, seed=2)
        with ParallelGibbsDriver(num_workers=2, shard_threshold=16) as driver:
            pooled = componentwise_marginals(rows, num_sweeps=25, seed=2, driver=driver)
            info = driver.info()
            assert info["sharded_components"] == 1
            assert info["components"] == 3
        assert pooled == serial

    def test_session_marginals_identical_across_worker_counts(self):
        results = []
        for num_workers in (0, 2):
            config = InferenceConfig(sweeps=60, seed=3, num_workers=num_workers)
            with ExpansionSession(paper_kb(), inference=config) as session:
                session.ground()
                results.append(dict(session.infer()))
        assert results[0] == results[1]


# ------------------------------------------------------------------- degrade


class TestCrashDegrade:
    def test_worker_death_degrades_to_identical_serial(self):
        rows = random_rows(8)
        serial = componentwise_marginals(rows, num_sweeps=30, seed=6)
        driver = ParallelGibbsDriver(num_workers=2, worker_timeout=30.0)
        try:
            assert componentwise_marginals(rows, 30, 6, driver=driver) == serial
            driver.pool.processes[0].terminate()
            driver.pool.processes[0].join()
            with pytest.warns(RuntimeWarning, match="inference worker pool lost"):
                survived = componentwise_marginals(rows, 30, 6, driver=driver)
            assert survived == serial
            assert driver.degraded
            assert not driver.active
            info = driver.info()
            assert info["degraded"] is True
            assert info["pooled"] is False
            # reset forgets the degrade and respawns a healthy pool
            driver.reset()
            assert componentwise_marginals(rows, 30, 6, driver=driver) == serial
            assert driver.info()["pooled"] is True
        finally:
            driver.close()


# ------------------------------------------------------------ config plumbing


class TestConfigRoundTrips:
    def test_legacy_spellings_round_trip_through_engine(self):
        with pytest.warns(DeprecationWarning, match="pass sweeps="):
            legacy = InferenceConfig(num_sweeps=40, seed=5)
        modern = InferenceConfig(sweeps=40, seed=5)
        assert legacy == modern
        with ExpansionSession(paper_kb()) as session:
            session.ground()
            assert session.infer(legacy) == session.infer(modern)

    def test_pooled_config_flows_to_inference_info(self):
        config = InferenceConfig(sweeps=30, seed=1, num_workers=2)
        with ExpansionSession(paper_kb(), inference=config) as session:
            session.ground()
            session.infer()
            info = session.inference_info()
        assert info["engine"] == "gibbs"
        assert info["num_workers"] == 2
        assert info["pooled"] is True
        assert info["colors"] >= 2
        assert info["wall_seconds"] > 0

    def test_snapshot_free_driver_reuse(self):
        """The session caches one engine (and pool) per config."""
        config = InferenceConfig(sweeps=20, seed=0, num_workers=2)
        with ExpansionSession(paper_kb(), inference=config) as session:
            session.ground()
            first = session.probkb.inference_driver()
            session.infer()
            second = session.probkb.inference_driver()
            assert first is second
            assert first.pool is not None
