"""MAP inference: ICM and annealing validated against exact enumeration."""

import random

import pytest

from repro.infer import FactorGraph, annealed_map, exact_map, icm_map


def random_graph(seed, n_vars=8, n_factors=12):
    rng = random.Random(seed)
    graph = FactorGraph()
    for _ in range(n_factors):
        head = rng.randrange(n_vars)
        body = [rng.randrange(n_vars) for _ in range(rng.randint(0, 2))]
        graph.add_clause(head, body, rng.uniform(-2, 2))
    return graph


def score_of(graph, assignment):
    state = [assignment[graph.external_id(i)] for i in range(graph.num_variables)]
    return graph.log_score(state)


def test_icm_improves_or_matches_random_start():
    graph = random_graph(0)
    result = icm_map(graph, seed=3)
    rng = random.Random(3)
    random_score = graph.log_score(
        [rng.randint(0, 1) for _ in range(graph.num_variables)]
    )
    assert result.log_score >= random_score
    assert score_of(graph, result.assignment) == pytest.approx(result.log_score)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_annealing_finds_exact_map_on_small_graphs(seed):
    graph = random_graph(seed)
    exact = exact_map(graph)
    exact_score = score_of(graph, exact)
    result = annealed_map(graph, num_sweeps=400, seed=seed)
    assert result.log_score == pytest.approx(exact_score, abs=1e-9)


def test_annealing_at_least_as_good_as_icm():
    graph = random_graph(7, n_vars=10, n_factors=20)
    greedy = icm_map(graph, seed=1)
    annealed = annealed_map(graph, num_sweeps=300, seed=1)
    assert annealed.log_score >= greedy.log_score - 1e-9


def test_map_on_deterministic_chain():
    """Strong implications force the whole chain true.

    The all-false world is an ICM plateau (flipping any single variable
    does not improve the score), so only annealing is guaranteed to
    reach the global optimum here — exactly why it exists.
    """
    graph = FactorGraph()
    graph.add_clause(0, [], 5.0)
    for var in range(1, 6):
        graph.add_clause(var, [var - 1], 5.0)
    result = annealed_map(graph, num_sweeps=300, seed=0)
    assert result.true_facts() == [0, 1, 2, 3, 4, 5]
    greedy = icm_map(graph, seed=0)
    assert greedy.log_score <= result.log_score


def test_empty_graph_map():
    result = annealed_map(FactorGraph())
    assert result.assignment == {}
    assert result.log_score == 0.0


def test_icm_converges_before_cap():
    graph = random_graph(2)
    result = icm_map(graph, max_sweeps=100, seed=0)
    assert result.sweeps < 100
