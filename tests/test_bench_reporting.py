"""Benchmark reporting helpers."""

import os

import pytest

from repro.bench import (
    bench_scale,
    format_series,
    format_table,
    scaled,
    write_result,
)
from repro.mpp.plannodes import DistDesc, PhysicalNode


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [("a", 1), ("bbbb", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert "22.50" in lines[3]

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [(0.00123,), (12.3456,), (1234.5,), (0.0,)])
        assert "0.001" in text and "12.35" in text and "1234" in text


def test_format_series():
    text = format_series("probkb", [(1, 0.5), (2, 1.0)], "n", "s")
    assert text.startswith("probkb [n -> s]:")
    assert "(1, 0.500)" in text and "(2, 1.00)" in text


def test_write_result(tmp_path, monkeypatch, capsys):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "results_dir", lambda: str(tmp_path))
    path = write_result("unit_test_report", "hello world")
    assert os.path.exists(path)
    with open(path) as handle:
        assert handle.read().strip() == "hello world"
    assert "hello world" in capsys.readouterr().out


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert scaled(100) == 100

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert scaled(100) == 250

    def test_invalid_scale_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert scaled(100) == 1


class TestPhysicalNode:
    def test_explain_tree(self):
        leaf = PhysicalNode("Seq Scan", "on t", rows=10, seconds=0.001)
        root = PhysicalNode("Hash Join", children=[leaf], rows=5, seconds=0.002)
        text = root.explain()
        assert text.splitlines()[0].startswith("Hash Join")
        assert text.splitlines()[1].strip().startswith("Seq Scan on t")

    def test_total_seconds_and_find(self):
        leaf = PhysicalNode("Seq Scan", seconds=0.5)
        mid = PhysicalNode("Redistribute Motion", children=[leaf], seconds=0.25)
        root = PhysicalNode("Hash Join", children=[mid], seconds=0.25)
        assert root.total_seconds() == pytest.approx(1.0)
        assert len(root.find_all("Seq Scan")) == 1
        assert root.find_all("Broadcast Motion") == []


class TestDistDesc:
    def test_matches_keys_permutation(self):
        dist = DistDesc.hash_on(["b", "a"])
        assert dist.matches_keys(["a", "b"]) == (1, 0)
        assert dist.matches_keys(["a", "c"]) is None
        assert DistDesc.replicated().matches_keys(["a"]) is None

    def test_factories(self):
        assert DistDesc.arbitrary().kind == "arbitrary"
        assert DistDesc.hash_on(("x",)).columns == ("x",)
