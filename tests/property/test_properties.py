"""Property-based tests (hypothesis) on the core invariants."""

import math
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    PARTITION_BODY_PATTERNS,
    classify_clause,
    clause_from_identifier,
)
from repro.infer import FactorGraph, exact_marginals, gibbs_marginals
from repro.mpp import HashDistribution, MPPDatabase, partition_rows, stable_hash
from repro.relational import Database, Distinct, HashJoin, Scan, schema

# -- strategies ---------------------------------------------------------------

names = st.text(alphabet="abcdefg", min_size=1, max_size=4)
small_int = st.integers(min_value=0, max_value=6)
rows2 = st.lists(st.tuples(small_int, small_int), max_size=40)


# -- relational engine ----------------------------------------------------------


@given(left=rows2, right=rows2)
@settings(max_examples=60, deadline=None)
def test_hash_join_matches_nested_loop(left, right):
    db = Database()
    db.create_table(schema("l", "a:int", "b:int"))
    db.create_table(schema("r", "c:int", "d:int"))
    db.bulkload("l", left)
    db.bulkload("r", right)
    plan = HashJoin(Scan("l"), Scan("r"), ["l.b"], ["r.c"])
    got = Counter(db.query(plan).rows)
    expected = Counter(
        lrow + rrow for lrow in left for rrow in right if lrow[1] == rrow[0]
    )
    assert got == expected


@given(rows=rows2)
@settings(max_examples=40, deadline=None)
def test_distinct_is_set_semantics(rows):
    db = Database()
    db.create_table(schema("t", "a:int", "b:int"))
    db.bulkload("t", rows)
    result = db.query(Distinct(Scan("t")))
    assert sorted(result.rows) == sorted(set(map(tuple, rows)))


@given(rows=rows2)
@settings(max_examples=40, deadline=None)
def test_unique_key_inserts_are_idempotent(rows):
    db = Database()
    db.create_table(schema("t", "a:int", "b:int", unique_key=["a", "b"]))
    db.bulkload("t", rows)
    before = len(db.table("t"))
    db.bulkload("t", rows)  # inserting the same rows again adds nothing
    assert len(db.table("t")) == before == len(set(map(tuple, rows)))


@given(rows=rows2, nseg=st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_mpp_scan_preserves_multiset(rows, nseg):
    cluster = MPPDatabase(nseg=nseg)
    cluster.create_table(schema("t", "a:int", "b:int"), HashDistribution(["a"]))
    cluster.bulkload("t", rows)
    result = cluster.query(Scan("t"))
    assert Counter(result.rows) == Counter(map(tuple, rows))


@given(left=rows2, right=rows2, nseg=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mpp_join_matches_single_node(left, right, nseg):
    single = Database()
    cluster = MPPDatabase(nseg=nseg)
    for engine in (single, cluster):
        if isinstance(engine, Database):
            engine.create_table(schema("l", "a:int", "b:int"))
            engine.create_table(schema("r", "c:int", "d:int"))
        else:
            engine.create_table(schema("l", "a:int", "b:int"), HashDistribution(["b"]))
            engine.create_table(schema("r", "c:int", "d:int"), HashDistribution(["d"]))
        engine.bulkload("l", left)
        engine.bulkload("r", right)
    plan = lambda: HashJoin(Scan("l"), Scan("r"), ["l.b"], ["r.c"])
    assert Counter(single.query(plan()).rows) == Counter(cluster.query(plan()).rows)


@given(rows=rows2, nseg=st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_partition_rows_is_a_partition(rows, nseg):
    policy = HashDistribution(["a"])
    shards = partition_rows(rows, policy, (0,), nseg)
    assert sum(len(s) for s in shards) == len(rows)
    recombined = Counter(row for shard in shards for row in shard)
    assert recombined == Counter(map(tuple, rows))
    # deterministic placement: same key -> same shard
    for seg, shard in enumerate(shards):
        for row in shard:
            assert stable_hash((row[0],)) % nseg == seg


@given(values=st.lists(st.one_of(small_int, names), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_stable_hash_deterministic_and_type_sensitive(values):
    assert stable_hash(values) == stable_hash(list(values))
    # "1" and 1 must hash differently (strings vs ints never join)
    assert stable_hash(["1"]) != stable_hash([1])


# -- clauses ----------------------------------------------------------------------


@st.composite
def identifier_tuples(draw):
    partition = draw(st.sampled_from(sorted(PARTITION_BODY_PATTERNS)))
    body = len(PARTITION_BODY_PATTERNS[partition])
    relations = tuple(draw(names) for _ in range(body + 1))
    classes = tuple(draw(names) for _ in range(2 if body == 1 else 3))
    weight = draw(
        st.floats(min_value=0.01, max_value=10, allow_nan=False, allow_infinity=False)
    )
    return partition, relations, classes, weight


@given(identifier=identifier_tuples())
@settings(max_examples=100, deadline=None)
def test_clause_identifier_roundtrip(identifier):
    partition, relations, classes, weight = identifier
    clause = clause_from_identifier(partition, relations, classes, weight)
    classified = classify_clause(clause)
    assert classified.partition == partition
    assert classified.relations == relations
    assert classified.classes == classes
    assert classified.weight == pytest.approx(weight)


# -- inference ----------------------------------------------------------------------


@st.composite
def small_factor_graphs(draw):
    n_vars = draw(st.integers(min_value=1, max_value=6))
    n_factors = draw(st.integers(min_value=1, max_value=8))
    graph = FactorGraph()
    var_ids = list(range(n_vars))
    for _ in range(n_factors):
        head = draw(st.sampled_from(var_ids))
        body_size = draw(st.integers(min_value=0, max_value=2))
        body = [draw(st.sampled_from(var_ids)) for _ in range(body_size)]
        weight = draw(st.floats(min_value=-2.0, max_value=2.0, allow_nan=False))
        graph.add_clause(head, body, weight)
    return graph


@given(graph=small_factor_graphs())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_exact_marginals_are_probabilities(graph):
    marginals = exact_marginals(graph)
    assert set(marginals) == set(graph.external_ids())
    for probability in marginals.values():
        assert 0.0 <= probability <= 1.0


@given(graph=small_factor_graphs())
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_gibbs_tracks_exact(graph):
    exact = exact_marginals(graph)
    approx = gibbs_marginals(graph, num_sweeps=2500, seed=1)
    for var, probability in exact.items():
        assert approx[var] == pytest.approx(probability, abs=0.12)


@given(
    weight=st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_singleton_marginal_is_logistic(weight):
    graph = FactorGraph()
    graph.add_clause(0, [], weight)
    expected = 1.0 / (1.0 + math.exp(-weight))
    assert exact_marginals(graph)[0] == pytest.approx(expected)
