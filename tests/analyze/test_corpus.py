"""The degenerate-rule corpus: every finding code fires on its seed.

One test per PKB code; each seeds exactly one defect into the toy KB
from ``conftest`` and asserts the analyzer reports that code (and only
defect-free programs report nothing).
"""

import pytest

from repro.analyze import CODES, AnalysisReport, Finding, analyze
from repro.core import Atom, FunctionalConstraint, HornClause

from .conftest import good_rule, make_kb, rule


def codes(report):
    return [finding.code for finding in report]


def test_clean_kb_reports_nothing():
    report = analyze(make_kb(rules=[good_rule()]), include_infos=False)
    assert codes(report) == []
    assert not report.has_errors


def test_pkb001_unknown_relation():
    bad = rule(
        ("live_in", "x", "y"),
        [("teleports_to", "x", "y")],
        {"x": "Person", "y": "City"},
    )
    report = analyze(make_kb(rules=[bad]))
    assert "PKB001" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB001"]
    assert finding.severity == "error"
    assert finding.rule_index == 0
    assert finding.details["relation"] == "teleports_to"


def test_pkb002_arity_mismatch_suppresses_cascades():
    unary = HornClause.make(
        Atom("live_in", ("x", "y")),
        [Atom("born_in", ("x",))],
        1.0,
        {"x": "Person", "y": "City"},
    )
    report = analyze(make_kb(rules=[unary]), include_infos=False)
    assert codes(report) == ["PKB002"]
    (finding,) = report.findings
    assert finding.details["arity"] == 1


def test_pkb003_unbound_head_variable():
    unsafe = rule(
        ("live_in", "x", "y"),
        [("born_in", "x", "z")],
        {"x": "Person", "y": "City", "z": "City"},
    )
    report = analyze(make_kb(rules=[unsafe]))
    found = codes(report)
    assert "PKB003" in found
    assert "PKB005" not in found  # unbound head has its own code
    (finding,) = [f for f in report if f.code == "PKB003"]
    assert finding.details["variable"] == "y"


def test_pkb004_untyped_variable():
    untyped = rule(
        ("live_in", "x", "y"),
        [("born_in", "x", "y")],
        {"x": "Person"},  # y missing
    )
    report = analyze(make_kb(rules=[untyped]))
    found = codes(report)
    assert "PKB004" in found
    assert "PKB005" not in found  # untyped has its own code


def test_pkb005_shape_outside_partitions():
    three_body = rule(
        ("live_in", "x", "y"),
        [("born_in", "x", "y"), ("born_in", "x", "y"), ("live_in", "x", "y")],
        {"x": "Person", "y": "City"},
    )
    report = analyze(make_kb(rules=[three_body]))
    assert "PKB005" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB005"]
    assert "M1" in finding.message  # lists the supported shapes


def test_pkb006_body_atom_untypable_is_error():
    ill_typed = rule(
        ("located_in", "x", "y"),
        [("born_in", "x", "y")],  # born_in is (Person, City), not (City, Country)
        {"x": "City", "y": "Country"},
    )
    report = analyze(make_kb(rules=[ill_typed]))
    findings = [f for f in report if f.code == "PKB006"]
    assert findings
    assert any(f.severity == "error" for f in findings)


def test_pkb006_head_mismatch_is_only_warning():
    novel_head = rule(
        ("born_in", "x", "y"),  # head typed (City, Country): no such signature
        [("located_in", "x", "y")],
        {"x": "City", "y": "Country"},
    )
    report = analyze(make_kb(rules=[novel_head]))
    findings = [f for f in report if f.code == "PKB006"]
    assert findings
    assert all(f.severity == "warning" for f in findings)
    assert not report.has_errors


def test_pkb007_unknown_class():
    ghost = rule(
        ("live_in", "x", "y"),
        [("born_in", "x", "y")],
        {"x": "Ghost", "y": "City"},
    )
    report = analyze(make_kb(rules=[ghost]))
    assert "PKB007" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB007"]
    assert finding.details["class"] == "Ghost"


def test_pkb008_duplicate_rules_even_with_different_weights():
    report = analyze(make_kb(rules=[good_rule(weight=1.0), good_rule(weight=2.0)]))
    duplicates = [f for f in report if f.code == "PKB008"]
    assert len(duplicates) == 1
    assert duplicates[0].rule_index == 1
    assert duplicates[0].details["duplicate_of"] == 0
    assert duplicates[0].severity == "warning"


def test_pkb009_dead_rule_without_facts_or_producers():
    dead = rule(
        ("located_in", "x", "y"),
        [("capital_of", "x", "y")],  # no capital_of facts, nothing derives them
        {"x": "City", "y": "Country"},
    )
    report = analyze(make_kb(rules=[dead]))
    assert "PKB009" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB009"]
    assert finding.details["starved_relations"] == ["capital_of"]


def test_pkb009_not_fired_when_another_rule_produces_the_body():
    producer = rule(
        ("capital_of", "x", "y"),
        [("located_in", "x", "y")],
        {"x": "City", "y": "Country"},
    )
    consumer = rule(
        ("located_in", "x", "y"),
        [("capital_of", "x", "y")],
        {"x": "City", "y": "Country"},
    )
    report = analyze(make_kb(rules=[producer, consumer]), include_infos=False)
    assert "PKB009" not in codes(report)


def test_pkb010_constraint_over_unknown_relation():
    report = analyze(make_kb(constraints=[FunctionalConstraint("flies_to")]))
    assert "PKB010" in codes(report)


def test_pkb011_constraint_with_unknown_class():
    constraint = FunctionalConstraint("born_in", domain="Ghost")
    report = analyze(make_kb(constraints=[constraint]))
    assert "PKB011" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB011"]
    assert finding.details["class"] == "Ghost"


def test_pkb012_rule_guaranteed_to_violate_functional_constraint():
    # born_in(x, y) <- born_in(x, z), same_city(z, y): the body already
    # fixes a born_in object for x of the *same class* as y, so every
    # new derivation lands in Query 3's violating group.
    self_violating = rule(
        ("born_in", "x", "y"),
        [("born_in", "x", "z"), ("same_city", "z", "y")],
        {"x": "Person", "y": "City", "z": "City"},
    )
    constraint = FunctionalConstraint("born_in", arg=1, degree=1)
    report = analyze(make_kb(rules=[self_violating], constraints=[constraint]))
    assert "PKB012" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB012"]
    assert finding.severity == "error"
    assert finding.constraint is not None


def test_pkb012_needs_matching_determined_class():
    # Same shape, but z is typed over a different class than y: Query 3
    # groups by (R, x, C1, C2), so the derived facts land in a distinct
    # group and never collide with the body's born_in facts.
    benign = rule(
        ("born_in", "x", "y"),
        [("born_in", "x", "z"), ("located_in", "z", "y")],
        {"x": "Person", "y": "Country", "z": "City"},
    )
    constraint = FunctionalConstraint("born_in", arg=1, degree=1)
    report = analyze(make_kb(rules=[benign], constraints=[constraint]))
    assert "PKB012" not in codes(report)


def test_pkb012_pseudo_functional_degree_is_tolerated():
    self_violating = rule(
        ("born_in", "x", "y"),
        [("born_in", "x", "z"), ("same_city", "z", "y")],
        {"x": "Person", "y": "City", "z": "City"},
    )
    relaxed = FunctionalConstraint("born_in", arg=1, degree=2)
    report = analyze(make_kb(rules=[self_violating], constraints=[relaxed]))
    assert "PKB012" not in codes(report)


def test_pkb013_recursive_cycle_reported_as_info():
    forward = rule(
        ("capital_of", "x", "y"),
        [("located_in", "x", "y")],
        {"x": "City", "y": "Country"},
    )
    backward = rule(
        ("located_in", "x", "y"),
        [("capital_of", "x", "y")],
        {"x": "City", "y": "Country"},
    )
    report = analyze(make_kb(rules=[forward, backward]), include_infos=True)
    cycles = [f for f in report if f.code == "PKB013"]
    assert cycles
    assert all(f.severity == "info" for f in cycles)


def test_pkb014_bounds_info_present_only_with_infos():
    kb = make_kb(rules=[good_rule()])
    with_infos = analyze(kb, include_infos=True)
    without = analyze(kb, include_infos=False)
    assert "PKB014" in codes(with_infos)
    assert "PKB014" not in codes(without)


def test_pkb015_bad_weight():
    report = analyze(make_kb(rules=[good_rule(weight=-1.5)]))
    assert "PKB015" in codes(report)
    (finding,) = [f for f in report if f.code == "PKB015"]
    assert finding.severity == "warning"
    assert finding.details["weight"] == -1.5


def test_every_code_is_registered_and_renderable():
    rule_codes = {f"PKB{i:03d}" for i in range(1, 16)}
    plan_codes = {f"PKB{i}" for i in range(101, 106)}
    plancheck_codes = {f"PKB{i}" for i in range(201, 213)}
    assert set(CODES) == rule_codes | plan_codes | plancheck_codes
    for code, (severity, title) in CODES.items():
        finding = Finding(code=code, message="x")
        assert finding.severity == severity
        assert finding.title == title
        assert code in finding.render()


def test_unknown_code_and_severity_rejected():
    with pytest.raises(ValueError):
        Finding(code="PKB999", message="x")
    with pytest.raises(ValueError):
        Finding(code="PKB001", message="x", severity="fatal")


def test_report_round_trips_to_json():
    import json

    bad = rule(
        ("live_in", "x", "y"),
        [("teleports_to", "x", "y")],
        {"x": "Person", "y": "City"},
    )
    report = analyze(make_kb(rules=[bad]))
    payload = json.loads(report.to_json())
    assert payload["errors"] >= 1
    assert any(f["code"] == "PKB001" for f in payload["findings"])
    assert isinstance(report, AnalysisReport)
