"""Property tests: ``analyze`` is pure and deterministic.

Purity is what makes the ``"warn"`` gate safe — if analysis mutated the
KB, warn-mode grounding could diverge from off-mode grounding.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import SEVERITIES, analyze
from repro.core import FunctionalConstraint

from .conftest import CLASSES, RELATIONS, make_kb, rule

RELATION_NAMES = [relation.name for relation in RELATIONS] + ["no_such_relation"]
CLASS_NAMES = list(CLASSES) + ["NoSuchClass"]
VARS = ["x", "y", "z"]

atom_strategy = st.tuples(
    st.sampled_from(RELATION_NAMES),
    st.sampled_from(VARS),
    st.sampled_from(VARS),
)

rule_strategy = st.builds(
    lambda head, body, classes, weight: rule(
        head,
        body,
        {var: cls for var, cls in zip(VARS, classes)},
        weight=weight,
    ),
    head=atom_strategy,
    body=st.lists(atom_strategy, min_size=1, max_size=3),
    classes=st.lists(st.sampled_from(CLASS_NAMES), min_size=3, max_size=3),
    weight=st.sampled_from([-1.0, 0.5, 1.0, 2.5]),
)

constraint_strategy = st.builds(
    FunctionalConstraint,
    relation=st.sampled_from(RELATION_NAMES),
    arg=st.sampled_from([1, 2]),
    degree=st.integers(min_value=1, max_value=2),
)


def kb_snapshot(kb):
    return (
        copy.deepcopy(kb.classes),
        dict(kb.relations),
        {name: list(sigs) for name, sigs in kb.relation_signatures.items()},
        list(kb.facts),
        list(kb.rules),
        list(kb.constraints),
    )


@settings(max_examples=60, deadline=None)
@given(
    rules=st.lists(rule_strategy, max_size=5),
    constraints=st.lists(constraint_strategy, max_size=2),
)
def test_analyze_never_mutates_the_kb(rules, constraints):
    kb = make_kb(rules=rules, constraints=constraints)
    before = kb_snapshot(kb)
    analyze(kb, include_infos=True)
    assert kb_snapshot(kb) == before


@settings(max_examples=40, deadline=None)
@given(
    rules=st.lists(rule_strategy, max_size=5),
    constraints=st.lists(constraint_strategy, max_size=2),
)
def test_analyze_is_deterministic_and_well_formed(rules, constraints):
    kb = make_kb(rules=rules, constraints=constraints)
    first = analyze(kb, include_infos=True)
    second = analyze(kb, include_infos=True)
    assert first.findings == second.findings
    assert first.stats == second.stats
    for finding in first:
        assert finding.severity in SEVERITIES
        if finding.rule_index is not None:
            assert 0 <= finding.rule_index < len(kb.rules)
        assert finding.render()
