"""Static plan analysis: PKB101-105, the strict gate, and the report.

Each seeded program triggers exactly the pathology its test names:
a selective MLN join on a naive cluster broadcasts (PKB101), balanced
naive joins redistribute the facts table (PKB102), a dense relation
pair predicts a cross-product-like explosion (PKB103), and a hub
entity skews the join key (PKB104).
"""

import itertools
import json

import pytest

from repro.analyze import (
    AnalysisError,
    PlanEnvironment,
    StaticPlanReport,
    analyze,
    check_plans,
    estimate_plans,
    kb_statistics,
)
from repro.core import Atom, Fact, HornClause, KnowledgeBase, Relation

from .conftest import good_rule, make_kb


def chain_rule(weight=2.0):
    """p(x, y) <- q1(x, z), q2(z, y): the transitive-join shape."""
    return HornClause.make(
        Atom("p", ("x", "y")),
        [Atom("q1", ("x", "z")), Atom("q2", ("z", "y"))],
        weight,
        {"x": "Thing", "y": "Thing", "z": "Thing"},
    )


def _thing_kb(facts, extra_relations=()):
    entities = {f.subject for f in facts} | {f.object for f in facts}
    relations = [
        Relation(name, "Thing", "Thing")
        for name in ("q1", "q2", "p", *extra_relations)
    ]
    return KnowledgeBase(
        classes={"Thing": entities},
        relations=relations,
        facts=facts,
        rules=[chain_rule()],
    )


def dense_kb(d=80):
    """q1 = A x B complete, q2 = B x C complete: the estimator predicts
    the chain join emits far more rows than it consumes."""
    facts = [
        Fact("q1", f"a{i}", "Thing", f"b{j}", "Thing", weight=0.9)
        for i, j in itertools.product(range(d), range(d))
    ]
    facts += [
        Fact("q2", f"b{i}", "Thing", f"c{j}", "Thing", weight=0.9)
        for i, j in itertools.product(range(d), range(d))
    ]
    return _thing_kb(facts)


def hub_kb(n=600):
    """Every q1 fact points at one hub entity that every q2 fact leaves
    from: the join key's most common value holds 100% of the rows."""
    facts = [
        Fact("q1", f"e{i}", "Thing", "hub", "Thing", weight=0.9)
        for i in range(n)
    ]
    facts += [
        Fact("q2", "hub", "Thing", f"e{i}", "Thing", weight=0.9)
        for i in range(n)
    ]
    return _thing_kb(facts)


def wide_kb(n_rel=20, per_rel=100):
    """Facts spread over many relations: the MLN join is selective, so
    on a naive cluster the small side gets broadcast."""
    entities = [f"e{i}" for i in range(60)]
    pairs = list(itertools.product(entities, entities))[:per_rel]
    relation_names = [f"r{k}" for k in range(n_rel)]
    facts = [
        Fact(name, x, "Thing", y, "Thing", weight=0.5)
        for name in relation_names
        for x, y in pairs
    ]
    rule = HornClause.make(
        Atom("p", ("x", "y")),
        [Atom("r0", ("x", "z")), Atom("r1", ("z", "y"))],
        2.0,
        {"x": "Thing", "y": "Thing", "z": "Thing"},
    )
    return KnowledgeBase(
        classes={"Thing": set(entities)},
        relations=[
            Relation(name, "Thing", "Thing")
            for name in (*relation_names, "p")
        ],
        facts=facts,
        rules=[rule],
    )


def balanced_kb(n=500):
    """Two same-sized dense relations on a naive cluster: broadcasting
    loses to redistributing both sides, which ships the facts table."""
    entities = [f"e{i}" for i in range(40)]
    pairs = list(itertools.product(entities, entities))[:n]
    facts = [
        Fact("q1", x, "Thing", y, "Thing", weight=0.5) for x, y in pairs
    ]
    facts += [
        Fact("q2", x, "Thing", y, "Thing", weight=0.5) for x, y in pairs
    ]
    return _thing_kb(facts)


NAIVE = PlanEnvironment(
    kind="mpp",
    num_segments=8,
    use_matviews=False,
    large_motion_rows=50,
    skew_min_rows=10**9,
)


def codes(findings):
    return sorted({f.code for f in findings})


def test_pkb101_broadcast_of_large_relation():
    findings = check_plans(wide_kb(), NAIVE, include_infos=False)
    assert codes(findings) == ["PKB101"]
    finding = findings[0]
    assert finding.severity == "warning"
    assert "TP" in finding.details["source_tables"]
    assert finding.details["rows"] >= NAIVE.large_motion_rows


def test_pkb102_non_collocated_facts_join():
    env = PlanEnvironment(
        kind="mpp",
        num_segments=8,
        use_matviews=False,
        large_motion_rows=400,
        skew_min_rows=10**9,
    )
    findings = check_plans(balanced_kb(), env, include_infos=False)
    assert codes(findings) == ["PKB102"]
    assert all("TP" in f.details["source_tables"] for f in findings)


def test_pkb103_cardinality_explosion_default_thresholds():
    findings = check_plans(dense_kb(), include_infos=False)
    assert "PKB103" in codes(findings)
    (finding,) = [
        f for f in findings if f.code == "PKB103" and "1-4" in f.message
    ]
    assert finding.severity == "error"
    inputs = finding.details["left_rows"] + finding.details["right_rows"]
    assert finding.details["est_rows"] > 10 * inputs


def test_pkb104_skewed_join_key_default_thresholds():
    findings = check_plans(hub_kb(), include_infos=False)
    assert "PKB104" in codes(findings)
    finding = [f for f in findings if f.code == "PKB104"][0]
    assert finding.severity == "warning"
    assert finding.details["key_mcv"] == pytest.approx(1.0)


def test_pkb105_summary_is_info_only():
    kb = make_kb(rules=[good_rule()])
    with_infos = check_plans(kb, include_infos=True)
    without = check_plans(kb, include_infos=False)
    assert codes(with_infos) == ["PKB105"]
    assert codes(without) == []
    (summary,) = with_infos
    assert summary.severity == "info"
    assert summary.details["queries"] == 2  # Query 1-1 and 2-1
    assert summary.details["estimated_seconds"] > 0


def test_toy_kb_triggers_no_plan_warnings():
    # conservative default thresholds: tiny KBs never trip PKB101-104
    report = analyze(make_kb(rules=[good_rule()]), include_infos=False)
    assert [c for c in report.codes if c.startswith("PKB10")] == []


def test_strict_gate_rejects_predicted_explosion():
    from repro.core import BackendConfig, GroundingConfig, MPPConfig, ProbKB

    with pytest.raises(AnalysisError) as excinfo:
        ProbKB(
            dense_kb(),
            backend=BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=4)),
            grounding=GroundingConfig(analysis="strict"),
        )
    assert "PKB103" in str(excinfo.value)
    assert excinfo.value.report.by_code("PKB103")


def test_estimates_respect_environment():
    kb = hub_kb(50)
    mpp = estimate_plans(kb, PlanEnvironment())
    single = estimate_plans(
        kb, PlanEnvironment(kind="single", num_segments=1, use_matviews=False)
    )
    assert [q.name for q in mpp.queries] == [q.name for q in single.queries]
    # one segment has no interconnect: no motions, matviews irrelevant
    assert any(q.motions for q in mpp.queries)
    assert all(not q.motions for q in single.queries)
    assert all(
        not q.root.find_all("Redistribute Motion")
        and not q.root.find_all("Broadcast Motion")
        for q in single.queries
    )


def test_report_round_trips_through_json():
    report = estimate_plans(hub_kb(50))
    payload = json.loads(report.to_json())
    rebuilt = StaticPlanReport.from_dict(payload)
    assert rebuilt.to_dict() == report.to_dict()
    assert rebuilt.environment == report.environment
    assert rebuilt.query("Query 1-4").estimated_rows == report.query(
        "Query 1-4"
    ).estimated_rows
    with pytest.raises(KeyError):
        report.query("Query 9-9")


def test_kb_statistics_match_kb_shape():
    kb = hub_kb(100)
    catalog = kb_statistics(kb, PlanEnvironment())
    tp = catalog.stats("TP")
    assert tp.rows == len(kb.facts)
    assert tp.column("R").distinct == 2  # q1 and q2
    assert tp.column("x").mcv_fraction == pytest.approx(0.5)  # hub is half
    assert catalog.distribution("TP").kind == "hash"
    assert catalog.distribution("Txy").columns == ("R", "C1", "x", "C2", "y")
    assert catalog.distribution("M4").kind == "replicated"
    # duplicate facts collapse like the loader's fact-key dedup
    duplicated = KnowledgeBase(
        classes=kb.classes,
        relations=kb.relations.values(),
        facts=list(kb.facts) + list(kb.facts),
        rules=kb.rules,
    )
    assert kb_statistics(duplicated, PlanEnvironment()).stats("TP").rows == tp.rows


def test_unclassifiable_rules_are_skipped():
    # a unary-head rule is PKB002's business; the plan pass must not crash
    bad = HornClause.make(
        Atom("p", ("x", "x")),
        [Atom("q1", ("x", "y"))],
        1.0,
        {"x": "Thing", "y": "Thing"},
    )
    kb = KnowledgeBase(
        classes={"Thing": {"a", "b"}},
        relations=[
            Relation("p", "Thing", "Thing"),
            Relation("q1", "Thing", "Thing"),
        ],
        facts=[Fact("q1", "a", "Thing", "b", "Thing", weight=0.5)],
        rules=[bad],
        validate=False,
    )
    assert estimate_plans(kb).queries == []
    assert check_plans(kb, include_infos=True) == []
