"""The PlanCheck analyzer pass: every grounding plan of the paper KB
verifies clean in every environment, golden EXPLAIN snapshots, and the
PKB201-212 codes surface through the ordinary analysis report."""

from pathlib import Path

import pytest

from repro.analyze import (
    CODES,
    PlanEnvironment,
    analyze,
    check_plan_soundness,
    estimate_plans,
    grounding_schemas,
    partition_plans,
    verify_partition_plans,
)
from repro.analyze.verify import _catalog_dists
from repro.core.model import KnowledgeBase
from repro.datasets import paper_kb
from repro.mpp.plannodes import DistDesc
from repro.relational.statistics import StatisticsCatalog, TableDistribution, table_stats

GOLDEN = Path(__file__).parent / "golden"

SINGLE = PlanEnvironment(kind="single", num_segments=1, use_matviews=False)
MPP = PlanEnvironment()  # the paper's default: 8 segments, matviews on


def nonempty_partitions(kb):
    return sorted({p for _, p, _ in partition_plans(kb)})


# -- registry ----------------------------------------------------------------


def test_plancheck_codes_are_registered():
    assert {f"PKB{i}" for i in range(201, 213)} <= set(CODES)


def test_grounding_schemas_cover_every_scan_target():
    schemas = grounding_schemas()
    assert {"TP", "Tx", "Ty", "Txy", "T0"} <= set(schemas)
    assert {f"M{i}" for i in range(1, 7)} <= set(schemas)


# -- the paper KB verifies clean everywhere ----------------------------------


@pytest.mark.parametrize("env", [SINGLE, MPP], ids=["single", "mpp"])
def test_paper_kb_plans_verify_clean(env):
    kb = paper_kb()
    reports = verify_partition_plans(kb, env)
    assert reports, "the paper KB must produce grounding plans"
    for report in reports:
        assert report.ok and not report.findings, report.render()
    # two queries per nonempty partition, doubled by [static] on MPP
    expected = 2 * len(nonempty_partitions(kb))
    if env.effective_segments > 1:
        expected *= 2
    assert len(reports) == expected
    names = [r.plan_name for r in reports]
    for partition in nonempty_partitions(kb):
        assert f"Query 1-{partition}" in names
        assert f"Query 2-{partition}" in names
        if env.effective_segments > 1:
            assert f"Query 1-{partition} [static]" in names
            assert f"Query 2-{partition} [static]" in names


@pytest.mark.parametrize("env", [SINGLE, MPP], ids=["single", "mpp"])
def test_check_plan_soundness_finds_nothing_on_the_paper_kb(env):
    assert check_plan_soundness(paper_kb(), env) == []


def test_analyze_report_carries_no_plancheck_findings():
    report = analyze(paper_kb())
    assert not any(code.startswith("PKB2") for code in report.codes)


def test_broken_kb_is_the_other_passes_business():
    # a rule-free KB grounds nothing: no plans, no findings, no crash
    empty = KnowledgeBase(classes={}, relations=[], facts=[], rules=[])
    assert check_plan_soundness(empty) == []


# -- golden EXPLAIN snapshots ------------------------------------------------


@pytest.mark.parametrize(
    "env,golden",
    [(SINGLE, "explain_single.txt"), (MPP, "explain_mpp.txt")],
    ids=["single", "mpp"],
)
def test_explain_matches_golden_snapshot(env, golden):
    rendered = estimate_plans(paper_kb(), env).render() + "\n"
    expected = (GOLDEN / golden).read_text()
    assert rendered == expected, (
        f"EXPLAIN drifted from tests/analyze/golden/{golden}; if the "
        "planner change is intentional, regenerate the snapshot"
    )


def test_golden_snapshots_cover_every_query():
    kb = paper_kb()
    text = (GOLDEN / "explain_mpp.txt").read_text()
    for partition in nonempty_partitions(kb):
        assert f"Query 1-{partition}" in text
        assert f"Query 2-{partition}" in text


# -- catalog distribution translation ----------------------------------------


def test_catalog_dists_translate_every_kind():
    catalog = StatisticsCatalog(num_segments=4)
    stats = table_stats(["a", "b"], [(1, 2)])
    catalog.add("H", stats, TableDistribution.hash_on(["a"]))
    catalog.add("R", stats, TableDistribution.replicated())
    catalog.add("X", stats, TableDistribution.random())
    dists = _catalog_dists(catalog)
    assert dists["H"] == DistDesc.hash_on(["a"])
    assert dists["R"] == DistDesc.replicated()
    assert dists["X"] == DistDesc.arbitrary()


# -- findings surface with query context -------------------------------------


def test_findings_carry_query_and_node_context(monkeypatch):
    from repro.analyze import verify as verify_pass
    from repro.relational.verify import PlanFinding, VerificationReport

    def fake_reports(kb, environment=None):
        return [
            VerificationReport(
                plan_name="Query 2-3",
                findings=(
                    PlanFinding(
                        code="PKB209",
                        path="root.0",
                        message="inputs are hash(a) and hash(b)",
                        severity="error",
                    ),
                ),
            )
        ]

    monkeypatch.setattr(verify_pass, "verify_partition_plans", fake_reports)
    (finding,) = verify_pass.check_plan_soundness(paper_kb())
    assert finding.code == "PKB209"
    assert finding.severity == "error"
    assert finding.message.startswith("Query 2-3: root.0:")
    assert finding.details["query"] == "Query 2-3"
    assert finding.details["node"] == "root.0"
