"""The pre-flight gate: off / warn / strict semantics end to end."""

import warnings

import pytest

from repro import ProbKB
from repro.analyze import AnalysisError, AnalysisWarning
from repro.core import GroundingConfig
from repro.datasets import paper_kb

from .conftest import good_rule, make_kb, rule


def degenerate_kb():
    bad = rule(
        ("live_in", "x", "y"),
        [("teleports_to", "x", "y")],
        {"x": "Person", "y": "City"},
    )
    return make_kb(rules=[good_rule(), bad])


def expanded_fact_keys(system):
    return sorted(fact.key for fact in system.all_facts())


def test_strict_refuses_degenerate_kb():
    with pytest.raises(AnalysisError) as excinfo:
        ProbKB(
            degenerate_kb(),
            backend="single",
            grounding=GroundingConfig(analysis="strict"),
        )
    report = excinfo.value.report
    assert report.has_errors
    assert "PKB001" in report.codes


def test_strict_accepts_clean_kb():
    system = ProbKB(
        paper_kb(),
        backend="single",
        grounding=GroundingConfig(analysis="strict"),
    )
    assert system.analysis_report is not None
    assert not system.analysis_report.has_errors


def test_warn_emits_analysis_warning_and_still_grounds():
    with pytest.warns(AnalysisWarning, match="PKB001"):
        system = ProbKB(
            degenerate_kb(),
            backend="single",
            grounding=GroundingConfig(analysis="warn"),
        )
    outcome = system.ground()
    assert outcome.converged


def test_warn_is_silent_on_clean_kb():
    with warnings.catch_warnings():
        warnings.simplefilter("error", AnalysisWarning)
        ProbKB(
            paper_kb(),
            backend="single",
            grounding=GroundingConfig(analysis="warn"),
        )


def test_off_skips_analysis_entirely():
    system = ProbKB(
        degenerate_kb(),
        backend="single",
        grounding=GroundingConfig(analysis="off"),
    )
    assert system.analysis_report is None


@pytest.mark.parametrize("kb_factory", [paper_kb, degenerate_kb])
def test_warn_grounding_is_bit_identical_to_off(kb_factory):
    """Analysis is pure, so gating must never change what is derived."""
    results = {}
    for mode in ("off", "warn"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", AnalysisWarning)
            system = ProbKB(
                kb_factory(),
                backend="single",
                grounding=GroundingConfig(analysis=mode),
            )
            system.ground()
        results[mode] = expanded_fact_keys(system)
    assert results["warn"] == results["off"]


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="analysis"):
        GroundingConfig(analysis="loud")
