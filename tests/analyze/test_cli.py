"""`repro analyze` end to end over on-disk KBs."""

import json
import warnings

import pytest

from repro.analyze import AnalysisWarning
from repro.cli import main
from repro.datasets import load_kb, paper_kb, save_kb

from .conftest import good_rule, make_kb, rule


@pytest.fixture
def clean_dir(tmp_path):
    directory = str(tmp_path / "clean")
    save_kb(paper_kb(with_constraints=True), directory)
    return directory


@pytest.fixture
def broken_dir(tmp_path):
    directory = str(tmp_path / "broken")
    bad = rule(
        ("live_in", "x", "y"),
        [("teleports_to", "x", "y")],
        {"x": "Person", "y": "City"},
    )
    save_kb(make_kb(rules=[good_rule(), bad]), directory)
    return directory


def test_analyze_clean_kb_exits_zero(clean_dir, capsys):
    assert main(["analyze", "--kb", clean_dir]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out


def test_analyze_broken_kb_exits_nonzero(broken_dir, capsys):
    assert main(["analyze", "--kb", broken_dir]) == 1
    out = capsys.readouterr().out
    assert "PKB001" in out
    assert "teleports_to" in out


def test_analyze_json_output(broken_dir, capsys):
    assert main(["analyze", "--kb", broken_dir, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] >= 1
    assert any(f["code"] == "PKB001" for f in payload["findings"])


def test_load_kb_warns_on_broken_directory(broken_dir):
    with pytest.warns(AnalysisWarning, match="PKB001"):
        load_kb(broken_dir)


def test_load_kb_strict_vs_off(broken_dir):
    from repro.analyze import AnalysisError

    with pytest.raises(AnalysisError):
        load_kb(broken_dir, analysis="strict")
    with warnings.catch_warnings():
        warnings.simplefilter("error", AnalysisWarning)
        kb = load_kb(broken_dir, analysis="off")
    assert len(kb.rules) == 2


@pytest.fixture
def warned_dir(tmp_path):
    """A KB with warnings (a duplicate rule, PKB008) but no errors."""
    directory = str(tmp_path / "warned")
    save_kb(make_kb(rules=[good_rule(), good_rule()]), directory)
    return directory


def test_fail_on_error_tolerates_warnings(warned_dir, capsys):
    assert main(["analyze", "--kb", warned_dir]) == 0
    assert "PKB008" in capsys.readouterr().out


def test_fail_on_warn_gates_warnings(warned_dir, capsys):
    assert main(["analyze", "--kb", warned_dir, "--fail-on", "warn"]) == 1
    assert "PKB008" in capsys.readouterr().out


def test_analyze_missing_kb_exits_two(tmp_path, capsys):
    assert main(["analyze", "--kb", str(tmp_path / "nowhere")]) == 2


def test_explain_renders_plan_trees(clean_dir, capsys):
    assert main(["explain", "--kb", clean_dir]) == 0
    out = capsys.readouterr().out
    assert "static plan analysis" in out
    assert "Query 1-1" in out and "Query 2-1" in out
    assert "Seq Scan" in out
    assert "total estimated" in out


def test_explain_single_backend_has_no_motions(clean_dir, capsys):
    assert main(["explain", "--kb", clean_dir, "--backend", "single"]) == 0
    out = capsys.readouterr().out
    assert "backend=single" in out
    assert "Motion" not in out


def test_explain_json_round_trips(clean_dir, capsys):
    from repro.analyze import StaticPlanReport

    assert main(["explain", "--kb", clean_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    report = StaticPlanReport.from_dict(payload)
    assert report.to_dict() == payload
    assert report.environment.num_segments == 8
    assert [q.name for q in report.queries] == [
        q["name"] for q in payload["queries"]
    ]


def test_ground_strict_refuses_broken_kb(broken_dir, tmp_path, capsys):
    code = main(
        [
            "ground",
            "--kb",
            broken_dir,
            "--analysis",
            "strict",
            "--out",
            str(tmp_path / "never"),
        ]
    )
    assert code != 0
