"""Shared builders for the degenerate-rule corpus.

Each test seeds exactly one defect into an otherwise healthy toy KB,
so an asserted finding code is attributable to that defect alone.
"""

import pytest

from repro.core import Atom, Fact, HornClause, KnowledgeBase, Relation

CLASSES = {
    "Person": {"alice", "bob"},
    "City": {"nyc", "miami"},
    "Country": {"usa"},
}

RELATIONS = [
    Relation("born_in", "Person", "City"),
    Relation("live_in", "Person", "City"),
    Relation("located_in", "City", "Country"),
    Relation("capital_of", "City", "Country"),
    Relation("same_city", "City", "City"),
]

FACTS = [
    Fact("born_in", "alice", "Person", "nyc", "City", weight=0.9),
    Fact("located_in", "nyc", "City", "usa", "Country", weight=0.8),
]


def make_kb(rules=(), constraints=(), facts=FACTS, validate=False):
    """A KB over the toy schema; ``validate=False`` admits degenerate
    rules so the analyzer (not the constructor) gets to report them."""
    return KnowledgeBase(
        classes=CLASSES,
        relations=RELATIONS,
        facts=facts,
        rules=rules,
        constraints=constraints,
        validate=validate,
    )


def rule(head, body, classes, weight=1.0, score=1.0):
    return HornClause.make(
        Atom(head[0], tuple(head[1:])),
        [Atom(name, tuple(args)) for name, *args in body],
        weight,
        classes,
        score=score,
    )


def good_rule(weight=1.0):
    """live_in(x, y) <- born_in(x, y): clean under every pass."""
    return rule(
        ("live_in", "x", "y"),
        [("born_in", "x", "y")],
        {"x": "Person", "y": "City"},
        weight=weight,
    )


@pytest.fixture
def codes_of():
    def _codes(report):
        return [finding.code for finding in report]

    return _codes
