"""CLI tests: every subcommand end to end over a temp KB directory."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def kb_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("kb"))
    assert main(["generate", "--out", directory, "--people", "60", "--seed", "3"]) == 0
    return directory


def test_generate_writes_tsv(kb_dir, capsys):
    import os

    files = set(os.listdir(kb_dir))
    assert {"facts.tsv", "rules.tsv", "classes.tsv", "constraints.tsv"} <= files


def test_stats(kb_dir, capsys):
    assert main(["stats", "--kb", kb_dir]) == 0
    out = capsys.readouterr().out
    assert "# facts" in out and "# rules" in out


def test_sql(kb_dir, capsys):
    assert main(["sql", "--kb", kb_dir]) == 0
    out = capsys.readouterr().out
    assert "SELECT" in out and "Query 3" in out


def test_ground_and_export(kb_dir, tmp_path, capsys):
    out_dir = str(tmp_path / "expanded")
    code = main(
        ["ground", "--kb", kb_dir, "--iterations", "4", "--out", out_dir]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "iteration 1" in out and "new facts" in out
    from repro.datasets import load_kb

    expanded = load_kb(out_dir)
    # quality control prunes violating entities while expansion adds
    # inferred (NULL-weight) facts — check both effects are present
    assert expanded.facts
    assert any(fact.weight is None for fact in expanded.facts)


def test_ground_mpp_semi_naive(kb_dir, capsys):
    code = main(
        [
            "ground",
            "--kb",
            kb_dir,
            "--backend",
            "mpp",
            "--nseg",
            "4",
            "--semi-naive",
            "--iterations",
            "3",
        ]
    )
    assert code == 0


def test_infer(kb_dir, capsys):
    code = main(
        ["infer", "--kb", kb_dir, "--iterations", "3", "--sweeps", "60", "--top", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "inferred facts" in out and "P=" in out


def test_evaluate(capsys):
    code = main(
        [
            "evaluate",
            "--seed",
            "3",
            "--people",
            "60",
            "--theta",
            "0.5",
            "--constraints",
            "--iterations",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
