"""Regression tests for the row-op correctness fixes shipped with the
columnar executor.

1. ``Table.insert`` is atomic under validation failure.
2. Negative ``Limit`` is rejected everywhere (construction, both
   executors, MPP, verifier) instead of silently slicing from the end.
3. ``Sort`` places NULLs first in BOTH directions.
4. ``UnionAll`` and ``Sort`` charge ``rows_output`` to the CostClock.
"""

import pytest

from repro.mpp import MPPDatabase
from repro.relational import (
    Database,
    Limit,
    Scan,
    Sort,
    SqliteMirror,
    Table,
    UnionAll,
    col,
    schema,
    to_sql,
)
from repro.relational.plan import Project
from repro.relational.types import ExecutionError, PlanError, SchemaError
from repro.relational.verify import verify_plan


def _unchecked_limit(child, limit):
    """Build a Limit bypassing the constructor guard, as a corrupted or
    hand-rolled plan tree would."""
    node = Limit.__new__(Limit)
    node.child = child
    node.limit = limit
    return node


class TestAtomicInsert:
    def _table(self):
        return Table(schema("t", "a:int", "b:text"))

    def test_bad_row_mid_batch_leaves_table_untouched(self):
        table = self._table()
        table.insert([(1, "x")])
        with pytest.raises(SchemaError):
            table.insert([(2, "y"), ("not-an-int", "z"), (3, "w")])
        # the valid prefix (2, 'y') must NOT have been stored
        assert table.rows == [(1, "x")]

    def test_key_set_not_polluted_by_failed_batch(self):
        table = Table(schema("t", "a:int", "b:text", unique_key=["a"]))
        with pytest.raises(SchemaError):
            table.insert([(1, "x"), (2, 3.5)])
        assert table.rows == []
        # key 1 must not linger in the dedup set after the rollback
        assert table.insert([(1, "fresh")]) == 1
        assert table.rows == [(1, "fresh")]

    def test_generator_input_is_staged(self):
        table = self._table()
        rows = ((i, "ok") if i < 2 else (i, object()) for i in range(3))
        with pytest.raises(SchemaError):
            table.insert(rows)
        assert table.rows == []


class TestNegativeLimit:
    def test_rejected_at_construction(self):
        with pytest.raises(PlanError):
            Limit(Scan("t"), -1)

    @pytest.mark.parametrize("engine", ["rows", "columnar"])
    def test_rejected_by_executor(self, engine):
        db = Database("t", executor=engine)
        db.create_table(schema("t", "a:int"))
        db.bulkload("t", [(1,), (2,), (3,)])
        plan = _unchecked_limit(Scan("t"), -2)
        with pytest.raises(ExecutionError, match="non-negative"):
            db.query(plan)

    def test_rejected_by_mpp_executor(self):
        db = MPPDatabase(nseg=2)
        db.create_table(schema("t", "a:int"))
        db.bulkload("t", [(1,), (2,)])
        plan = _unchecked_limit(Scan("t"), -1)
        with pytest.raises(ExecutionError, match="non-negative"):
            db.query(plan)

    def test_flagged_by_verifier_as_error(self):
        db = Database("t")
        db.create_table(schema("t", "a:int"))
        plan = _unchecked_limit(
            Sort(Scan("t", "x"), [("x.a", False)]), -3
        )
        report = verify_plan(plan, tables=db.tables)
        assert not report.ok
        finding = next(f for f in report.errors if "negative" in f.message)
        assert finding.code == "PKB208"

    def test_zero_limit_still_fine(self):
        db = Database("t")
        db.create_table(schema("t", "a:int"))
        db.bulkload("t", [(1,)])
        assert db.query(Limit(Scan("t"), 0)).rows == []


class TestNullsFirstSort:
    ROWS = [(3,), (None,), (1,), (None,), (2,)]

    def _db(self, engine):
        db = Database("t", executor=engine)
        db.create_table(schema("t", "a:int"))
        db.bulkload("t", self.ROWS)
        return db

    @pytest.mark.parametrize("engine", ["rows", "columnar"])
    def test_nulls_first_both_directions(self, engine):
        db = self._db(engine)
        asc = db.query(Sort(Scan("t", "x"), [("x.a", False)])).rows
        desc = db.query(Sort(Scan("t", "x"), [("x.a", True)])).rows
        assert asc == [(None,), (None,), (1,), (2,), (3,)]
        assert desc == [(None,), (None,), (3,), (2,), (1,)]

    def test_desc_sort_matches_sqlite(self):
        # the emitted SQL pins NULLS FIRST so sqlite agrees with us on
        # *unsorted* comparison of the ordered projection
        db = self._db("columnar")
        plan = Sort(
            Project(Scan("t", "x"), [(col("x.a"), "a")]), [("a", True)]
        )
        sql = to_sql(plan)
        assert "DESC NULLS FIRST" in sql
        ours = db.query(plan).rows
        with SqliteMirror(db) as mirror:
            theirs = mirror.run(sql)
        assert ours == theirs


class TestUnionSortCharges:
    def _db(self, engine):
        db = Database("t", executor=engine)
        db.create_table(schema("t", "a:int"))
        db.bulkload("t", [(1,), (2,), (3,)])
        return db

    @pytest.mark.parametrize("engine", ["rows", "columnar"])
    def test_union_charges_rows_output(self, engine):
        db = self._db(engine)
        leg = Project(Scan("t", "x"), [(col("x.a"), "a")])
        leg2 = Project(Scan("t", "y"), [(col("y.a"), "a")])
        before = db.clock.rows_output
        db.query(UnionAll([leg, leg2]))
        # 3 rows per Project leg + 6 rows emitted by the union itself
        assert db.clock.rows_output - before == 12

    @pytest.mark.parametrize("engine", ["rows", "columnar"])
    def test_sort_charges_probe_and_output(self, engine):
        db = self._db(engine)
        before_out = db.clock.rows_output
        before_probe = db.clock.rows_probed
        db.query(Sort(Scan("t", "x"), [("x.a", True)]))
        assert db.clock.rows_output - before_out == 3
        assert db.clock.rows_probed - before_probe == 3

    def test_mpp_union_charges_match_single_node(self):
        rows = [(i,) for i in range(10)]
        single = Database("s")
        single.create_table(schema("t", "a:int"))
        single.bulkload("t", rows)
        leg = lambda alias: Project(  # noqa: E731
            Scan("t", alias), [(col(f"{alias}.a"), "a")]
        )
        single.query(UnionAll([leg("x"), leg("y")]))

        mpp = MPPDatabase(nseg=2)
        mpp.create_table(schema("t", "a:int"))
        mpp.bulkload("t", rows)
        mpp.query(UnionAll([leg("x"), leg("y")]))
        mpp_output = sum(c.rows_output for c in mpp.segment_clocks)
        assert mpp_output == single.clock.rows_output
