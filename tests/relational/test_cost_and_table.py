"""Cost-clock arithmetic and Table storage behaviours."""

import pytest

from repro.relational import Table, schema
from repro.relational.cost import (
    CostClock,
    QUERY_OVERHEAD_S,
    ROW_SCAN_S,
    ROW_SHIP_S,
)
from repro.relational.types import ExecutionError


class TestCostClock:
    def test_seconds_formula(self):
        clock = CostClock()
        clock.charge_query(3)
        clock.rows_scanned = 1000
        clock.rows_shipped = 10
        expected = 3 * QUERY_OVERHEAD_S + 1000 * ROW_SCAN_S + 10 * ROW_SHIP_S
        assert clock.seconds == pytest.approx(expected)

    def test_merge_adds(self):
        first = CostClock(queries=1, rows_scanned=10)
        second = CostClock(queries=2, rows_output=5)
        first.merge(second)
        assert first.queries == 3
        assert first.rows_scanned == 10 and first.rows_output == 5

    def test_delta_since(self):
        clock = CostClock(queries=5, rows_scanned=100)
        earlier = clock.copy()
        clock.charge_query()
        clock.rows_scanned += 50
        delta = clock.delta_since(earlier)
        assert delta.queries == 1 and delta.rows_scanned == 50
        assert delta.seconds == pytest.approx(
            QUERY_OVERHEAD_S + 50 * ROW_SCAN_S
        )

    def test_reset(self):
        clock = CostClock(queries=5, extra_seconds=1.5)
        clock.reset()
        assert clock.seconds == 0.0

    def test_snapshot_keys(self):
        snapshot = CostClock(queries=2).snapshot()
        assert snapshot["queries"] == 2 and "seconds" in snapshot


class TestTable:
    def make(self, unique=None):
        return Table(schema("t", "a:int", "b:int", unique_key=unique))

    def test_insert_and_iterate(self):
        table = self.make()
        table.insert([(1, 2), (3, 4)])
        assert list(table) == [(1, 2), (3, 4)]
        assert len(table) == 2

    def test_validation_rejects_bad_rows(self):
        table = self.make()
        with pytest.raises(Exception):
            table.insert([(1, "not an int")])
        with pytest.raises(Exception):
            table.insert([(1,)])  # arity

    def test_validation_can_be_skipped(self):
        table = self.make()
        table.insert([(1, "oops")], validate=False)
        assert len(table) == 1

    def test_unique_key_within_batch(self):
        table = self.make(unique=["a"])
        assert table.insert([(1, 1), (1, 2), (2, 2)]) == 2

    def test_contains_key(self):
        table = self.make(unique=["a", "b"])
        table.insert([(1, 2)])
        assert table.contains_key((1, 2))
        assert not table.contains_key((2, 1))
        keyless = self.make()
        with pytest.raises(ExecutionError):
            keyless.contains_key((1,))

    def test_delete_where(self):
        table = self.make()
        table.insert([(i, i % 2) for i in range(10)])
        removed = table.delete_where(lambda row: row[1] == 0)
        assert removed == 5 and len(table) == 5

    def test_delete_in_rebuilds_key_set(self):
        table = self.make(unique=["a"])
        table.insert([(1, 1), (2, 2)])
        table.delete_in(["a"], {(1,)})
        # the deleted key can be re-inserted
        assert table.insert([(1, 9)]) == 1

    def test_index_on_invalidated_by_mutation(self):
        table = self.make()
        table.insert([(1, 2), (1, 3)])
        index = table.index_on(["a"])
        assert index[(1,)] == [0, 1]
        table.insert([(1, 4)])
        assert table.index_on(["a"])[(1,)] == [0, 1, 2]

    def test_project_and_column(self):
        table = self.make()
        table.insert([(1, 2), (3, 4)])
        assert table.project(["b", "a"]) == [(2, 1), (4, 3)]
        assert table.column("a") == [1, 3]

    def test_truncate(self):
        table = self.make(unique=["a"])
        table.insert([(1, 1)])
        table.truncate()
        assert len(table) == 0
        assert table.insert([(1, 1)]) == 1  # key set cleared too
