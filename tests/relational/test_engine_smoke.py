"""Smoke tests for the relational engine built alongside development."""

import pytest

from repro.relational import (
    Aggregate,
    Database,
    Distinct,
    Filter,
    HashJoin,
    Project,
    Scan,
    SqliteMirror,
    UnionAll,
    col,
    const,
    eq_const,
    schema,
    to_sql,
)
from repro.relational.expr import Compare


@pytest.fixture
def db():
    database = Database("test")
    database.create_table(schema("person", "id:int", "name:text", "city:int"))
    database.create_table(schema("city", "id:int", "name:text", "pop:int"))
    database.bulkload(
        "person",
        [(1, "ann", 10), (2, "bob", 10), (3, "carol", 20), (4, "dave", None)],
    )
    database.bulkload("city", [(10, "gainesville", 100), (20, "orlando", 200)])
    return database


def test_scan_and_filter(db):
    plan = Filter(Scan("person"), eq_const("person.city", 10))
    result = db.query(plan)
    assert sorted(result.column("name")) == ["ann", "bob"]


def test_join(db):
    plan = HashJoin(Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"])
    result = db.query(plan)
    assert len(result) == 3  # dave has NULL city and never joins


def test_join_project_sql_conformance(db):
    plan = Project(
        HashJoin(Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"]),
        [(col("p.name"), "person_name"), (col("c.name"), "city_name")],
    )
    ours = db.query(plan).sorted_rows()
    with SqliteMirror(db) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_aggregate_having(db):
    plan = Aggregate(
        Scan("person", "p"),
        group_by=["p.city"],
        aggregates=[("count", None, "n")],
        having=Compare(">", col("n"), const(1)),
    )
    result = db.query(plan)
    assert result.rows == [(10, 2)]


def test_aggregate_sql_conformance(db):
    plan = Aggregate(
        Scan("person", "p"),
        group_by=["p.city"],
        aggregates=[("count", None, "n"), ("min", "p.id", "min_id")],
    )
    ours = db.query(plan).sorted_rows()
    with SqliteMirror(db) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_distinct_and_union(db):
    cities = Project(Scan("person"), [(col("person.city"), "c")])
    plan = Distinct(UnionAll([cities, cities]))
    result = db.query(plan)
    assert sorted(result.rows, key=lambda r: (r[0] is not None, r[0])) == [
        (None,),
        (10,),
        (20,),
    ]


def test_unique_key_dedup():
    database = Database()
    database.create_table(schema("t", "a:int", "b:int", unique_key=["a"]))
    database.bulkload("t", [(1, 1), (1, 2), (2, 1)])
    assert len(database.table("t")) == 2


def test_delete_in(db):
    from repro.relational import Values

    keys = Values(["k"], [(10,)])
    removed = db.delete_in("person", ["city"], keys)
    assert removed == 2
    assert len(db.table("person")) == 2


def test_insert_from(db):
    db.create_table(schema("names", "n:text"))
    count = db.insert_from("names", Project(Scan("person"), [(col("person.name"), "n")]))
    assert count == 4


def test_matview_refresh(db):
    plan = Project(Scan("person"), [(col("person.id"), "id")])
    db.create_matview("person_ids", plan, schema("person_ids", "id:int"))
    assert len(db.table("person_ids")) == 4
    db.bulkload("person", [(5, "eve", 20)])
    db.refresh_matview("person_ids")
    assert len(db.table("person_ids")) == 5


def test_cost_clock_monotone(db):
    before = db.clock.seconds
    db.query(Scan("person"))
    assert db.clock.seconds > before
    assert db.clock.queries >= 1
