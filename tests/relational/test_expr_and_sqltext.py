"""Expression semantics, column resolution, and SQL text rendering."""

import pytest

from repro.relational import (
    Aggregate,
    And,
    Compare,
    Database,
    Distinct,
    Filter,
    HashJoin,
    IsNull,
    Not,
    Or,
    PlanError,
    Project,
    Scan,
    SqliteMirror,
    col,
    conj,
    const,
    eq,
    eq_const,
    schema,
    to_sql,
)
from repro.relational.expr import resolve_column
from repro.relational.types import sql_literal


class TestResolution:
    COLUMNS = ["T.a", "T.b", "U.a", "c"]

    def test_exact_match(self):
        assert resolve_column("T.a", self.COLUMNS) == 0
        assert resolve_column("c", self.COLUMNS) == 3

    def test_suffix_match(self):
        assert resolve_column("b", self.COLUMNS) == 1

    def test_ambiguous_suffix(self):
        with pytest.raises(PlanError):
            resolve_column("a", self.COLUMNS)

    def test_missing(self):
        with pytest.raises(PlanError):
            resolve_column("zz", self.COLUMNS)


class TestExprSemantics:
    def bind(self, expr, columns=("a", "b")):
        return expr.bind(list(columns))

    def test_null_comparisons_are_false(self):
        evaluate = self.bind(eq("a", "b"))
        assert evaluate((None, 1)) is False
        assert evaluate((1, None)) is False
        assert evaluate((1, 1)) is True

    def test_boolean_operators(self):
        both = And(eq_const("a", 1), eq_const("b", 2))
        either = Or(eq_const("a", 1), eq_const("b", 2))
        neither = Not(either)
        assert self.bind(both)((1, 2)) and not self.bind(both)((1, 3))
        assert self.bind(either)((1, 9)) and not self.bind(either)((0, 0))
        assert self.bind(neither)((0, 0))

    def test_is_null(self):
        assert self.bind(IsNull(col("a")))((None, 1))
        assert self.bind(IsNull(col("a"), negated=True))((2, 1))

    def test_ordering_comparisons(self):
        greater = Compare(">", col("a"), const(5))
        assert self.bind(greater)((6, 0)) and not self.bind(greater)((5, 0))

    def test_conj_single_collapses(self):
        single = conj(eq_const("a", 1))
        assert isinstance(single, Compare)

    def test_expression_referenced_columns(self):
        expr = And(eq("a", "b"), IsNull(col("a")))
        assert sorted(expr.referenced_columns()) == ["a", "a", "b"]


class TestSqlLiterals:
    def test_quoting(self):
        assert sql_literal("o'hara") == "'o''hara'"
        assert sql_literal(None) == "NULL"
        assert sql_literal(3) == "3"
        assert sql_literal(2.5) == "2.5"


class TestSqlText:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table(schema("t", "a:int", "b:int", "s:text"))
        database.bulkload(
            "t", [(1, 10, "x"), (2, 20, "y"), (3, 20, None), (2, 30, "x")]
        )
        return database

    def check(self, db, plan):
        ours = db.query(plan).sorted_rows()
        with SqliteMirror(db) as mirror:
            theirs = mirror.run_sorted(to_sql(plan))
        assert ours == theirs

    def test_filter_with_string_literal(self, db):
        self.check(db, Filter(Scan("t"), eq_const("t.s", "x")))

    def test_is_not_null_filter(self, db):
        self.check(db, Filter(Scan("t"), IsNull(col("t.s"), negated=True)))

    def test_or_predicate(self, db):
        predicate = Or(eq_const("t.a", 1), eq_const("t.b", 30))
        self.check(db, Filter(Scan("t"), predicate))

    def test_self_join(self, db):
        plan = HashJoin(Scan("t", "t1"), Scan("t", "t2"), ["t1.b"], ["t2.b"])
        self.check(db, Project(plan, [(col("t1.a"), "a1"), (col("t2.a"), "a2")]))

    def test_distinct_projection(self, db):
        self.check(db, Distinct(Project(Scan("t"), [(col("t.b"), "b")])))

    def test_count_distinct(self, db):
        plan = Aggregate(
            Scan("t"),
            group_by=["t.b"],
            aggregates=[("count_distinct", "t.a", "n")],
        )
        self.check(db, plan)

    def test_global_count(self, db):
        plan = Aggregate(Scan("t"), group_by=[], aggregates=[("count", None, "n")])
        self.check(db, plan)

    def test_sum_and_max(self, db):
        plan = Aggregate(
            Scan("t"),
            group_by=["t.b"],
            aggregates=[("sum", "t.a", "total"), ("max", "t.a", "top")],
        )
        self.check(db, plan)

    def test_explain_text(self, db):
        plan = Filter(Scan("t"), eq_const("t.a", 1))
        text = plan.explain()
        assert "Filter" in text and "Seq Scan on t" in text
