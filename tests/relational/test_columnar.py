"""Unit tests for the columnar batch representation and kernels.

Every kernel must behave identically with numpy fast paths enabled and
with the pure-Python fallback (``PROBKB_NO_NUMPY=1``); the tests that
matter run under both via the ``no_numpy`` fixture parameterization.
"""

import pytest

from repro.relational.columnar import (
    EXECUTOR_ENGINES,
    ColumnBatch,
    aggregate_column,
    anti_join_indices,
    distinct_indices,
    get_numpy,
    group_indices,
    join_indices,
    null_first_sort_key,
    numpy_enabled,
    predicate_mask,
    resolve_executor,
    sort_indices,
)
from repro.relational.cost import CostClock
from repro.relational import columnar
from repro.relational.expr import conj, eq_const


@pytest.fixture(params=[False, True], ids=["numpy", "no-numpy"])
def no_numpy(request, monkeypatch):
    """Run the test twice: numpy fast paths on, then forced off."""
    if request.param:
        monkeypatch.setenv("PROBKB_NO_NUMPY", "1")
    else:
        monkeypatch.delenv("PROBKB_NO_NUMPY", raising=False)
    return request.param


class TestEngineSelection:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("PROBKB_EXECUTOR", raising=False)
        assert resolve_executor(None) == "columnar"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("PROBKB_EXECUTOR", "rows")
        assert resolve_executor(None) == "rows"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("PROBKB_EXECUTOR", "rows")
        assert resolve_executor("columnar") == "columnar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("vulcan")
        assert set(EXECUTOR_ENGINES) == {"columnar", "rows"}

    def test_no_numpy_gate(self, monkeypatch):
        monkeypatch.setenv("PROBKB_NO_NUMPY", "1")
        assert get_numpy() is None
        assert not numpy_enabled()
        monkeypatch.delenv("PROBKB_NO_NUMPY")
        # numpy is baked into the test image; the fast path must be on
        assert numpy_enabled()


class TestColumnBatch:
    def test_roundtrip(self):
        rows = [(1, "a", None), (2, "b", 3.5)]
        batch = ColumnBatch.from_rows(["x", "y", "z"], rows)
        assert batch.nrows == 2
        assert batch.to_rows() == rows
        assert batch.columns == ["x", "y", "z"]

    def test_gather_and_head(self):
        rows = [(i, i * 10) for i in range(5)]
        batch = ColumnBatch.from_rows(["a", "b"], rows)
        assert batch.gather([3, 0]).to_rows() == [(3, 30), (0, 0)]
        assert batch.head(2).to_rows() == rows[:2]
        assert batch.head(0).to_rows() == []

    def test_rename_shares_columns(self):
        batch = ColumnBatch.from_rows(["a"], [(1,), (2,)])
        renamed = batch.rename(["b"])
        assert renamed.columns == ["b"]
        assert renamed.cols[0] is batch.cols[0]

    def test_int_array_rejects_floats_and_strings(self, no_numpy):
        np = get_numpy()
        ints = ColumnBatch.from_rows(["a"], [(1,), (2,)])
        floats = ColumnBatch.from_rows(["a"], [(1.5,), (2.5,)])
        strings = ColumnBatch.from_rows(["a"], [("x",), ("y",)])
        nulls = ColumnBatch.from_rows(["a"], [(1,), (None,)])
        if np is None:
            assert ints.int_array(0) is None
        else:
            assert list(ints.int_array(0)) == [1, 2]
        # these must never take the int fast path regardless of numpy
        assert floats.int_array(0) is None
        assert strings.int_array(0) is None
        assert nulls.int_array(0) is None

    def test_huge_ints_stay_exact(self, no_numpy):
        # 2**63 overflows int64: conversion must bail out, not truncate
        batch = ColumnBatch.from_rows(["a"], [(2 ** 63,), (1,)])
        assert batch.int_array(0) is None
        assert batch.to_rows() == [(2 ** 63,), (1,)]


class TestJoinKernel:
    def _join(self, left_rows, right_rows, lpos, rpos):
        left = ColumnBatch.from_rows(
            [f"l{i}" for i in range(len(left_rows[0]) if left_rows else 1)],
            left_rows,
        )
        right = ColumnBatch.from_rows(
            [f"r{i}" for i in range(len(right_rows[0]) if right_rows else 1)],
            right_rows,
        )
        lidx, ridx, built, probed = join_indices(left, right, lpos, rpos)
        rows = [
            left_rows[li] + right_rows[ri]
            for li, ri in zip([int(i) for i in lidx], [int(i) for i in ridx])
        ]
        return rows, built, probed

    def test_matches_row_engine_order(self, no_numpy):
        # build side = smaller (right here); output must be probe-major
        # with build matches in original build order
        left = [(1, "a"), (2, "b"), (1, "c"), (3, "d")]
        right = [(1, "X"), (1, "Y")]
        rows, built, probed = self._join(left, right, [0], [0])
        assert rows == [
            (1, "a", 1, "X"),
            (1, "a", 1, "Y"),
            (1, "c", 1, "X"),
            (1, "c", 1, "Y"),
        ]
        assert (built, probed) == (2, 4)

    def test_null_keys_never_match(self, no_numpy):
        left = [(None, 1), (2, 2)]
        right = [(None, 9), (2, 8)]
        rows, _, _ = self._join(left, right, [0], [0])
        assert rows == [(2, 2, 2, 8)]

    def test_multi_column_keys(self, no_numpy):
        left = [(1, 2, "a"), (1, 3, "b")]
        right = [(1, 2, "X"), (9, 9, "Y")]
        rows, _, _ = self._join(left, right, [0, 1], [0, 1])
        assert rows == [(1, 2, "a", 1, 2, "X")]

    def test_empty_sides(self, no_numpy):
        assert self._join([], [(1, 2)], [0], [0])[0] == []
        assert self._join([(1, 2)], [], [0], [0])[0] == []

    def test_mixed_type_keys_fall_back(self, no_numpy):
        # string keys can never use the int encoding
        left = [("k1", 1), ("k2", 2)]
        right = [("k1", 9)]
        rows, _, _ = self._join(left, right, [0], [0])
        assert rows == [("k1", 1, "k1", 9)]


class TestAntiJoinKernel:
    def _anti(self, left_rows, right_rows):
        left = ColumnBatch.from_rows(["a", "b"], left_rows)
        right = ColumnBatch.from_rows(["a", "b"], right_rows)
        kept = anti_join_indices(left, right, [0], [0])
        return [left_rows[int(i)] for i in kept]

    def test_basic(self, no_numpy):
        left = [(1, "a"), (2, "b"), (3, "c")]
        right = [(2, "x")]
        assert self._anti(left, right) == [(1, "a"), (3, "c")]

    def test_null_left_key_is_kept_unless_null_on_right(self, no_numpy):
        # matches the row engine: the right side's key set contains the
        # NULL-bearing tuple, so a NULL left key is excluded only when a
        # NULL right key exists
        left = [(None, "a"), (1, "b")]
        assert self._anti(left, [(1, "x")]) == [(None, "a")]
        assert self._anti(left, [(None, "x")]) == [(1, "b")]

    def test_empty_right_keeps_all(self, no_numpy):
        left = [(1, "a")]
        assert self._anti(left, []) == left


class TestDistinctAndGroup:
    def test_distinct_first_occurrence_order(self, no_numpy):
        rows = [(2, "b"), (1, "a"), (2, "b"), (1, "z"), (1, "a")]
        batch = ColumnBatch.from_rows(["a", "b"], rows)
        kept = [rows[int(i)] for i in distinct_indices(batch)]
        assert kept == [(2, "b"), (1, "a"), (1, "z")]

    def test_distinct_with_nulls(self, no_numpy):
        rows = [(None,), (1,), (None,)]
        batch = ColumnBatch.from_rows(["a"], rows)
        kept = [rows[int(i)] for i in distinct_indices(batch)]
        assert kept == [(None,), (1,)]

    def test_group_indices_first_occurrence(self):
        rows = [(1, 10), (2, 20), (1, 30)]
        batch = ColumnBatch.from_rows(["k", "v"], rows)
        groups = group_indices(batch, [0])
        assert list(groups) == [(1,), (2,)]
        assert groups[(1,)] == [0, 2]

    def test_global_group_over_empty_input(self):
        batch = ColumnBatch.from_rows(["k"], [])
        assert group_indices(batch, []) == {(): []}

    def test_aggregate_column(self):
        values = [3, None, 1, 3]
        assert aggregate_column("count", values, [0, 1, 2, 3]) == 3
        assert aggregate_column("count", None, [0, 1]) == 2
        assert aggregate_column("min", values, [0, 2]) == 1
        assert aggregate_column("max", values, [0, 2]) == 3
        assert aggregate_column("sum", values, [0, 2, 3]) == 7
        assert aggregate_column("count_distinct", values, [0, 1, 2, 3]) == 2
        assert aggregate_column("min", values, [1]) is None


class TestSortKernel:
    def _sort(self, rows, keys):
        width = len(rows[0]) if rows else 1
        batch = ColumnBatch.from_rows([f"c{i}" for i in range(width)], rows)
        return [rows[int(i)] for i in sort_indices(batch, keys)]

    def test_nulls_first_both_directions(self, no_numpy):
        rows = [(3,), (None,), (1,), (2,)]
        assert self._sort(rows, [(0, False)]) == [(None,), (1,), (2,), (3,)]
        assert self._sort(rows, [(0, True)]) == [(None,), (3,), (2,), (1,)]

    def test_multi_key_stable(self, no_numpy):
        rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
        ordered = self._sort(rows, [(0, False), (1, True)])
        assert ordered == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]

    def test_int64_min_does_not_overflow(self, no_numpy):
        lo = -(2 ** 63)
        rows = [(0,), (lo,), (5,)]
        assert self._sort(rows, [(0, True)]) == [(5,), (0,), (lo,)]

    def test_sort_key_helper(self):
        asc = null_first_sort_key(0, False)
        desc = null_first_sort_key(0, True)
        assert asc((None,)) < asc((0,))
        # reverse=True flips, so NULL must carry the *largest* key
        assert desc((None,)) > desc((10 ** 9,))


class TestPredicateMask:
    def _mask(self, expr, rows, cols):
        batch = ColumnBatch.from_rows(cols, rows)
        return predicate_mask(expr, batch), batch

    def test_compare_vectorizes_with_numpy(self):
        rows = [(1,), (5,), (3,)]
        mask, _ = self._mask(eq_const("a", 3), rows, ["a"])
        if numpy_enabled():
            assert [bool(b) for b in mask] == [False, False, True]
        else:
            assert mask is None

    def test_conjunction(self):
        if not numpy_enabled():
            pytest.skip("vectorized masks need numpy")
        rows = [(1, 1), (1, 2), (2, 1)]
        expr = conj(eq_const("a", 1), eq_const("b", 1))
        mask, _ = self._mask(expr, rows, ["a", "b"])
        assert [bool(b) for b in mask] == [True, False, False]

    def test_string_column_falls_back(self):
        mask, _ = self._mask(eq_const("a", "x"), [("x",), ("y",)], ["a"])
        assert mask is None


class TestRowWrappers:
    def test_join_rows_matches_rowops_loop(self, no_numpy):
        left = [(1, "a"), (2, "b"), (1, "c")]
        right = [(1, "X"), (3, "Y")]
        c1, c2 = CostClock(), CostClock()
        ours = columnar.join_rows(left, right, [0], [0], None, c1)
        from repro.mpp import rowops

        theirs = rowops.hash_join_rows(
            list(left), list(right), [0], [0], None, c2, engine="rows"
        )
        assert ours == theirs
        assert c1.snapshot() == c2.snapshot()

    def test_sort_rows_charges_probe_and_output(self, no_numpy):
        clock = CostClock()
        ordered = columnar.sort_rows([(2,), (None,), (1,)], [(0, False)], clock)
        assert ordered == [(None,), (1,), (2,)]
        assert clock.rows_probed == 3
        assert clock.rows_output == 3
