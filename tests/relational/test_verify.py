"""PlanCheck, logical layer: every PKB201-208 code fires on a plan
built to violate exactly that invariant, and clean plans stay clean."""

import pytest

from repro.relational.expr import Col, Compare, Const
from repro.relational.plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
)
from repro.relational.types import ExecutionError, PlanError
from repro.relational.verify import (
    LOGICAL_CODES,
    PlanFinding,
    PlanVerificationError,
    VerificationReport,
    verify_plan,
    verify_plans_enabled,
)


def bound_scan(table="T", alias=None, columns=("a", "b")):
    scan = Scan(table, alias)
    scan.set_table_columns(list(columns))
    return scan


def codes(report):
    return report.codes


# -- registry & report plumbing ----------------------------------------------


def test_registry_covers_pkb201_to_208():
    assert set(LOGICAL_CODES) == {f"PKB20{i}" for i in range(1, 9)}
    for code, (severity, title) in LOGICAL_CODES.items():
        assert severity in ("error", "warning")
        assert title


def test_finding_requires_a_valid_severity():
    with pytest.raises(ValueError):
        PlanFinding(code="PKB201", path="root", message="m")
    with pytest.raises(ValueError):
        PlanFinding(code="PKB201", path="root", message="m", severity="fatal")


def test_report_partitions_renders_and_serializes():
    f1 = PlanFinding("PKB203", "root.0", "bad", severity="error")
    f2 = PlanFinding("PKB208", "root", "meh", severity="warning")
    report = VerificationReport(plan_name="Q", findings=(f1, f2))
    assert not report.ok
    assert [f.code for f in report.errors] == ["PKB203"]
    assert [f.code for f in report.warnings] == ["PKB208"]
    assert report.codes == ["PKB203", "PKB208"]
    rendered = report.render()
    assert rendered.startswith("verify Q: 1 errors, 1 warnings")
    assert "root.0: PKB203 error bad" in rendered
    payload = report.to_dict()
    assert payload["plan"] == "Q" and payload["ok"] is False
    assert payload["findings"][0]["path"] == "root.0"
    with pytest.raises(PlanVerificationError) as info:
        report.raise_if_errors()
    assert info.value.report is report
    assert isinstance(info.value, PlanError)
    # existing ``except ExecutionError`` handlers must keep working
    # when the runtime gate turns a would-be execution failure into a
    # pre-execution verification failure
    assert isinstance(info.value, ExecutionError)


def test_clean_report_raises_nothing():
    report = verify_plan(bound_scan(), name="scan")
    assert report.ok and report.findings == ()
    assert report.render() == "verify scan: clean"
    report.raise_if_errors()


def test_gate_env_var_and_override(monkeypatch):
    monkeypatch.delenv("PROBKB_VERIFY_PLANS", raising=False)
    assert verify_plans_enabled() is False
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("PROBKB_VERIFY_PLANS", value)
        assert verify_plans_enabled() is True
    monkeypatch.setenv("PROBKB_VERIFY_PLANS", "0")
    assert verify_plans_enabled() is False
    assert verify_plans_enabled(override=True) is True
    monkeypatch.setenv("PROBKB_VERIFY_PLANS", "1")
    assert verify_plans_enabled(override=False) is False


# -- PKB201: unbound scan of an unknown table --------------------------------


def test_pkb201_unbound_unknown_scan():
    report = verify_plan(Scan("Mystery"))
    (finding,) = report.findings
    assert finding.code == "PKB201"
    assert finding.path == "root"
    assert finding.severity == "error"
    assert "Seq Scan on Mystery" in finding.message
    assert "not a known table" in finding.message


def test_pkb201_names_the_known_tables():
    class FakeColumn:
        def __init__(self, name):
            self.name = name
            self.type = "int"

    class FakeSchema:
        columns = [FakeColumn("a")]

    report = verify_plan(Scan("Mystery"), tables={"TP": FakeSchema()})
    (finding,) = report.findings
    assert finding.code == "PKB201"
    assert "known tables: TP" in finding.message
    # and the known table itself verifies clean through the schema
    assert verify_plan(Scan("TP"), tables={"TP": FakeSchema()}).ok


# -- PKB202: duplicate output columns ----------------------------------------


def test_pkb202_self_join_duplicate_columns():
    left = bound_scan(alias="T")
    right = bound_scan(alias="T")
    join = HashJoin(left, right, ["T.a"], ["T.a"])
    report = verify_plan(join)
    dupes = [f for f in report.findings if f.code == "PKB202"]
    assert dupes and dupes[0].path == "root"
    assert "duplicate output columns" in dupes[0].message
    assert "T.a" in dupes[0].message and "T.b" in dupes[0].message


def test_pkb202_project_duplicate_names():
    plan = Project(bound_scan(), [(Col("a"), "x"), (Col("b"), "x")])
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB202"
    assert finding.path == "root"
    assert "Project: duplicate output columns [x]" in finding.message


# -- PKB203: out-of-scope or ambiguous references ----------------------------


def test_pkb203_filter_references_unknown_column():
    plan = Filter(bound_scan(), Compare("=", Col("nope"), Const(1)))
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB203"
    assert finding.path == "root"
    assert finding.message.startswith("Filter: expression")
    assert "nope" in finding.message
    assert finding.details["scope"] == ["T.a", "T.b"]


def test_pkb203_ambiguous_join_key():
    left = bound_scan(alias="L")
    right = bound_scan(alias="R")
    join = HashJoin(left, right, ["L.a"], ["R.a"])
    # 'a' alone is ambiguous in the combined scope of a downstream filter
    plan = Filter(join, Compare("=", Col("a"), Const(1)))
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB203" and finding.path == "root"


def test_pkb203_sort_key_out_of_scope():
    plan = Sort(bound_scan(), [("ghost", False)])
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB203"
    assert "Sort: key" in finding.message


# -- PKB204: join key arity --------------------------------------------------


def test_pkb204_key_arity_mismatch():
    left = bound_scan(alias="L")
    right = bound_scan(alias="R")
    with pytest.raises(PlanError):
        HashJoin(left, right, ["L.a", "L.b"], ["R.a"])
    join = HashJoin(left, right, ["L.a"], ["R.a"])
    join.left_keys = ["L.a", "L.b"]  # corrupt post-construction
    report = verify_plan(join)
    findings = [f for f in report.findings if f.code == "PKB204"]
    assert findings and findings[0].path == "root"
    assert "2 left keys [L.a, L.b] vs 1 right keys [R.a]" in findings[0].message


# -- PKB205: join key type disagreement --------------------------------------


def _typed_schema(spec):
    class FakeColumn:
        def __init__(self, name, type_):
            self.name = name
            self.type = type_

    class FakeSchema:
        columns = [FakeColumn(n, t) for n, t in spec]

    return FakeSchema()


def test_pkb205_type_disagreement():
    tables = {
        "Nums": _typed_schema([("k", "int")]),
        "Words": _typed_schema([("k", "text")]),
    }
    join = HashJoin(Scan("Nums", "N"), Scan("Words", "W"), ["N.k"], ["W.k"])
    report = verify_plan(join, tables=tables)
    (finding,) = [f for f in report.findings if f.code == "PKB205"]
    assert finding.path == "root"
    assert "N.k is int but W.k is text" in finding.message


def test_pkb205_silent_when_types_unknown():
    # bound scans carry no types: the check must not guess
    join = HashJoin(bound_scan(alias="L"), bound_scan(alias="R"), ["L.a"], ["R.a"])
    assert verify_plan(join).ok


# -- PKB206: UnionAll shape --------------------------------------------------


def test_pkb206_arity_mismatch_after_rebinding():
    wide = bound_scan(alias="L", columns=("a", "b"))
    narrow = bound_scan(alias="R", columns=("a", "b"))
    union = UnionAll([wide, narrow])
    narrow.set_table_columns(["a", "b", "c"])  # schema drifted post-plan
    report = verify_plan(union)
    (finding,) = [f for f in report.findings if f.code == "PKB206"]
    assert finding.severity == "error"
    assert finding.path == "root"
    assert "child 1 has 3 columns" in finding.message
    assert "expected 2" in finding.message


def test_pkb206_name_drift_is_a_warning():
    union = UnionAll(
        [Values(["a", "b"], [(1, 2)]), Values(["a", "c"], [(3, 4)])]
    )
    report = verify_plan(union)
    (finding,) = report.findings
    assert finding.code == "PKB206" and finding.severity == "warning"
    assert report.ok  # warnings never fail a plan
    assert "column names drift" in finding.message
    assert "b vs c" in finding.message


def test_pkb206_qualified_names_do_not_drift():
    # L.a vs R.a is the same column name under different aliases
    union = UnionAll(
        [bound_scan(alias="L", columns=("a",)), bound_scan(alias="R", columns=("a",))]
    )
    assert verify_plan(union).findings == ()


# -- PKB207: aggregate consistency -------------------------------------------


def test_pkb207_unknown_aggregate_function():
    with pytest.raises(PlanError):
        Aggregate(bound_scan(), ["a"], [("median", "b", "m")])
    plan = Aggregate(bound_scan(), ["a"], [("count", "b", "m")])
    plan.aggregates[0] = ("median", "b", "m")  # corrupt post-construction
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB207"
    assert finding.path == "root"
    assert "unknown aggregate function 'median'" in finding.message


def test_pkb207_output_name_collision():
    plan = Aggregate(bound_scan(), ["a"], [("count", None, "a")])
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB207"
    assert "output name collision" in finding.message
    assert "[a]" in finding.message


def test_pkb207_having_binds_against_aggregate_output():
    plan = Aggregate(
        bound_scan(),
        ["a"],
        [("count", None, "n")],
        having=Compare(">", Col("b"), Const(1)),  # b is not in the output
    )
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB207"
    assert "having" in finding.message
    assert "aggregate output columns [a, n]" in finding.message


def test_aggregate_clean_when_well_formed():
    plan = Aggregate(
        bound_scan(),
        ["a"],
        [("count", None, "n")],
        having=Compare(">", Col("n"), Const(0)),
    )
    assert verify_plan(plan).findings == ()


# -- PKB208: bag/set and ordering discipline ---------------------------------


def test_pkb208_distinct_over_distinct():
    plan = Distinct(Distinct(bound_scan()))
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB208" and finding.severity == "warning"
    assert finding.path == "root"
    assert "Distinct over Distinct" in finding.message


def test_pkb208_limit_without_sort():
    plan = Limit(bound_scan(), 5)
    (finding,) = verify_plan(plan).findings
    assert finding.code == "PKB208" and finding.severity == "warning"
    assert "Limit 5 over Scan" in finding.message
    # Limit directly over Sort is the sanctioned shape
    ordered = Limit(Sort(bound_scan(), [("a", False)]), 5)
    assert verify_plan(ordered).findings == ()


# -- nesting: paths address the offending node -------------------------------


def test_paths_descend_into_children():
    bad = Filter(bound_scan(), Compare("=", Col("ghost"), Const(1)))
    join = HashJoin(bound_scan(alias="L"), bad, ["L.a"], ["a"])
    (finding,) = [f for f in verify_plan(join).findings if f.code == "PKB203"]
    assert finding.path == "root.1"


# -- satellite: constructor errors name operator and columns ------------------


def test_values_constructor_error_lists_columns():
    with pytest.raises(PlanError) as info:
        Values(["a", "b"], [(1,)])
    message = str(info.value)
    assert "Values: row 0 has 1 values for 2 columns [a, b]" in message


def test_join_constructor_error_lists_keys():
    with pytest.raises(PlanError) as info:
        HashJoin(bound_scan(), bound_scan(), ["T.a", "T.b"], ["T.a"])
    assert "Hash Join: 2 left keys [T.a, T.b] vs 1 right keys [T.a]" in str(
        info.value
    )
    with pytest.raises(PlanError) as info:
        AntiJoin(bound_scan(), bound_scan(), [], ["T.a"])
    assert "Hash Anti Join: 0 left keys []" in str(info.value)


def test_unionall_constructor_error_lists_columns():
    with pytest.raises(PlanError) as info:
        UnionAll([Values(["a", "b"], []), Values(["a"], [])])
    message = str(info.value)
    assert "UnionAll: child 1 has 1 columns [a], expected 2 [a, b]" in message


# -- purity: verification never mutates the plan ------------------------------


def test_verify_does_not_bind_or_mutate():
    scan = Scan("TP")
    tables = {"TP": _typed_schema([("a", "int")])}
    verify_plan(scan, tables=tables)
    assert scan._columns is None  # still unbound
    with pytest.raises(PlanError):
        scan.output_columns
