"""Randomized differential tests: columnar vs row engine vs sqlite.

Seeded-random tables and operator trees are executed by both engines;
results must be *bit-identical* — same rows in the same order, and the
same CostClock counters — because downstream fact-id assignment depends
on result order.  Where ``to_sql`` can express the plan, the sqlite
bridge arbitrates SQL semantics on sorted rows.

Runs the whole matrix twice: numpy fast paths on, and forced off via
``PROBKB_NO_NUMPY`` (the pure-Python fallback must not drift).
"""

import random

import pytest

from repro.relational import (
    Aggregate,
    Database,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Project,
    Scan,
    Sort,
    SqliteMirror,
    UnionAll,
    col,
    eq,
    eq_const,
    schema,
    to_sql,
)
from repro.relational.plan import AntiJoin

SEED = 20260809
NROWS = 120


@pytest.fixture(params=[False, True], ids=["numpy", "no-numpy"])
def no_numpy(request, monkeypatch):
    if request.param:
        monkeypatch.setenv("PROBKB_NO_NUMPY", "1")
    else:
        monkeypatch.delenv("PROBKB_NO_NUMPY", raising=False)
    return request.param


def random_rows(rng, nrows):
    """int keys with NULLs and skew, a string column, an int payload."""
    rows = []
    for i in range(nrows):
        key = rng.choice([None, rng.randint(0, 9), rng.randint(0, 3)])
        label = rng.choice(["x", "y", "z", None])
        rows.append((key, label, rng.randint(-50, 50)))
    return rows


def build_db(executor, rows_r, rows_s):
    db = Database("diff", executor=executor)
    db.create_table(schema("R", "k:int", "lab:text", "v:int"))
    db.create_table(schema("S", "k:int", "lab:text", "v:int"))
    db.bulkload("R", rows_r)
    db.bulkload("S", rows_s)
    return db


def plan_catalog():
    """Plan factories covering every operator, NULL keys included."""
    return {
        "scan": lambda: Scan("R"),
        "filter_const": lambda: Filter(Scan("R", "r"), eq_const("r.k", 2)),
        "project": lambda: Project(
            Scan("R", "r"), [(col("r.v"), "v"), (col("r.k"), "k")]
        ),
        "join": lambda: HashJoin(
            Scan("R", "r"), Scan("S", "s"), ["r.k"], ["s.k"]
        ),
        "join_multi_key": lambda: HashJoin(
            Scan("R", "r"), Scan("S", "s"),
            ["r.k", "r.lab"], ["s.k", "s.lab"],
        ),
        "join_residual": lambda: HashJoin(
            Scan("R", "r"), Scan("S", "s"), ["r.k"], ["s.k"],
            residual=eq("r.lab", "s.lab"),
        ),
        "anti_join": lambda: AntiJoin(
            Scan("R", "r"), Scan("S", "s"), ["r.k"], ["s.k"]
        ),
        "distinct": lambda: Distinct(
            Project(Scan("R", "r"), [(col("r.k"), "k"), (col("r.lab"), "lab")])
        ),
        "aggregate": lambda: Aggregate(
            Scan("R", "r"),
            group_by=["r.k"],
            aggregates=[
                ("count", None, "n"),
                ("sum", "r.v", "total"),
                ("min", "r.v", "lo"),
                ("max", "r.v", "hi"),
            ],
        ),
        "global_agg": lambda: Aggregate(
            Scan("R", "r"),
            group_by=[],
            aggregates=[("count", None, "n"), ("sum", "r.v", "total")],
        ),
        "union_dup_heavy": lambda: UnionAll(
            [
                Project(Scan("R", "r"), [(col("r.k"), "k"), (col("r.v"), "v")]),
                Project(Scan("R", "r2"), [(col("r2.k"), "k"), (col("r2.v"), "v")]),
                Project(Scan("S", "s"), [(col("s.k"), "k"), (col("s.v"), "v")]),
            ]
        ),
        "sort_asc": lambda: Sort(Scan("R", "r"), [("r.k", False), ("r.v", False)]),
        "sort_desc": lambda: Sort(Scan("R", "r"), [("r.k", True), ("r.v", True)]),
        "sort_mixed": lambda: Sort(Scan("R", "r"), [("r.lab", False), ("r.k", True)]),
        "limit": lambda: Limit(
            Sort(Scan("R", "r"), [("r.k", False), ("r.lab", False), ("r.v", False)]), 7
        ),
        "stacked": lambda: Sort(
            Distinct(
                Project(
                    HashJoin(Scan("R", "r"), Scan("S", "s"), ["r.k"], ["s.k"]),
                    [(col("r.k"), "k"), (col("s.v"), "sv")],
                )
            ),
            [("k", True), ("sv", False)],
        ),
    }


#: plans to_sql can render for the sqlite conformance leg
SQL_SAFE = (
    "filter_const", "project", "join", "join_multi_key", "distinct",
    "aggregate", "global_agg", "union_dup_heavy", "sort_asc", "sort_desc",
    "sort_mixed", "limit", "stacked",
)


class TestEngineParity:
    @pytest.mark.parametrize("name", sorted(plan_catalog()))
    def test_columnar_matches_rows_bit_identical(self, name, no_numpy):
        rng = random.Random(SEED)
        rows_r = random_rows(rng, NROWS)
        rows_s = random_rows(rng, NROWS // 2)
        factory = plan_catalog()[name]

        rows_db = build_db("rows", rows_r, rows_s)
        col_db = build_db("columnar", rows_r, rows_s)
        assert rows_db._executor().engine_name == "rows"
        assert col_db._executor().engine_name == "columnar"

        expected = rows_db.query(factory())
        actual = col_db.query(factory())
        # exact rows in exact order: fact-id assignment depends on it
        assert actual.rows == expected.rows
        assert actual.columns == expected.columns
        # identical cost accounting, counter by counter
        assert col_db.clock.snapshot() == rows_db.clock.snapshot()

    @pytest.mark.parametrize("name", SQL_SAFE)
    def test_columnar_matches_sqlite(self, name, no_numpy):
        rng = random.Random(SEED + 1)
        rows_r = random_rows(rng, NROWS)
        rows_s = random_rows(rng, NROWS // 2)
        factory = plan_catalog()[name]
        db = build_db("columnar", rows_r, rows_s)
        ours = db.query(factory()).sorted_rows()
        with SqliteMirror(db) as mirror:
            theirs = mirror.run_sorted(to_sql(factory()))
        assert ours == theirs

    def test_empty_inputs(self, no_numpy):
        for name, factory in plan_catalog().items():
            rows_db = build_db("rows", [], [])
            col_db = build_db("columnar", [], [])
            expected = rows_db.query(factory())
            actual = col_db.query(factory())
            assert actual.rows == expected.rows, name
            assert col_db.clock.snapshot() == rows_db.clock.snapshot(), name

    def test_many_random_shapes(self, no_numpy):
        """Fuzz loop: random data, every operator, both engines."""
        rng = random.Random(SEED + 2)
        for trial in range(8):
            rows_r = random_rows(rng, rng.randint(0, 80))
            rows_s = random_rows(rng, rng.randint(0, 40))
            for name, factory in plan_catalog().items():
                rows_db = build_db("rows", rows_r, rows_s)
                col_db = build_db("columnar", rows_r, rows_s)
                expected = rows_db.query(factory())
                actual = col_db.query(factory())
                assert actual.rows == expected.rows, (trial, name)
                assert (
                    col_db.clock.snapshot() == rows_db.clock.snapshot()
                ), (trial, name)


class TestDmlParity:
    """INSERT ... SELECT row order feeds fact ids; both engines must
    store identical tables."""

    def test_insert_from_with_ids_order(self, no_numpy):
        rng = random.Random(SEED + 3)
        rows_r = random_rows(rng, 60)
        rows_s = random_rows(rng, 30)
        stored = {}
        for engine in ("rows", "columnar"):
            db = build_db(engine, rows_r, rows_s)
            db.create_table(
                schema("out", "id:int", "k:int", "v:int", unique_key=["id"])
            )
            plan = Project(
                HashJoin(Scan("R", "r"), Scan("S", "s"), ["r.k"], ["s.k"]),
                [(col("r.k"), "k"), (col("s.v"), "v")],
            )
            inserted, next_id = db.insert_from_with_ids("out", plan, 100)
            stored[engine] = (inserted, next_id, db.table("out").rows)
        assert stored["rows"] == stored["columnar"]
