"""SQL parser tests, including the round-trip property: for every plan
we can render, parse(to_sql(plan)) executes to the same result."""

import pytest

from repro.relational import Database, Scan, col, schema, to_sql
from repro.relational.sqlparse import SqlParseError, parse_sql


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table(schema("person", "id:int", "name:text", "city:int"))
    database.create_table(schema("city", "id:int", "name:text", "country:int"))
    database.create_table(schema("country", "id:int", "name:text"))
    database.bulkload(
        "person",
        [
            (1, "ann", 10),
            (2, "bob", 10),
            (3, "carol", 20),
            (4, "dave", None),
            (5, "o'hara", 30),
        ],
    )
    database.bulkload(
        "city", [(10, "gnv", 100), (20, "orl", 100), (30, "nyc", 200)]
    )
    database.bulkload("country", [(100, "usa"), (200, "atlantis")])
    return database


def run_sql(db, sql):
    return db.query(parse_sql(sql)).sorted_rows()


class TestBasics:
    def test_select_star(self, db):
        assert run_sql(db, "SELECT * FROM country") == [
            (100, "usa"),
            (200, "atlantis"),
        ]

    def test_projection_with_alias(self, db):
        rows = run_sql(db, "SELECT country.name AS n FROM country")
        assert rows == [("atlantis",), ("usa",)]

    def test_literal_filter(self, db):
        rows = run_sql(db, "SELECT person.name FROM person WHERE person.city = 10")
        assert rows == [("ann",), ("bob",)]

    def test_string_literal_with_quote(self, db):
        rows = run_sql(
            db, "SELECT person.id FROM person WHERE person.name = 'o''hara'"
        )
        assert rows == [(5,)]

    def test_is_null(self, db):
        rows = run_sql(db, "SELECT person.name FROM person WHERE person.city IS NULL")
        assert rows == [("dave",)]
        rows = run_sql(
            db,
            "SELECT person.id FROM person WHERE person.city IS NOT NULL "
            "AND person.id > 3",
        )
        assert rows == [(5,)]

    def test_or_group(self, db):
        rows = run_sql(
            db,
            "SELECT person.name FROM person "
            "WHERE (person.city = 20 OR person.city = 30)",
        )
        assert rows == [("carol",), ("o'hara",)]

    def test_distinct(self, db):
        rows = run_sql(db, "SELECT DISTINCT city.country AS c FROM city")
        assert rows == [(100,), (200,)]


class TestJoins:
    def test_two_way_join(self, db):
        rows = run_sql(
            db,
            "SELECT p.name AS person, c.name AS city "
            "FROM person p, city c WHERE p.city = c.id AND c.country = 100",
        )
        assert rows == [("ann", "gnv"), ("bob", "gnv"), ("carol", "orl")]

    def test_three_way_join(self, db):
        rows = run_sql(
            db,
            "SELECT p.name AS person, n.name AS nation FROM person p, city c, "
            "country n WHERE p.city = c.id AND c.country = n.id AND n.id = 200",
        )
        assert rows == [("o'hara", "atlantis")]

    def test_self_join(self, db):
        rows = run_sql(
            db,
            "SELECT p1.name AS a, p2.name AS b FROM person p1, person p2 "
            "WHERE p1.city = p2.city AND p1.id < p2.id",
        )
        assert rows == [("ann", "bob")]

    def test_cross_product_rejected(self, db):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM person, city")


class TestAggregates:
    def test_group_by_count(self, db):
        rows = run_sql(
            db,
            "SELECT person.city, COUNT(*) AS n FROM person "
            "GROUP BY person.city HAVING COUNT(*) > 1",
        )
        assert rows == [(10, 2)]

    def test_count_distinct(self, db):
        rows = run_sql(
            db,
            "SELECT c.country, COUNT(DISTINCT c.id) AS cities FROM city c "
            "GROUP BY c.country",
        )
        assert sorted(rows) == [(100, 2), (200, 1)]

    def test_having_between_aggregates(self, db):
        rows = run_sql(
            db,
            "SELECT c.country FROM city c GROUP BY c.country "
            "HAVING COUNT(*) > MIN(c.id)",
        )
        assert rows == []  # min id (10 or 30) always exceeds the count


class TestNotExists:
    def test_anti_join(self, db):
        rows = run_sql(
            db,
            "SELECT c.id FROM city c WHERE NOT EXISTS "
            "(SELECT 1 FROM person anti_p WHERE anti_p.city = c.id)",
        )
        assert rows == []  # every city is inhabited

    def test_anti_join_with_constant(self, db):
        rows = run_sql(
            db,
            "SELECT c.id FROM city c WHERE NOT EXISTS "
            "(SELECT 1 FROM person p WHERE p.city = c.id AND p.name = 'carol')",
        )
        assert rows == [(10,), (30,)]


class TestUnionAll:
    def test_union(self, db):
        rows = run_sql(
            db,
            "SELECT person.name FROM person WHERE person.id = 1 "
            "UNION ALL SELECT city.name FROM city WHERE city.id = 30",
        )
        assert sorted(rows) == [("ann",), ("nyc",)]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "DELETE FROM person",
            "SELECT FROM person",
            "SELECT person.name FROM person WHERE",
            "SELECT name FROM person WHERE name LIKE 'a%'",
        ],
    )
    def test_rejects_unsupported(self, bad, db):
        with pytest.raises(SqlParseError):
            parse_sql(bad)


class TestRoundTrip:
    """parse(to_sql(plan)) must execute identically to plan."""

    def plans(self, db):
        from repro.relational import (
            Aggregate,
            Distinct,
            Filter,
            HashJoin,
            Project,
            eq_const,
        )
        from repro.relational.expr import Compare, const

        join = HashJoin(Scan("person", "p"), Scan("city", "c"), ["p.city"], ["c.id"])
        yield Filter(Scan("person"), eq_const("person.city", 10))
        yield Project(join, [(col("p.name"), "person_name")])
        yield Distinct(Project(Scan("city"), [(col("city.country"), "k")]))
        yield Aggregate(
            Scan("person", "p"),
            group_by=["p.city"],
            aggregates=[("count", None, "n"), ("min", "p.id", "m")],
            having=Compare(">", col("n"), const(0)),
        )

    def test_round_trip(self, db):
        for plan in self.plans(db):
            sql = to_sql(plan)
            original = db.query(plan).sorted_rows()
            reparsed = db.query(parse_sql(sql)).sorted_rows()
            assert reparsed == original, sql


class TestPaperQueriesRoundTrip:
    """The actual grounding SQL parses and executes identically."""

    def test_grounding_queries(self):
        from repro.datasets import paper_kb

        from repro import ProbKB
        from repro.core import ground_atoms_plan, ground_factors_plan

        system = ProbKB(paper_kb(), backend="single")
        for partition in system.rkb.nonempty_partitions:
            for builder in (ground_atoms_plan, ground_factors_plan):
                plan = builder(partition, system.backend, mln_alias=f"M{partition}")
                sql = to_sql(plan)
                original = system.backend.query(plan).sorted_rows()
                reparsed = system.backend.query(parse_sql(sql)).sorted_rows()
                assert reparsed == original

    def test_constraint_query_round_trip(self):
        from repro.datasets import paper_kb

        from repro import ProbKB
        from repro.core import apply_constraints_key_plan

        system = ProbKB(paper_kb(with_constraints=True), backend="single")
        for ftype in (1, 2):
            plan = apply_constraints_key_plan(ftype)
            sql = to_sql(plan)
            original = system.backend.query(plan).sorted_rows()
            reparsed = system.backend.query(parse_sql(sql)).sorted_rows()
            assert reparsed == original


class TestOrderByAndLimit:
    def test_order_by_desc(self, db):
        rows = db.execute_sql(
            "SELECT person.id FROM person ORDER BY person.id DESC"
        ).rows
        assert rows == [(5,), (4,), (3,), (2,), (1,)]

    def test_order_by_multiple_keys(self, db):
        rows = db.execute_sql(
            "SELECT person.city, person.id FROM person "
            "WHERE person.city IS NOT NULL "
            "ORDER BY person.city ASC, person.id DESC"
        ).rows
        assert rows == [(10, 2), (10, 1), (20, 3), (30, 5)]

    def test_limit(self, db):
        rows = db.execute_sql(
            "SELECT person.id FROM person ORDER BY person.id LIMIT 2"
        ).rows
        assert rows == [(1,), (2,)]

    def test_sort_round_trip(self, db):
        from repro.relational.plan import Sort

        plan = Sort(Scan("person"), [("person.id", True)])
        sql = to_sql(plan)
        assert "ORDER BY person.id DESC" in sql
        assert db.query(parse_sql(sql)).rows == db.query(plan).rows
