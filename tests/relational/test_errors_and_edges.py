"""Error paths and edge cases across the relational engine."""

import pytest

from repro.relational import (
    Aggregate,
    Database,
    ExecutionError,
    HashJoin,
    Limit,
    PlanError,
    Project,
    Scan,
    SchemaError,
    UnionAll,
    Values,
    schema,
)
from repro.relational.plan import Sort
from repro.relational.schema import Column, TableSchema


class TestSchemaErrors:
    def test_unknown_column_type(self):
        with pytest.raises(SchemaError):
            Column("a", "varchar")

    def test_duplicate_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "int"), Column("a", "int")])

    def test_unique_key_must_exist(self):
        with pytest.raises(SchemaError):
            schema("t", "a:int", unique_key=["zz"])

    def test_empty_table(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_spec(self):
        with pytest.raises(SchemaError):
            schema("t", "a")  # missing type

    def test_position_lookup_error(self):
        s = schema("t", "a:int")
        with pytest.raises(SchemaError):
            s.position("b")


class TestDatabaseErrors:
    def test_unknown_table(self):
        db = Database()
        with pytest.raises(ExecutionError):
            db.query(Scan("ghost"))
        with pytest.raises(ExecutionError):
            db.table("ghost")

    def test_duplicate_table(self):
        db = Database()
        db.create_table(schema("t", "a:int"))
        with pytest.raises(ExecutionError):
            db.create_table(schema("t", "a:int"))
        db.create_table(schema("t", "a:int", "b:int"), replace=True)
        assert len(db.table("t").schema) == 2

    def test_insert_arity_mismatch(self):
        db = Database()
        db.create_table(schema("t", "a:int"))
        db.create_table(schema("u", "a:int", "b:int"))
        db.bulkload("u", [(1, 2)])
        with pytest.raises(ExecutionError):
            db.insert_from("t", Scan("u"))

    def test_refresh_non_matview(self):
        db = Database()
        db.create_table(schema("t", "a:int"))
        with pytest.raises(ExecutionError):
            db.refresh_matview("t")

    def test_drop_table(self):
        db = Database()
        db.create_table(schema("t", "a:int"))
        db.drop_table("t")
        assert not db.has_table("t")


class TestPlanErrors:
    def test_join_key_arity(self):
        with pytest.raises(PlanError):
            HashJoin(Scan("a"), Scan("b"), ["a.x"], ["b.x", "b.y"])
        with pytest.raises(PlanError):
            HashJoin(Scan("a"), Scan("b"), [], [])

    def test_empty_projection(self):
        with pytest.raises(PlanError):
            Project(Scan("a"), [])

    def test_union_arity_mismatch(self):
        first = Values(["a"], [(1,)])
        second = Values(["a", "b"], [(1, 2)])
        with pytest.raises(PlanError):
            UnionAll([first, second])

    def test_negative_limit(self):
        with pytest.raises(PlanError):
            Limit(Scan("a"), -1)

    def test_empty_sort(self):
        with pytest.raises(PlanError):
            Sort(Scan("a"), [])

    def test_unknown_aggregate(self):
        with pytest.raises(PlanError):
            Aggregate(Scan("a"), group_by=[], aggregates=[("avg", "a.x", "m")])

    def test_values_arity(self):
        with pytest.raises(PlanError):
            Values(["a", "b"], [(1,)])


class TestEdgeSemantics:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table(schema("t", "a:int", "b:float"))
        return database

    def test_empty_table_aggregate(self, db):
        plan = Aggregate(
            Scan("t"), group_by=[], aggregates=[("count", None, "n"), ("min", "t.a", "m")]
        )
        assert db.query(plan).rows == [(0, None)]

    def test_empty_group_by_yields_no_groups(self, db):
        plan = Aggregate(Scan("t"), group_by=["t.a"], aggregates=[("count", None, "n")])
        assert db.query(plan).rows == []

    def test_count_skips_nulls(self, db):
        db.bulkload("t", [(1, 1.0), (2, None), (None, 3.0)])
        plan = Aggregate(
            Scan("t"),
            group_by=[],
            aggregates=[("count", "t.b", "nb"), ("count", None, "n")],
        )
        assert db.query(plan).rows == [(2, 3)]

    def test_join_with_empty_side(self, db):
        db.create_table(schema("u", "c:int"))
        db.bulkload("t", [(1, 1.0)])
        plan = HashJoin(Scan("t"), Scan("u"), ["t.a"], ["u.c"])
        assert db.query(plan).rows == []

    def test_float_column_accepts_int(self, db):
        db.bulkload("t", [(1, 2)])  # int into float column is fine
        assert len(db.table("t")) == 1

    def test_bool_rejected_as_int(self, db):
        with pytest.raises(SchemaError):
            db.table("t").insert([(True, 1.0)])

    def test_limit_zero(self, db):
        db.bulkload("t", [(1, 1.0)])
        assert db.query(Limit(Scan("t"), 0)).rows == []
