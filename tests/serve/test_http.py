"""The HTTP JSON API, in-process and through the `repro serve` CLI."""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro import InferenceConfig, ProbKB
from repro.datasets import paper_kb, save_kb
from repro.serve import IngestConfig, KBService, ServiceConfig, make_server

EVIDENCE = {
    "facts": [
        {
            "relation": "born_in",
            "subject": "Saul Bellow",
            "subject_class": "Writer",
            "object": "Brooklyn",
            "object_class": "Place",
            "weight": 0.88,
        }
    ],
    "flush": True,
}


def get_json(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def post_json(url, payload, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


@pytest.fixture
def base_url(tmp_path):
    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    system = ProbKB(kb, backend="single")
    system.ground()
    system.materialize_marginals(config=InferenceConfig(num_sweeps=150, seed=1))
    service = KBService(
        system,
        ServiceConfig(ingest=IngestConfig(flush_size=4, flush_interval=0.05)),
    ).start()
    server = make_server(
        service, port=0, snapshot_path=str(tmp_path / "snap.json")
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.stop()


def test_healthz(base_url):
    status, payload = get_json(base_url + "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert isinstance(payload["generation"], int)


def test_facts_filtered_query(base_url):
    status, payload = get_json(base_url + "/facts?relation=born_in")
    assert status == 200
    assert payload["count"] == 2
    for fact in payload["facts"]:
        assert fact["relation"] == "born_in"
        assert fact["probability"] is not None


def test_facts_min_probability(base_url):
    _, everything = get_json(base_url + "/facts")
    _, confident = get_json(base_url + "/facts?min_probability=0.55")
    assert confident["count"] < everything["count"]


def test_facts_repeat_is_cache_hit(base_url):
    _, first = get_json(base_url + "/facts?relation=live_in")
    _, second = get_json(base_url + "/facts?relation=live_in")
    assert not first["cache_hit"]
    assert second["cache_hit"]
    assert second["facts"] == first["facts"]


def test_evidence_then_facts_reflects_inference(base_url):
    status, accepted = post_json(base_url + "/evidence", EVIDENCE)
    assert status == 202
    assert accepted["accepted"] == 1 and accepted["flushed"]
    _, payload = get_json(base_url + "/facts?subject=Saul+Bellow")
    relations = {fact["relation"] for fact in payload["facts"]}
    # the evidence fact plus its rule-derived consequences
    assert "born_in" in relations
    assert {"live_in", "grow_up_in"} <= relations


def test_stats_endpoint(base_url):
    get_json(base_url + "/facts?relation=born_in")
    get_json(base_url + "/facts?relation=born_in")
    status, stats = get_json(base_url + "/stats")
    assert status == 200
    assert stats["queries"] >= 2
    assert stats["cache_hit_rate"] > 0
    assert "query_latency" in stats and "p99_seconds" in stats["query_latency"]


def test_explain_endpoint(base_url):
    from repro.analyze import StaticPlanReport

    status, payload = get_json(base_url + "/explain")
    assert status == 200
    # pinned to a generation like every other read
    generation = payload.pop("generation")
    _, health = get_json(base_url + "/healthz")
    assert generation <= health["generation"]
    report = StaticPlanReport.from_dict(payload)
    assert report.environment.kind == "single"
    assert {q.name for q in report.queries} >= {"Query 1-1", "Query 2-1"}
    assert report.total_estimated_seconds > 0


def test_explain_tracks_rule_ingest(base_url):
    """New rules change the plan report the endpoint serves."""
    _, before = get_json(base_url + "/explain")
    rule = {
        "weight": 2.0,
        "head": {"relation": "born_in", "args": ["x", "y"]},
        "body": [{"relation": "live_in", "args": ["x", "y"]}],
        "classes": {"x": "Writer", "y": "Place"},
    }
    status, _ = post_json(base_url + "/rules", {"rules": [rule]})
    assert status == 200
    _, after = get_json(base_url + "/explain")
    assert after["generation"] > before["generation"]
    assert len(after["queries"]) >= len(before["queries"])


def test_snapshot_endpoint_writes_configured_path(base_url, tmp_path):
    status, payload = post_json(base_url + "/snapshot", {})
    assert status == 200
    assert os.path.exists(payload["path"])


def test_dead_letter_retry_on_healthy_service(base_url):
    status, payload = post_json(base_url + "/dead-letter/retry", {})
    assert status == 200
    assert payload["requeued"] == 0
    assert payload["dead_letter"] == {"batches": 0, "facts": 0, "evicted": 0}
    assert isinstance(payload["generation"], int)


def test_dead_letter_retry_replays_failed_evidence():
    """End to end: a failing flush dead-letters, the endpoint requeues,
    and the next flush applies the facts for real."""
    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    system = ProbKB(kb, backend="single")
    system.ground()
    service = KBService(
        system,
        ServiceConfig(ingest=IngestConfig(flush_size=4, flush_interval=0.05)),
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        real_apply = service.worker.apply
        service.worker.apply = lambda batch: (_ for _ in ()).throw(
            RuntimeError("backend offline")
        )
        status, accepted = post_json(base + "/evidence", EVIDENCE)
        assert status == 202
        _, stats = get_json(base + "/stats")
        assert stats["dead_letter"] == {"batches": 1, "facts": 1, "evicted": 0}

        service.worker.apply = real_apply
        status, payload = post_json(base + "/dead-letter/retry", {})
        assert status == 200
        assert payload["requeued"] == 1
        assert payload["dead_letter"]["facts"] == 0
        service.flush()
        _, facts = get_json(base + "/facts?subject=Saul+Bellow")
        assert {fact["relation"] for fact in facts["facts"]} >= {
            "born_in",
            "live_in",
            "grow_up_in",
        }
        _, stats = get_json(base + "/stats")
        assert stats["dead_letter_retries"] == 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.stop()


def http_error(url, payload=None, method=None):
    try:
        if payload is None:
            urllib.request.urlopen(url, timeout=10)
        else:
            request = urllib.request.Request(
                url, data=json.dumps(payload).encode(), method=method
            )
            urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


class TestErrors:
    def test_unknown_path_404(self, base_url):
        code, payload = http_error(base_url + "/nope")
        assert code == 404 and "unknown path" in payload["error"]

    def test_unknown_parameter_400(self, base_url):
        code, payload = http_error(base_url + "/facts?color=red")
        assert code == 400 and "unknown parameters" in payload["error"]

    def test_bad_min_probability_400(self, base_url):
        code, _ = http_error(base_url + "/facts?min_probability=often")
        assert code == 400

    def test_evidence_missing_fields_400(self, base_url):
        code, payload = http_error(
            base_url + "/evidence", {"facts": [{"relation": "born_in"}]}
        )
        assert code == 400 and "missing fields" in payload["error"]

    def test_evidence_empty_list_400(self, base_url):
        code, _ = http_error(base_url + "/evidence", {"facts": []})
        assert code == 400

    def test_evidence_empty_field_values_400(self, base_url):
        fact = dict(EVIDENCE["facts"][0], subject="")
        code, payload = http_error(base_url + "/evidence", {"facts": [fact]})
        assert code == 400 and "non-empty" in payload["error"]

    def test_evidence_non_numeric_weight_400(self, base_url):
        fact = dict(EVIDENCE["facts"][0], weight="heavy")
        code, payload = http_error(base_url + "/evidence", {"facts": [fact]})
        assert code == 400 and "weight" in payload["error"]

    def test_evidence_invalid_json_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/evidence", data=b"not json{"
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as error:
            assert error.code == 400
        else:
            raise AssertionError("expected 400")


def test_cli_serve_end_to_end(tmp_path):
    """`repro serve` boots, answers, ingests, and snapshots on SIGINT."""
    kb_dir = str(tmp_path / "kb")
    save_kb(paper_kb(), kb_dir)
    # the CLI example adds evidence about a writer the KB must know
    snapshot = str(tmp_path / "snap.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--kb",
            kb_dir,
            "--port",
            "0",
            "--materialize",
            "--sweeps",
            "100",
            "--snapshot",
            snapshot,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        base = None
        for line in process.stdout:
            if line.startswith("serving on "):
                base = line.split()[2]
                break
        assert base, "server never reported its address"
        status, health = get_json(base + "/healthz")
        assert status == 200 and health["status"] == "ok"
        _, facts = get_json(base + "/facts?relation=located_in")
        assert facts["count"] == 1
        assert os.path.exists(snapshot)  # written right after grounding
    finally:
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
