"""KBService: locking, cached queries, ingest flushes, generations."""

import threading

import pytest

from repro import Fact, InferenceConfig, ProbKB
from repro.datasets import paper_kb
from repro.serve import IngestConfig, KBService, RWLock, ServiceConfig


def expandable_kb():
    kb = paper_kb()
    kb.classes["Writer"].update({"Saul Bellow", "Grace Paley"})
    return kb


@pytest.fixture
def service():
    system = ProbKB(expandable_kb(), backend="single")
    system.ground()
    system.materialize_marginals(config=InferenceConfig(num_sweeps=150, seed=1))
    svc = KBService(
        system,
        ServiceConfig(ingest=IngestConfig(flush_size=4, flush_interval=0.05)),
    )
    with svc:
        yield svc


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        acquired = []

        def reader():
            with lock.read_locked():
                acquired.append(1)
                barrier.wait(timeout=5)

        barrier = threading.Barrier(3)
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert len(acquired) == 3  # all three held the read side at once

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        order.append("write")
        lock.release_write()
        thread.join(timeout=5)
        assert order == ["write", "read"]


class TestQueries:
    def test_query_matches_probkb(self, service):
        direct = service.probkb.query_facts(relation="born_in")
        result = service.query(relation="born_in")
        assert result.facts == direct
        assert result.generation == service.probkb.generation
        assert not result.cache_hit

    def test_repeat_query_hits_cache(self, service):
        first = service.query(relation="live_in")
        second = service.query(relation="live_in")
        assert not first.cache_hit and second.cache_hit
        assert second.facts == first.facts
        assert service.metrics.cache_hits == 1

    def test_min_probability_is_part_of_cache_key(self, service):
        loose = service.query(relation="born_in", min_probability=0.0)
        tight = service.query(relation="born_in", min_probability=0.99)
        assert not tight.cache_hit
        assert len(tight.facts) <= len(loose.facts)


class TestIngest:
    BATCH = [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)]

    def test_flush_applies_evidence_and_bumps_generation(self, service):
        before_generation = service.generation
        before_count = service.fact_count()
        service.ingest(self.BATCH, flush=True)
        assert service.generation > before_generation
        # evidence plus its inferred consequences (live_in, grow_up_in, ...)
        assert service.fact_count() > before_count + 1

    def test_flush_invalidates_cache(self, service):
        service.query(relation="born_in")
        service.ingest(self.BATCH, flush=True)
        after = service.query(relation="born_in")
        assert not after.cache_hit
        assert any(fact.subject == "Saul Bellow" for fact, _ in after.facts)

    def test_worker_flushes_on_size_trigger(self, service):
        import time

        facts = [
            Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93),
            Fact("live_in", "Grace Paley", "Writer", "Brooklyn", "Place", 0.81),
            Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88),
            Fact("live_in", "Saul Bellow", "Writer", "New York City", "City", 0.7),
        ]
        service.ingest(facts)  # == flush_size, so the worker fires
        deadline = time.monotonic() + 5
        while service.worker.flushes == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.worker.flushes >= 1
        assert service.queue.depth == 0
        result = service.query(subject="Grace Paley")
        assert len(result.facts) >= 2

    def test_duplicate_evidence_is_idempotent(self, service):
        service.ingest(self.BATCH, flush=True)
        count = service.fact_count()
        generation = service.generation
        service.ingest(self.BATCH, flush=True)
        assert service.fact_count() == count
        assert service.generation > generation  # flush still versioned


class TestMaterializeAndStats:
    def test_materialize_scores_fresh_facts(self, service):
        service.ingest(TestIngest.BATCH, flush=True)
        unscored = service.query(subject="Saul Bellow")
        assert any(probability is None for _, probability in unscored.facts)
        service.materialize(num_sweeps=150)
        scored = service.query(subject="Saul Bellow")
        assert not scored.cache_hit  # materialize invalidated the cache
        assert all(probability is not None for _, probability in scored.facts)

    def test_stats_shape(self, service):
        service.query(relation="born_in")
        service.query(relation="born_in")
        stats = service.stats()
        assert stats["facts"] == service.fact_count()
        assert stats["queries"] == 2
        assert stats["cache_hit_rate"] > 0
        assert stats["queue_depth"] == 0
        assert stats["backend"] == "probkb"
        assert stats["cache"]["generation"] == service.generation
        assert stats["executor"]["mode"] == "single-node"
        assert stats["inference"]["engine"] == "gibbs"
        assert stats["inference"]["num_workers"] == 0

    def test_infer_on_flush_scores_immediately(self):
        system = ProbKB(expandable_kb(), backend="single")
        system.ground()
        config = ServiceConfig(
            infer_on_flush=True, inference=InferenceConfig(num_sweeps=100)
        )
        with KBService(system, config) as service:
            service.ingest(TestIngest.BATCH, flush=True)
            result = service.query(subject="Saul Bellow", min_probability=0.01)
            assert result.facts
            assert all(
                probability is not None for _, probability in result.facts
            )
