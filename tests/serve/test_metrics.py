"""LatencyRing percentiles and ServiceMetrics counters."""

import pytest

from repro.serve import LatencyRing, ServiceMetrics


class TestLatencyRing:
    def test_empty_ring_has_no_percentiles(self):
        ring = LatencyRing(capacity=8)
        assert ring.percentile(50) is None
        assert ring.count == 0

    def test_percentiles(self):
        ring = LatencyRing(capacity=100)
        for ms in range(1, 101):
            ring.observe(ms / 1000.0)
        assert ring.percentile(50) == pytest.approx(0.050, abs=0.002)
        assert ring.percentile(99) == pytest.approx(0.099, abs=0.002)
        assert ring.percentile(0) == pytest.approx(0.001)
        assert ring.percentile(100) == pytest.approx(0.100)

    def test_window_wraps_but_count_does_not(self):
        ring = LatencyRing(capacity=4)
        for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            ring.observe(value)
        assert ring.count == 8
        # the window only retains the last 4 observations
        assert ring.percentile(50) == pytest.approx(9.0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyRing(capacity=0)


class TestServiceMetrics:
    def test_query_counters_and_hit_rate(self):
        metrics = ServiceMetrics()
        metrics.record_query(0.001, cache_hit=False)
        metrics.record_query(0.002, cache_hit=True)
        metrics.record_query(0.003, cache_hit=True)
        assert metrics.queries == 3
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)
        report = metrics.snapshot()
        assert report["queries"] == 3
        assert report["cache_hit_rate"] == pytest.approx(2 / 3)
        assert report["query_latency"]["count"] == 3
        assert report["query_latency"]["p50_seconds"] is not None

    def test_ingest_counters(self):
        metrics = ServiceMetrics()
        metrics.record_ingest(5)
        metrics.record_ingest(3)
        metrics.record_snapshot()
        report = metrics.snapshot()
        assert report["ingest_batches"] == 2
        assert report["ingested_facts"] == 8
        assert report["snapshots_saved"] == 1

    def test_zero_division_guard(self):
        assert ServiceMetrics().cache_hit_rate == 0.0
        assert ServiceMetrics().snapshot()["cache_hit_rate"] == 0.0
