"""QueryCache: LRU behavior and generation-based invalidation."""

import pytest

from repro.serve import QueryCache


def test_miss_then_hit():
    cache = QueryCache(capacity=4)
    hit, value = cache.get(("born_in", None, None, 0.0))
    assert not hit and value is None
    cache.put(("born_in", None, None, 0.0), [1, 2, 3])
    hit, value = cache.get(("born_in", None, None, 0.0))
    assert hit and value == [1, 2, 3]
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction_order():
    cache = QueryCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == (True, 1)  # refresh a; b is now LRU
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("b") == (False, None)
    assert cache.get("a") == (True, 1)
    assert cache.get("c") == (True, 3)
    assert cache.evictions == 1


def test_bump_invalidates_everything():
    cache = QueryCache(capacity=8)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.bump()
    assert cache.get("a") == (False, None)
    assert cache.get("b") == (False, None)
    assert len(cache) == 0


def test_stale_put_is_dropped():
    """A result computed under an old generation must not be cached."""
    cache = QueryCache(capacity=8)
    observed = cache.generation
    cache.bump()  # a flush lands between compute and put
    cache.put("a", 1, generation=observed)
    assert cache.get("a") == (False, None)


def test_bump_tracks_external_generation():
    cache = QueryCache(capacity=8)
    cache.bump(7)
    assert cache.generation == 7
    cache.put("a", 1)
    assert cache.get("a") == (True, 1)
    with pytest.raises(ValueError):
        cache.bump(3)


def test_stats_and_hit_rate():
    cache = QueryCache(capacity=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    stats = cache.stats()
    assert stats["size"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)
    assert cache.hit_rate == pytest.approx(0.5)


def test_capacity_validated():
    with pytest.raises(ValueError):
        QueryCache(capacity=0)
