"""QueryCache: LRU behavior and generation-based invalidation."""

import pytest

from repro.serve import QueryCache


def test_miss_then_hit():
    cache = QueryCache(capacity=4)
    hit, value = cache.get(("born_in", None, None, 0.0))
    assert not hit and value is None
    cache.put(("born_in", None, None, 0.0), [1, 2, 3])
    hit, value = cache.get(("born_in", None, None, 0.0))
    assert hit and value == [1, 2, 3]
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction_order():
    cache = QueryCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == (True, 1)  # refresh a; b is now LRU
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("b") == (False, None)
    assert cache.get("a") == (True, 1)
    assert cache.get("c") == (True, 3)
    assert cache.evictions == 1


def test_bump_invalidates_everything():
    cache = QueryCache(capacity=8)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.bump()
    assert cache.get("a") == (False, None)
    assert cache.get("b") == (False, None)
    assert len(cache) == 0


def test_stale_put_is_dropped():
    """A result computed under an old generation must not be cached."""
    cache = QueryCache(capacity=8)
    observed = cache.generation
    cache.bump()  # a flush lands between compute and put
    cache.put("a", 1, generation=observed)
    assert cache.get("a") == (False, None)


def test_bump_tracks_external_generation():
    cache = QueryCache(capacity=8)
    cache.bump(7)
    assert cache.generation == 7
    cache.put("a", 1)
    assert cache.get("a") == (True, 1)
    with pytest.raises(ValueError):
        cache.bump(3)


def test_stats_and_hit_rate():
    cache = QueryCache(capacity=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    stats = cache.stats()
    assert stats["size"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)
    assert cache.hit_rate == pytest.approx(0.5)


def test_capacity_validated():
    with pytest.raises(ValueError):
        QueryCache(capacity=0)


class TestPredicateScopedInvalidation:
    def test_only_intersecting_entries_are_evicted(self):
        cache = QueryCache(capacity=8)
        cache.put("q1", 1, predicates=frozenset({"born_in"}))
        cache.put("q2", 2, predicates=frozenset({"works_at"}))
        evicted = cache.invalidate_predicates({"born_in", "live_in"})
        assert evicted == 1
        assert cache.get("q1") == (False, None)
        assert cache.get("q2") == (True, 2)  # disjoint: survived warm
        assert cache.invalidations == 1
        assert cache.stats()["invalidations"] == 1

    def test_untagged_entries_are_conservatively_evicted(self):
        cache = QueryCache(capacity=8)
        cache.put("pattern_free", 1)  # predicates=None: depends on all
        assert cache.invalidate_predicates({"born_in"}) == 1
        assert cache.get("pattern_free") == (False, None)

    def test_survivors_are_restamped_to_the_new_generation(self):
        """A surviving entry must keep hitting after the generation
        advance — the whole point of scoped invalidation."""
        cache = QueryCache(capacity=8)
        cache.put("warm", 7, predicates=frozenset({"works_at"}))
        cache.invalidate_predicates({"born_in"}, generation=5)
        assert cache.generation == 5
        assert cache.get("warm") == (True, 7)

    def test_generation_cannot_move_backwards(self):
        cache = QueryCache(capacity=8)
        cache.bump(9)
        with pytest.raises(ValueError):
            cache.invalidate_predicates({"born_in"}, generation=3)

    def test_self_incrementing_generation(self):
        cache = QueryCache(capacity=8)
        before = cache.generation
        cache.invalidate_predicates({"born_in"})
        assert cache.generation == before + 1

    def test_put_without_predicates_stays_backward_compatible(self):
        cache = QueryCache(capacity=8)
        cache.put("a", 1, generation=cache.generation)  # legacy call shape
        assert cache.get("a") == (True, 1)


class TestEvictionPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=4, policy="random")

    def test_ttl_policy_requires_positive_ttl(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=4, policy="ttl")
        with pytest.raises(ValueError):
            QueryCache(capacity=4, policy="ttl", ttl=0)

    def test_lfu_evicts_least_used(self):
        cache = QueryCache(capacity=2, policy="lfu")
        cache.put("hot", 1)
        cache.put("cold", 2)
        cache.get("hot")
        cache.get("hot")
        cache.get("cold")
        cache.put("new", 3)  # overflow: "cold" (1 use) goes, "hot" (2) stays
        assert cache.get("hot") == (True, 1)
        assert cache.get("cold") == (False, None)
        assert cache.get("new") == (True, 3)
        assert cache.evictions == 1

    def test_lfu_tie_breaks_by_recency(self):
        cache = QueryCache(capacity=2, policy="lfu")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("b")  # both used; a is 0 uses, b is 1
        cache.get("a")
        cache.get("b")  # a:1 use, b:2 uses
        cache.put("c", 3)
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (True, 2)

    def test_ttl_expires_entries_on_access(self):
        clock = [100.0]
        cache = QueryCache(capacity=8, policy="ttl", ttl=5.0, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] += 4.0
        assert cache.get("a") == (True, 1)  # still fresh
        clock[0] += 2.0  # now 6s old: past the 5s ttl
        assert cache.get("a") == (False, None)
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_ttl_sweeps_expired_on_put(self):
        clock = [0.0]
        cache = QueryCache(capacity=8, policy="ttl", ttl=1.0, clock=lambda: clock[0])
        cache.put("a", 1)
        cache.put("b", 2)
        clock[0] += 2.0
        cache.put("c", 3)  # insert sweeps the expired a and b
        assert len(cache) == 1
        assert cache.expirations == 2

    def test_ttl_capacity_overflow_evicts_oldest(self):
        clock = [0.0]
        cache = QueryCache(capacity=2, policy="ttl", ttl=100.0, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] += 1.0
        cache.put("b", 2)
        clock[0] += 1.0
        cache.put("c", 3)
        assert cache.get("a") == (False, None)  # oldest insertion evicted
        assert cache.get("b") == (True, 2)
        assert cache.get("c") == (True, 3)

    def test_policy_reported_in_stats(self):
        cache = QueryCache(capacity=4, policy="lfu")
        stats = cache.stats()
        assert stats["policy"] == "lfu"
        assert stats["expirations"] == 0
