"""DeltaPipeline lifecycle: the RC005 motivating regressions.

Two historical bugs, kept as permanent tests:

* an exception escaping ``_finish`` killed the ``probkb-delta-infer``
  thread silently, after which every submit enqueued forever;
* ``stop()`` reset the started flag, so the next submit called
  ``start()`` on a finished thread and raised an opaque RuntimeError.
"""

import threading

import pytest

from repro.serve.engine import DeltaPipeline


class RecordingLogger:
    def __init__(self):
        self.events = []

    def log(self, event, **fields):
        self.events.append((event, fields))


def test_finish_exception_does_not_kill_the_consumer():
    processed = []
    hook_errors = []
    logger = RecordingLogger()

    def finish(item):
        if item == "bad":
            raise RuntimeError("splice failed")
        processed.append(item)

    pipeline = DeltaPipeline(finish, logger=logger, on_error=hook_errors.append)
    pipeline.submit("bad")
    pipeline.submit("good")
    pipeline.drain()  # would hang forever if the thread died on "bad"
    try:
        assert processed == ["good"]
        assert pipeline.errors == 1
        events = [name for name, _ in logger.events]
        assert events == ["delta_error"]
        assert "splice failed" in logger.events[0][1]["error"]
        assert len(hook_errors) == 1
        assert isinstance(hook_errors[0], RuntimeError)
    finally:
        pipeline.stop()


def test_error_hook_failure_is_contained():
    def finish(item):
        raise RuntimeError("boom")

    def bad_hook(error):
        raise ValueError("hook is broken too")

    pipeline = DeltaPipeline(finish, on_error=bad_hook)
    pipeline.submit("x")
    pipeline.submit("y")
    pipeline.drain()
    try:
        assert pipeline.errors == 2  # still consuming after the hook blew up
    finally:
        pipeline.stop()


def test_submit_after_stop_restarts_the_consumer():
    processed = []
    pipeline = DeltaPipeline(processed.append)
    pipeline.submit("first")
    pipeline.drain()
    pipeline.stop()
    # the old bug: this raised "threads can only be started once"
    pipeline.submit("second")
    pipeline.drain()
    try:
        assert processed == ["first", "second"]
    finally:
        pipeline.stop()


def test_stop_is_idempotent_and_safe_before_any_submit():
    pipeline = DeltaPipeline(lambda item: None)
    pipeline.stop()
    pipeline.stop()
    pipeline.submit("x")
    pipeline.drain()
    pipeline.stop()
    pipeline.stop()
    assert pipeline.depth == 0


def test_depth_counts_unfinished_work():
    gate = threading.Event()
    entered = threading.Event()

    def finish(item):
        entered.set()
        assert gate.wait(5.0)

    pipeline = DeltaPipeline(finish)
    pipeline.submit("a")
    assert entered.wait(5.0)
    pipeline.submit("b")
    assert pipeline.depth >= 1  # "b" still queued behind the blocked "a"
    gate.set()
    pipeline.drain()
    pipeline.stop()
    assert pipeline.depth == 0


@pytest.mark.parametrize("cycles", [1, 3])
def test_restart_cycles_never_leak_items(cycles):
    processed = []
    pipeline = DeltaPipeline(processed.append)
    for cycle in range(cycles):
        pipeline.submit(cycle)
        pipeline.drain()
        pipeline.stop()
    assert processed == list(range(cycles))
