"""The concurrent smoke test: N readers query while a writer ingests.

Correctness bar (mirrors the serving layer's consistency model):

* no torn reads — two observations of the same pattern under the same
  generation are identical, across all threads;
* generations and fact counts are monotone within each reader thread;
* the final KB equals a sequential run of the same evidence stream
  (micro-batching must not change the fixpoint);
* repeat queries hit the cache (hit rate > 0).

Runs in tier-1 with 4 readers x 200 queries and 3 evidence batches;
export REPRO_STRESS=1 to scale up.
"""

import os
import threading
import time
from collections import defaultdict

from repro import Fact, ProbKB
from repro.datasets import paper_kb
from repro.serve import IngestConfig, KBService, ServiceConfig

STRESS = os.environ.get("REPRO_STRESS") == "1"
READERS = 8 if STRESS else 4
QUERIES_PER_READER = 1000 if STRESS else 200

WRITERS = ["Saul Bellow", "Grace Paley", "Bernard Malamud"]
BATCHES = [
    [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)],
    [
        Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93),
        Fact("live_in", "Grace Paley", "Writer", "Brooklyn", "Place", 0.81),
    ],
    [Fact("born_in", "Bernard Malamud", "Writer", "Brooklyn", "Place", 0.9)],
]
if STRESS:
    BATCHES = BATCHES * 2  # six batches; set semantics keep the fixpoint

PATTERNS = [
    {"relation": "born_in"},
    {"relation": "live_in"},
    {"subject": "Ruth Gruber"},
    {"subject": "Grace Paley"},
    {},  # all facts: used for the monotone fact-count assertion
]


def expandable_kb():
    kb = paper_kb()
    kb.classes["Writer"].update(WRITERS)
    return kb


def sequential_fixpoint():
    """The same workload with no service, no threads, no batching."""
    system = ProbKB(expandable_kb(), backend="single")
    system.ground()
    for batch in BATCHES:
        system.add_evidence(batch)
    return system


def test_concurrent_readers_and_ingest():
    system = ProbKB(expandable_kb(), backend="single")
    system.ground()
    service = KBService(
        system,
        ServiceConfig(
            cache_size=64,
            ingest=IngestConfig(flush_size=2, flush_interval=0.005),
        ),
    )

    observations = [[] for _ in range(READERS)]
    errors = []
    writer_done = threading.Event()

    def reader(slot):
        try:
            for i in range(QUERIES_PER_READER):
                pattern = PATTERNS[i % len(PATTERNS)]
                result = service.query(**pattern)
                keys = tuple(sorted(fact.key for fact, _ in result.facts))
                observations[slot].append(
                    (result.generation, i % len(PATTERNS), keys)
                )
        except BaseException as error:  # propagate to the main thread
            errors.append(error)

    def writer():
        try:
            for batch in BATCHES:
                service.ingest(batch)
                time.sleep(0.01)  # let size/interval triggers interleave
            service.flush()
        except BaseException as error:
            errors.append(error)
        finally:
            writer_done.set()

    with service:
        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(READERS)
        ]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        for thread in threads:
            thread.join(timeout=120)
        writer_thread.join(timeout=120)
        assert writer_done.is_set()
        assert not errors, errors

        # every queued batch was applied before we compare final states
        final_count = service.fact_count()
        final_keys = {fact.key for fact in service.probkb.all_facts()}
        stats = service.stats()

    # 1. no torn reads: same (generation, pattern) -> same result set
    by_observation = defaultdict(set)
    for slot in range(READERS):
        for generation, pattern, keys in observations[slot]:
            by_observation[(generation, pattern)].add(keys)
    torn = {
        key: len(values)
        for key, values in by_observation.items()
        if len(values) > 1
    }
    assert not torn, f"inconsistent reads within one generation: {torn}"

    # 2. generations and fact counts are monotone within each thread
    for slot in range(READERS):
        generations = [generation for generation, _, _ in observations[slot]]
        assert generations == sorted(generations), f"reader {slot} went back in time"
        counts = [
            (generation, len(keys))
            for generation, pattern, keys in observations[slot]
            if pattern == PATTERNS.index({})
        ]
        assert counts == sorted(counts), f"reader {slot} saw facts disappear"

    # 3. the concurrent fixpoint equals the sequential one
    sequential = sequential_fixpoint()
    assert final_count == sequential.fact_count()
    assert final_keys == {fact.key for fact in sequential.all_facts()}
    assert all(
        any(fact.subject == name for fact in sequential.all_facts())
        for name in WRITERS
    )

    # 4. repeat queries actually hit the cache
    assert stats["cache_hit_rate"] > 0
    assert stats["queries"] == READERS * QUERIES_PER_READER
    assert stats["ingest_batches"] >= 1
