"""HTTP hardening: auth, rate limiting, body caps, timeouts, draining.

Each test boots a real in-process server (threaded, random port) with
the hardening knob under test switched on, and exercises it with plain
``urllib`` — exactly what an external client sees.
"""

import contextlib
import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ProbKB
from repro.datasets import paper_kb
from repro.serve import (
    IngestConfig,
    JsonLogger,
    KBService,
    ServeConfig,
    ServiceConfig,
    make_server,
)


def build_service(**service_kwargs) -> KBService:
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    return KBService(system, ServiceConfig(**service_kwargs))


@contextlib.contextmanager
def serving(service, config=None, logger=None, start_worker=True, snapshot_path=None):
    server = make_server(
        service, port=0, config=config, logger=logger, snapshot_path=snapshot_path
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if start_worker:
        service.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.stop()


def request(url, payload=None, token=None, method=None):
    """Fire one request; returns (status, parsed body, headers)."""
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    data = None
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


EVIDENCE_FACT = {
    "relation": "born_in",
    "subject": "Saul Bellow",
    "subject_class": "Person",
    "object": "Brooklyn",
    "object_class": "City",
    "weight": 0.9,
}


class TestAuth:
    def test_requests_without_token_answer_401(self):
        service = build_service()
        config = ServeConfig(auth_tokens=("sekrit",))
        with serving(service, config) as (base, _):
            status, payload, headers = request(base + "/stats")
            assert status == 401
            assert "bearer" in payload["error"].lower()
            assert headers.get("WWW-Authenticate", "").startswith("Bearer")

    def test_wrong_token_401_right_token_200(self):
        service = build_service()
        config = ServeConfig(auth_tokens=("sekrit",))
        with serving(service, config) as (base, _):
            status, _, _ = request(base + "/stats", token="wrong")
            assert status == 401
            status, payload, _ = request(base + "/stats", token="sekrit")
            assert status == 200
            assert payload["auth_failures"] >= 1  # counted in metrics

    def test_any_configured_token_is_accepted(self):
        service = build_service()
        config = ServeConfig(auth_tokens=("alpha", "beta"))
        with serving(service, config) as (base, _):
            assert request(base + "/stats", token="beta")[0] == 200

    def test_healthz_stays_open_without_token(self):
        service = build_service()
        config = ServeConfig(auth_tokens=("sekrit",))
        with serving(service, config) as (base, _):
            status, payload, _ = request(base + "/healthz")
            assert status == 200 and payload["status"] == "ok"

    def test_posts_are_gated_too(self):
        service = build_service()
        config = ServeConfig(auth_tokens=("sekrit",))
        with serving(service, config) as (base, _):
            status, _, _ = request(
                base + "/evidence", {"facts": [EVIDENCE_FACT], "flush": True}
            )
            assert status == 401
            status, _, _ = request(
                base + "/evidence",
                {"facts": [EVIDENCE_FACT], "flush": True},
                token="sekrit",
            )
            assert status == 202


class TestRateLimit:
    def test_burst_past_bucket_answers_429_with_retry_after(self):
        service = build_service()
        config = ServeConfig(rate_limit=1.0, rate_burst=3)
        with serving(service, config) as (base, _):
            statuses = [request(base + "/stats")[0] for _ in range(3)]
            assert statuses == [200, 200, 200]
            status, payload, headers = request(base + "/stats")
            assert status == 429
            assert "rate limit" in payload["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_healthz_is_never_rate_limited(self):
        service = build_service()
        config = ServeConfig(rate_limit=1.0, rate_burst=1)
        with serving(service, config) as (base, _):
            for _ in range(5):
                assert request(base + "/healthz")[0] == 200

    def test_rate_limited_counted_in_stats(self):
        service = build_service()
        config = ServeConfig(rate_limit=1.0, rate_burst=2)
        with serving(service, config) as (base, _):
            for _ in range(4):
                request(base + "/stats")
            assert service.metrics.rate_limited >= 1


class TestBodyCap:
    def test_oversized_body_answers_413(self):
        service = build_service()
        config = ServeConfig(max_body_bytes=128)
        with serving(service, config) as (base, _):
            big = {"facts": [dict(EVIDENCE_FACT, subject="x" * 500)]}
            status, payload, _ = request(base + "/evidence", big)
            assert status == 413
            assert "exceeds" in payload["error"]
            assert service.metrics.oversize_rejected == 1

    def test_malformed_content_length_answers_400(self):
        service = build_service()
        with serving(service) as (base, _):
            req = urllib.request.Request(
                base + "/evidence", data=b"{}", headers={"Content-Length": "banana"}
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(req, timeout=10)
            assert caught.value.code == 400
            assert "Content-Length" in json.loads(caught.value.read())["error"]

    def test_negative_content_length_answers_400(self):
        service = build_service()
        with serving(service) as (base, _):
            req = urllib.request.Request(
                base + "/evidence", data=b"{}", headers={"Content-Length": "-5"}
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(req, timeout=10)
            assert caught.value.code == 400


class TestRequestTimeout:
    def test_slow_handler_answers_504(self):
        service = build_service()

        def glacial(**kwargs):
            time.sleep(2.0)
            return {}

        service.stats = glacial
        config = ServeConfig(request_timeout=0.2)
        with serving(service, config) as (base, _):
            started = time.monotonic()
            status, payload, _ = request(base + "/stats")
            assert status == 504
            assert time.monotonic() - started < 1.5
            assert "budget" in payload["error"]
            assert service.metrics.request_timeouts == 1

    def test_fast_handler_unaffected(self):
        service = build_service()
        config = ServeConfig(request_timeout=5.0)
        with serving(service, config) as (base, _):
            assert request(base + "/stats")[0] == 200


class TestOverflowAtomicity:
    """The acceptance scenario: 503 must leave the queue depth unchanged."""

    def test_overflowing_post_answers_503_queue_unchanged(self):
        service = build_service(
            ingest=IngestConfig(max_queue=2, put_timeout=0.05)
        )
        config = ServeConfig(auth_tokens=("sekrit",), rate_limit=50.0, rate_burst=50)
        # worker deliberately not started: queued facts stay put
        with serving(service, config, start_worker=False) as (base, _):
            batch = {
                "facts": [
                    dict(EVIDENCE_FACT, subject=f"Person {i}") for i in range(2)
                ]
            }
            status, accepted, _ = request(base + "/evidence", batch, token="sekrit")
            assert status == 202 and accepted["queue_depth"] == 2
            status, payload, _ = request(
                base + "/evidence",
                {"facts": [dict(EVIDENCE_FACT, subject="One More")]},
                token="sekrit",
            )
            assert status == 503
            assert service.queue.depth == 2  # nothing partially admitted

    def test_batch_that_can_never_fit_fails_fast_503(self):
        service = build_service(
            ingest=IngestConfig(max_queue=2, put_timeout=30.0)
        )
        with serving(service, start_worker=False) as (base, _):
            batch = {
                "facts": [
                    dict(EVIDENCE_FACT, subject=f"Person {i}") for i in range(3)
                ]
            }
            started = time.monotonic()
            status, payload, _ = request(base + "/evidence", batch)
            assert status == 503
            assert time.monotonic() - started < 5.0  # not the 30s put timeout
            assert service.queue.depth == 0


class TestDeadLetterVisibility:
    def test_failed_flush_is_dead_lettered_and_visible_in_stats(self):
        service = build_service()

        def explode(batch):
            raise RuntimeError("regrounding blew up")

        service.probkb.add_evidence = explode
        with serving(service, start_worker=False) as (base, _):
            status, _, _ = request(
                base + "/evidence", {"facts": [EVIDENCE_FACT], "flush": True}
            )
            assert status == 202  # accepted; the flush failure is async-visible
            status, stats, _ = request(base + "/stats")
            assert status == 200
            assert stats["dead_letter"]["facts"] == 1
            assert stats["dead_letter"]["batches"] == 1
            assert stats["dead_letter_facts"] == 1  # metrics counter
            assert "last_ingest_error" in stats
            # the accepted fact is retained, not silently dropped
            assert [f.subject for f in service.worker.dead_letter] == ["Saul Bellow"]


class TestDraining:
    def test_healthz_flips_to_draining_and_evidence_rejected(self):
        service = build_service()
        with serving(service) as (base, server):
            assert request(base + "/healthz")[1]["status"] == "ok"
            server.draining = True
            status, payload, _ = request(base + "/healthz")
            assert status == 200 and payload["status"] == "draining"
            status, payload, _ = request(
                base + "/evidence", {"facts": [EVIDENCE_FACT]}
            )
            assert status == 503
            assert "draining" in payload["error"]


class TestRequestLogging:
    def test_one_json_line_per_request(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        service = build_service()
        with serving(service, logger=logger) as (base, _):
            request(base + "/healthz")
            request(base + "/facts?relation=born_in")
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        requests = [e for e in events if e["event"] == "request"]
        assert len(requests) == 2
        facts_line = requests[1]
        assert facts_line["method"] == "GET"
        assert facts_line["path"] == "/facts"
        assert facts_line["status"] == 200
        assert facts_line["latency_ms"] >= 0
        assert isinstance(facts_line["generation"], int)
        assert facts_line["queue_depth"] == 0

    def test_flush_logged_with_generation_and_latency(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        system = ProbKB(paper_kb(), backend="single")
        system.ground()
        service = KBService(system, ServiceConfig(), logger=logger)
        with serving(service, logger=logger) as (base, _):
            request(
                base + "/evidence", {"facts": [EVIDENCE_FACT], "flush": True}
            )
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        flushes = [e for e in events if e["event"] == "flush"]
        assert flushes and flushes[0]["facts"] == 1
        assert flushes[0]["generation"] >= 1
        assert flushes[0]["latency_ms"] >= 0
