"""Micro-batching ingest: queue, coalescing, triggers, backpressure."""

import threading
import time

import pytest

from repro import Fact
from repro.serve import (
    EvidenceQueue,
    IngestConfig,
    IngestOverflow,
    IngestWorker,
    coalesce,
)


def fact(i, weight=0.9):
    return Fact("likes", f"p{i}", "Person", f"q{i}", "Person", weight)


class TestCoalesce:
    def test_last_write_wins_per_key(self):
        first = Fact("likes", "a", "Person", "b", "Person", 0.5)
        second = Fact("likes", "a", "Person", "b", "Person", 0.9)
        other = fact(1)
        batch = coalesce([first, other, second])
        assert len(batch) == 2
        kept = {f.key: f.weight for f in batch}
        assert kept[first.key] == 0.9

    def test_order_of_first_appearance_kept(self):
        batch = coalesce([fact(3), fact(1), fact(3)])
        assert [f.subject for f in batch] == ["p3", "p1"]


class TestEvidenceQueue:
    def test_put_and_drain_fifo(self):
        queue = EvidenceQueue(IngestConfig(max_queue=10))
        assert queue.put([fact(1), fact(2)]) == 2
        assert queue.depth == 2
        batch = queue.drain()
        assert [f.subject for f in batch] == ["p1", "p2"]
        assert queue.depth == 0

    def test_drain_respects_max_items(self):
        queue = EvidenceQueue(IngestConfig(max_queue=10))
        queue.put([fact(i) for i in range(5)])
        assert len(queue.drain(max_items=3)) == 3
        assert queue.depth == 2

    def test_backpressure_raises_after_timeout(self):
        queue = EvidenceQueue(IngestConfig(max_queue=2, put_timeout=0.05))
        queue.put([fact(1), fact(2)])
        with pytest.raises(IngestOverflow):
            queue.put([fact(3)])
        assert queue.depth == 2

    def test_backpressure_unblocks_when_drained(self):
        queue = EvidenceQueue(IngestConfig(max_queue=2, put_timeout=5.0))
        queue.put([fact(1), fact(2)])
        done = []

        def producer():
            queue.put([fact(3)])
            done.append(True)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not done  # still blocked
        queue.drain(max_items=1)
        thread.join(timeout=5)
        assert done and queue.depth == 2

    def test_config_validated(self):
        with pytest.raises(ValueError):
            IngestConfig(max_queue=0)
        with pytest.raises(ValueError):
            IngestConfig(flush_size=0)
        with pytest.raises(ValueError):
            IngestConfig(flush_interval=-1)


class TestIngestWorker:
    def _worker(self, config, applied):
        queue = EvidenceQueue(config)
        worker = IngestWorker(queue, lambda batch: applied.append(list(batch)))
        return queue, worker

    def test_flush_by_size(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=3, flush_interval=30.0), applied
        )
        worker.start()
        try:
            queue.put([fact(i) for i in range(3)])
            deadline = time.monotonic() + 5
            while not applied and time.monotonic() < deadline:
                time.sleep(0.01)
            assert applied and len(applied[0]) == 3
        finally:
            worker.stop()

    def test_flush_by_interval(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=1000, flush_interval=0.05), applied
        )
        worker.start()
        try:
            queue.put([fact(1)])  # far below flush_size
            deadline = time.monotonic() + 5
            while not applied and time.monotonic() < deadline:
                time.sleep(0.01)
            assert applied == [[fact(1)]]
        finally:
            worker.stop()

    def test_synchronous_flush_applies_everything(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=2, flush_interval=30.0), applied
        )
        # worker not started: flush() runs in the caller's thread
        queue.put([fact(i) for i in range(5)])
        assert worker.flush() == 5
        assert sum(len(batch) for batch in applied) == 5
        assert queue.depth == 0

    def test_stop_drains_leftovers(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=1000, flush_interval=30.0), applied
        )
        worker.start()
        queue.put([fact(1), fact(2)])
        worker.stop(drain=True)
        assert sum(len(batch) for batch in applied) == 2

    def test_apply_error_is_captured_not_raised(self):
        queue = EvidenceQueue(IngestConfig())

        def explode(batch):
            raise RuntimeError("backend down")

        worker = IngestWorker(queue, explode)
        queue.put([fact(1)])
        worker.flush()
        assert isinstance(worker.last_error, RuntimeError)
        assert queue.depth == 0


class TestAtomicPut:
    """Regression: a batch must be admitted whole or not at all."""

    def test_overflow_leaves_queue_depth_unchanged(self):
        queue = EvidenceQueue(IngestConfig(max_queue=4, put_timeout=0.05))
        queue.put([fact(1), fact(2), fact(3)])
        with pytest.raises(IngestOverflow):
            queue.put([fact(4), fact(5)])  # only 1 slot free for 2 facts
        # the old one-at-a-time loop would have queued fact(4) before
        # raising, ghosting it into the KB when the client retried
        assert queue.depth == 3
        assert [f.subject for f in queue.drain()] == ["p1", "p2", "p3"]

    def test_batch_larger_than_queue_fails_fast(self):
        queue = EvidenceQueue(IngestConfig(max_queue=2, put_timeout=30.0))
        started = time.monotonic()
        with pytest.raises(IngestOverflow) as caught:
            queue.put([fact(i) for i in range(3)])
        # can never fit: must not sit out the 30s producer timeout
        assert time.monotonic() - started < 1.0
        assert "never fit" in str(caught.value)
        assert queue.depth == 0

    def test_blocked_put_admits_batch_whole_once_room_opens(self):
        queue = EvidenceQueue(IngestConfig(max_queue=3, put_timeout=5.0))
        queue.put([fact(1), fact(2)])
        admitted = []

        def producer():
            queue.put([fact(3), fact(4)])
            admitted.append(queue.depth)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not admitted  # 2 slots needed, 1 free: still blocked
        assert queue.depth == 2  # and nothing partially admitted
        queue.drain(max_items=1)
        thread.join(timeout=5)
        assert admitted == [3]


class TestAgeTrigger:
    """Regression: a partial drain must not restart the age clock."""

    def test_oldest_age_survives_partial_drain(self):
        queue = EvidenceQueue(IngestConfig(max_queue=10, flush_interval=10.0))
        queue.put([fact(1), fact(2)])
        time.sleep(0.06)
        queue.drain(max_items=1)
        age = queue.oldest_age()
        # fact(2) has been queued ~0.06s; the old code reset its age to 0
        # on every partial drain, starving leftovers indefinitely
        assert age is not None and age >= 0.05

    def test_age_trigger_fires_for_leftovers_after_partial_drain(self):
        config = IngestConfig(max_queue=10, flush_size=1000, flush_interval=0.15)
        queue = EvidenceQueue(config)
        queue.put([fact(1), fact(2)])
        time.sleep(0.2)  # both facts are now older than flush_interval
        queue.drain(max_items=1)
        stop = threading.Event()
        started = time.monotonic()
        # the leftover fact is already over-age: wait_ready must fire
        # immediately instead of waiting another full flush_interval
        assert queue.wait_ready(stop) is True
        assert time.monotonic() - started < 0.1

    def test_empty_queue_has_no_age(self):
        queue = EvidenceQueue(IngestConfig())
        assert queue.oldest_age() is None
        queue.put([fact(1)])
        queue.drain()
        assert queue.oldest_age() is None


class TestFlushFailurePolicy:
    """Regression: accepted evidence must never vanish silently."""

    def test_failed_batch_lands_in_dead_letter(self):
        queue = EvidenceQueue(IngestConfig())

        def explode(batch):
            raise RuntimeError("backend down")

        dropped = []
        worker = IngestWorker(queue, explode, on_drop=dropped.append)
        queue.put([fact(1), fact(2)])
        worker.flush()
        assert queue.depth == 0
        stats = worker.dead_letter_stats()
        assert stats == {"batches": 1, "facts": 2, "evicted": 0}
        assert {f.subject for f in worker.dead_letter} == {"p1", "p2"}
        assert dropped == [2]
        assert worker.retries == 1  # it tried twice before giving up

    def test_transient_failure_is_retried_and_applied(self):
        queue = EvidenceQueue(IngestConfig())
        applied = []
        attempts = []

        def flaky(batch):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            applied.extend(batch)

        worker = IngestWorker(queue, flaky)
        queue.put([fact(1)])
        worker.flush()
        assert applied == [fact(1)]
        assert worker.retries == 1
        assert worker.dead_letter_stats()["facts"] == 0

    def test_dead_letter_is_bounded(self):
        queue = EvidenceQueue(IngestConfig(dead_letter_max=3))

        def explode(batch):
            raise RuntimeError("down")

        worker = IngestWorker(queue, explode)
        queue.put([fact(i) for i in range(5)])
        worker.flush()
        stats = worker.dead_letter_stats()
        assert stats["facts"] == 3  # oldest two evicted
        assert stats["evicted"] == 2
        assert [f.subject for f in worker.dead_letter] == ["p2", "p3", "p4"]

    def test_take_dead_letter_empties_the_list(self):
        queue = EvidenceQueue(IngestConfig())

        def explode(batch):
            raise RuntimeError("down")

        worker = IngestWorker(queue, explode)
        queue.put([fact(1)])
        worker.flush()
        taken = worker.take_dead_letter()
        assert [f.subject for f in taken] == ["p1"]
        assert worker.dead_letter_stats()["facts"] == 0

    def test_keyboard_interrupt_propagates(self):
        """Ctrl-C must not be swallowed into last_error."""
        queue = EvidenceQueue(IngestConfig())

        def interrupt(batch):
            raise KeyboardInterrupt

        worker = IngestWorker(queue, interrupt)
        queue.put([fact(1)])
        with pytest.raises(KeyboardInterrupt):
            worker.flush()

    def test_system_exit_propagates(self):
        queue = EvidenceQueue(IngestConfig())

        def exit_(batch):
            raise SystemExit(3)

        worker = IngestWorker(queue, exit_)
        queue.put([fact(1)])
        with pytest.raises(SystemExit):
            worker.flush()
