"""Micro-batching ingest: queue, coalescing, triggers, backpressure."""

import threading
import time

import pytest

from repro import Fact
from repro.serve import (
    EvidenceQueue,
    IngestConfig,
    IngestOverflow,
    IngestWorker,
    coalesce,
)


def fact(i, weight=0.9):
    return Fact("likes", f"p{i}", "Person", f"q{i}", "Person", weight)


class TestCoalesce:
    def test_last_write_wins_per_key(self):
        first = Fact("likes", "a", "Person", "b", "Person", 0.5)
        second = Fact("likes", "a", "Person", "b", "Person", 0.9)
        other = fact(1)
        batch = coalesce([first, other, second])
        assert len(batch) == 2
        kept = {f.key: f.weight for f in batch}
        assert kept[first.key] == 0.9

    def test_order_of_first_appearance_kept(self):
        batch = coalesce([fact(3), fact(1), fact(3)])
        assert [f.subject for f in batch] == ["p3", "p1"]


class TestEvidenceQueue:
    def test_put_and_drain_fifo(self):
        queue = EvidenceQueue(IngestConfig(max_queue=10))
        assert queue.put([fact(1), fact(2)]) == 2
        assert queue.depth == 2
        batch = queue.drain()
        assert [f.subject for f in batch] == ["p1", "p2"]
        assert queue.depth == 0

    def test_drain_respects_max_items(self):
        queue = EvidenceQueue(IngestConfig(max_queue=10))
        queue.put([fact(i) for i in range(5)])
        assert len(queue.drain(max_items=3)) == 3
        assert queue.depth == 2

    def test_backpressure_raises_after_timeout(self):
        queue = EvidenceQueue(IngestConfig(max_queue=2, put_timeout=0.05))
        queue.put([fact(1), fact(2)])
        with pytest.raises(IngestOverflow):
            queue.put([fact(3)])
        assert queue.depth == 2

    def test_backpressure_unblocks_when_drained(self):
        queue = EvidenceQueue(IngestConfig(max_queue=2, put_timeout=5.0))
        queue.put([fact(1), fact(2)])
        done = []

        def producer():
            queue.put([fact(3)])
            done.append(True)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not done  # still blocked
        queue.drain(max_items=1)
        thread.join(timeout=5)
        assert done and queue.depth == 2

    def test_config_validated(self):
        with pytest.raises(ValueError):
            IngestConfig(max_queue=0)
        with pytest.raises(ValueError):
            IngestConfig(flush_size=0)
        with pytest.raises(ValueError):
            IngestConfig(flush_interval=-1)


class TestIngestWorker:
    def _worker(self, config, applied):
        queue = EvidenceQueue(config)
        worker = IngestWorker(queue, lambda batch: applied.append(list(batch)))
        return queue, worker

    def test_flush_by_size(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=3, flush_interval=30.0), applied
        )
        worker.start()
        try:
            queue.put([fact(i) for i in range(3)])
            deadline = time.monotonic() + 5
            while not applied and time.monotonic() < deadline:
                time.sleep(0.01)
            assert applied and len(applied[0]) == 3
        finally:
            worker.stop()

    def test_flush_by_interval(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=1000, flush_interval=0.05), applied
        )
        worker.start()
        try:
            queue.put([fact(1)])  # far below flush_size
            deadline = time.monotonic() + 5
            while not applied and time.monotonic() < deadline:
                time.sleep(0.01)
            assert applied == [[fact(1)]]
        finally:
            worker.stop()

    def test_synchronous_flush_applies_everything(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=2, flush_interval=30.0), applied
        )
        # worker not started: flush() runs in the caller's thread
        queue.put([fact(i) for i in range(5)])
        assert worker.flush() == 5
        assert sum(len(batch) for batch in applied) == 5
        assert queue.depth == 0

    def test_stop_drains_leftovers(self):
        applied = []
        queue, worker = self._worker(
            IngestConfig(flush_size=1000, flush_interval=30.0), applied
        )
        worker.start()
        queue.put([fact(1), fact(2)])
        worker.stop(drain=True)
        assert sum(len(batch) for batch in applied) == 2

    def test_apply_error_is_captured_not_raised(self):
        queue = EvidenceQueue(IngestConfig())

        def explode(batch):
            raise RuntimeError("backend down")

        worker = IngestWorker(queue, explode)
        queue.put([fact(1)])
        worker.flush()
        assert isinstance(worker.last_error, RuntimeError)
        assert queue.depth == 0
