"""ServeConfig resolution, the JSON logger, and the token-bucket limiter."""

import io
import json

import pytest

from repro.serve import JsonLogger, RateLimiter, ServeConfig


class TestServeConfig:
    def test_defaults_are_open_except_body_cap(self):
        config = ServeConfig()
        assert not config.auth_enabled
        assert not config.rate_limit_enabled
        assert config.request_timeout == 30.0
        assert config.max_body_bytes == 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(rate_limit=-1)
        with pytest.raises(ValueError):
            ServeConfig(rate_burst=0)
        with pytest.raises(ValueError):
            ServeConfig(request_timeout=-0.1)
        with pytest.raises(ValueError):
            ServeConfig(max_body_bytes=-1)
        with pytest.raises(ValueError):
            ServeConfig(auth_tokens=("ok", ""))
        with pytest.raises(ValueError):
            ServeConfig(expansion="bogus")

    def test_expansion_default_is_full(self):
        assert ServeConfig().expansion == "full"
        assert ServeConfig.from_env({}).expansion == "full"

    def test_from_env_rejects_unknown_expansion(self):
        with pytest.raises(ValueError, match="PROBKB_SERVE_EXPANSION"):
            ServeConfig.from_env({"PROBKB_SERVE_EXPANSION": "eager"})

    def test_resolve_expansion_flag_overrides_env(self):
        env = {"PROBKB_SERVE_EXPANSION": "delta"}
        assert ServeConfig.resolve(env, expansion=None).expansion == "delta"
        assert ServeConfig.resolve(env, expansion="full").expansion == "full"

    def test_from_env_reads_every_knob(self):
        env = {
            "PROBKB_SERVE_AUTH_TOKEN": "alpha, beta",
            "PROBKB_SERVE_RATE_LIMIT": "2.5",
            "PROBKB_SERVE_RATE_BURST": "7",
            "PROBKB_SERVE_TIMEOUT": "1.5",
            "PROBKB_SERVE_MAX_BODY": "2048",
            "PROBKB_SERVE_LOG_JSON": "true",
            "PROBKB_SERVE_EXPANSION": "Delta",
        }
        config = ServeConfig.from_env(env)
        assert config.auth_tokens == ("alpha", "beta")
        assert config.rate_limit == 2.5
        assert config.rate_burst == 7
        assert config.request_timeout == 1.5
        assert config.max_body_bytes == 2048
        assert config.log_json is True
        assert config.expansion == "delta"  # normalized to lower case

    def test_from_env_ignores_unset_variables(self):
        assert ServeConfig.from_env({}) == ServeConfig()

    def test_from_env_rejects_garbage(self):
        with pytest.raises(ValueError, match="PROBKB_SERVE_RATE_LIMIT"):
            ServeConfig.from_env({"PROBKB_SERVE_RATE_LIMIT": "fast"})
        with pytest.raises(ValueError, match="PROBKB_SERVE_LOG_JSON"):
            ServeConfig.from_env({"PROBKB_SERVE_LOG_JSON": "maybe"})

    def test_resolve_cli_overrides_env(self):
        env = {"PROBKB_SERVE_RATE_LIMIT": "2.0", "PROBKB_SERVE_RATE_BURST": "5"}
        config = ServeConfig.resolve(env, rate_limit=9.0, rate_burst=None)
        assert config.rate_limit == 9.0  # explicit flag wins
        assert config.rate_burst == 5  # None means "not given": env shows through

    def test_resolve_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            ServeConfig.resolve({}, no_such_knob=1)


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=lambda: 12.0)
        logger.log("request", method="GET", path="/facts", status=200)
        logger.log("flush", facts=3)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "ts": 12.0,
            "event": "request",
            "method": "GET",
            "path": "/facts",
            "status": 200,
        }
        assert json.loads(lines[1])["event"] == "flush"

    def test_disabled_logger_writes_nothing(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, enabled=False)
        logger.log("request", status=200)
        assert stream.getvalue() == ""

    def test_unserializable_fields_fall_back_to_repr(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.log("error", error=ValueError("boom"))
        payload = json.loads(stream.getvalue())
        assert "boom" in payload["error"]


class TestRateLimiter:
    def test_burst_then_reject_with_retry_after(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=3, clock=lambda: clock[0])
        assert [limiter.check("c")[0] for _ in range(3)] == [True] * 3
        allowed, retry_after = limiter.check("c")
        assert not allowed
        assert retry_after == pytest.approx(1.0)

    def test_tokens_refill_over_time(self):
        clock = [0.0]
        limiter = RateLimiter(rate=2.0, burst=2, clock=lambda: clock[0])
        assert limiter.check("c")[0] and limiter.check("c")[0]
        assert not limiter.check("c")[0]
        clock[0] += 0.5  # one token refills at 2/s
        assert limiter.check("c")[0]
        assert not limiter.check("c")[0]

    def test_clients_do_not_share_buckets(self):
        limiter = RateLimiter(rate=1.0, burst=1)
        assert limiter.check("a")[0]
        assert not limiter.check("a")[0]
        assert limiter.check("b")[0]  # fresh bucket for a new client

    def test_client_table_is_bounded(self):
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=3)
        for i in range(10):
            limiter.check(f"client-{i}")
        assert len(limiter) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0, burst=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1, burst=0)
