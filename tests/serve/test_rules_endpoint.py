"""POST /rules: analysis-gated rule ingest over HTTP."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import ProbKB
from repro.core import GroundingConfig
from repro.datasets import paper_kb
from repro.serve import KBService, ServiceConfig, make_server


def post_json(url, payload, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def base_url():
    system = ProbKB(
        paper_kb(),
        backend="single",
        grounding=GroundingConfig(analysis="strict"),
    )
    system.ground()
    service = KBService(system, ServiceConfig()).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.stop()


def rule_payload(body_relation):
    return {
        "weight": 0.8,
        "head": {"relation": "live_in", "args": ["x", "y"]},
        "body": [{"relation": body_relation, "args": ["x", "y"]}],
        "classes": {"x": "Writer", "y": "City"},
    }


def test_post_rules_accepts_clean_rule(base_url):
    status, payload = post_json(
        base_url + "/rules", {"rules": [rule_payload("grow_up_in")]}
    )
    assert status == 200
    assert payload["added"] == 1
    assert payload["generation"] >= 1


def test_post_rules_rejects_degenerate_rule_with_findings(base_url):
    status, payload = post_json(
        base_url + "/rules", {"rules": [rule_payload("teleports_to")]}
    )
    assert status == 422
    assert "static analysis" in payload["error"]
    assert any(f["code"] == "PKB001" for f in payload["findings"])


def test_post_rules_rejected_batch_changes_nothing(base_url):
    status, before = post_json(base_url + "/rules", {"rules": [rule_payload("no_rel")]})
    assert status == 422
    # the same clean rule must still be ingestible afterwards (no
    # half-applied batch left behind by the rollback)
    status, payload = post_json(
        base_url + "/rules", {"rules": [rule_payload("grow_up_in")]}
    )
    assert status == 200
    assert payload["added"] == 1


def test_post_rules_malformed_payload_is_400(base_url):
    status, payload = post_json(base_url + "/rules", {"rules": []})
    assert status == 400
    status, payload = post_json(
        base_url + "/rules",
        {"rules": [{"weight": 1.0, "head": {"relation": "live_in"}}]},
    )
    assert status == 400
