"""Snapshots: fact-level round trip, warm restart, sqlite export."""

import json
import os
import sqlite3

import pytest

from repro import BackendConfig, Fact, InferenceConfig, MPPConfig, ProbKB
from repro.datasets import paper_kb
from repro.serve import export_sqlite, load_snapshot, save_snapshot, snapshot_dict


def expanded_system():
    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    system = ProbKB(kb, backend="single")
    system.ground()
    system.materialize_marginals(config=InferenceConfig(num_sweeps=200, seed=3))
    return system


def fact_level(probkb):
    """The full fact-level content: key and stored weight."""
    return sorted((fact.key, fact.weight) for fact in probkb.all_facts())


class TestRoundTrip:
    def test_facts_round_trip_exactly(self, tmp_path):
        system = expanded_system()
        path = save_snapshot(system, str(tmp_path / "kb.json"))
        warm = load_snapshot(path)
        assert fact_level(warm) == fact_level(system)
        assert warm.fact_count() == system.fact_count()
        assert warm.generation == system.generation

    def test_double_round_trip_is_stable(self, tmp_path):
        """Snapshot of a loaded snapshot is byte-identical."""
        system = expanded_system()
        first = str(tmp_path / "one.json")
        second = str(tmp_path / "two.json")
        save_snapshot(system, first)
        save_snapshot(load_snapshot(first), second)
        assert open(first).read() == open(second).read()

    def test_marginals_round_trip(self, tmp_path):
        system = expanded_system()
        warm = load_snapshot(save_snapshot(system, str(tmp_path / "kb.json")))
        original = dict(system.query_facts(min_probability=0.0))
        restored = dict(warm.query_facts(min_probability=0.0))
        assert {f.key for f in restored} == {f.key for f in original}
        by_key = {fact.key: p for fact, p in original.items()}
        for fact, probability in restored.items():
            assert probability == pytest.approx(by_key[fact.key])

    def test_warm_load_skips_grounding_but_keeps_ingest_working(self, tmp_path):
        system = expanded_system()
        warm = load_snapshot(save_snapshot(system, str(tmp_path / "kb.json")))
        assert warm.grounding is None  # no grounding run happened
        before = warm.fact_count()
        warm.add_evidence(
            [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)]
        )
        assert warm.fact_count() > before + 1  # delta inference fired

    def test_snapshot_without_marginals(self, tmp_path):
        kb = paper_kb()
        system = ProbKB(kb, backend="single")
        system.ground()
        warm = load_snapshot(save_snapshot(system, str(tmp_path / "kb.json")))
        assert fact_level(warm) == fact_level(system)
        assert all(p is None for _, p in warm.query_facts())


class TestFormat:
    def test_snapshot_dict_is_json_clean(self):
        payload = snapshot_dict(expanded_system())
        json.dumps(payload)  # no unserializable leftovers
        assert payload["format"] == "probkb-snapshot"
        assert payload["version"] == 1
        assert payload["facts"] and payload["rules"] and payload["marginals"]

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ValueError, match="not a probkb-snapshot"):
            load_snapshot(str(path))

    def test_rejects_unknown_version(self, tmp_path):
        system = expanded_system()
        path = save_snapshot(system, str(tmp_path / "kb.json"))
        payload = json.load(open(path))
        payload["version"] = 99
        open(path, "w").write(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_snapshot(path)

    def test_save_is_atomic(self, tmp_path):
        system = expanded_system()
        path = save_snapshot(system, str(tmp_path / "kb.json"))
        assert not os.path.exists(path + ".tmp")


class TestSqliteExport:
    def test_tables_mirrored_to_disk(self, tmp_path):
        system = expanded_system()
        path = export_sqlite(system, str(tmp_path / "kb.db"))
        conn = sqlite3.connect(path)
        try:
            tp_rows = conn.execute("SELECT COUNT(*) FROM TP").fetchone()[0]
            assert tp_rows == system.fact_count()
            tprob = conn.execute("SELECT COUNT(*) FROM TProb").fetchone()[0]
            assert tprob == system.fact_count()
            names = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            assert {"TP", "TF", "DE", "DR", "TProb"} <= names
        finally:
            conn.close()

    def test_export_overwrites_stale_file(self, tmp_path):
        system = expanded_system()
        path = str(tmp_path / "kb.db")
        export_sqlite(system, path)
        export_sqlite(system, path)  # second run must not fail on CREATE

    def test_mpp_backend_rejected(self, tmp_path):
        system = ProbKB(
            paper_kb(),
            backend=BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2)),
        )
        system.ground()
        with pytest.raises(ValueError, match="single-node"):
            export_sqlite(system, str(tmp_path / "kb.db"))
