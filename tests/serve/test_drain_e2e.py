"""The scripted end-to-end acceptance check for the hardened server.

One `repro serve` subprocess with auth + rate limiting enabled must:

1. answer an overflowing ``POST /evidence`` with 503, queue depth
   unchanged;
2. answer an unauthenticated request with 401;
3. answer a burst past the token bucket with 429;
4. on SIGTERM, drain every accepted fact into the KB (the final
   snapshot's generation reflects them) before exiting 0.
"""

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

from repro.datasets import paper_kb, save_kb

TOKEN = "e2e-secret"


def api(base, path, payload=None, token=TOKEN):
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    data = None
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(base + path, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def evidence(subject, object_="Chicago"):
    return {
        "relation": "born_in",
        "subject": subject,
        "subject_class": "Person",
        "object": object_,
        "object_class": "City",
        "weight": 0.9,
    }


def test_hardened_serve_end_to_end(tmp_path):
    kb_dir = str(tmp_path / "kb")
    save_kb(paper_kb(), kb_dir)
    snapshot = str(tmp_path / "snap.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    # log_json via env var proves the env layer is wired through
    env["PROBKB_SERVE_LOG_JSON"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--kb", kb_dir,
            "--port", "0",
            "--snapshot", snapshot,
            "--auth-token", TOKEN,
            "--rate-limit", "30",
            "--rate-burst", "20",
            # a tiny queue the flush triggers never beat: facts stay
            # queued until the SIGTERM drain applies them
            "--max-queue", "4",
            "--flush-size", "500",
            "--flush-interval", "600",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        base = None
        assert process.stdout is not None
        for line in process.stdout:
            if line.startswith("serving on "):
                base = line.split()[2]
                break
        assert base, "server never reported its address"

        # -- 401: unauthenticated ----------------------------------------
        status, payload, headers = api(base, "/stats", token=None)
        assert status == 401
        assert headers.get("WWW-Authenticate", "").startswith("Bearer")
        status, _, _ = api(base, "/stats", token="wrong-token")
        assert status == 401

        # -- accepted evidence stays queued (no flush trigger can fire) --
        boot_generation = api(base, "/healthz", token=None)[1]["generation"]
        status, accepted, _ = api(
            base,
            "/evidence",
            {"facts": [evidence("Saul Bellow"), evidence("Nelson Algren")]},
        )
        assert status == 202
        assert accepted["queue_depth"] == 2

        # -- 503 overflow leaves the queue depth unchanged ----------------
        too_big = {"facts": [evidence(f"Person {i}") for i in range(5)]}
        status, payload, _ = api(base, "/evidence", too_big)
        assert status == 503
        status, stats, _ = api(base, "/stats")
        assert status == 200
        assert stats["queue_depth"] == 2  # nothing partially admitted

        # -- 429: burst past the bucket -----------------------------------
        statuses = []
        for _ in range(30):
            status, _, headers = api(base, "/stats")
            statuses.append((status, headers))
            if status == 429:
                break
        final_status, final_headers = statuses[-1]
        assert final_status == 429, f"no 429 in {len(statuses)} rapid requests"
        assert int(final_headers["Retry-After"]) >= 1

        # -- SIGTERM: drain -> snapshot -> exit 0 -------------------------
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
        stderr = process.stderr.read() if process.stderr else ""

    # every accepted fact was drained into the KB before exit: the final
    # snapshot carries a newer generation and both evidence subjects
    with open(snapshot) as handle:
        snap = json.load(handle)
    assert snap["generation"] > boot_generation
    subjects = {fact[1] for fact in snap["facts"]}
    assert {"Saul Bellow", "Nelson Algren"} <= subjects

    # structured logs (enabled via PROBKB_SERVE_LOG_JSON) recorded the
    # lifecycle: requests, the drain, and the final snapshot
    events = []
    for line in stderr.splitlines():
        try:
            events.append(json.loads(line))
        except ValueError:
            continue  # non-JSON stderr noise (warnings etc.)
    kinds = {event.get("event") for event in events}
    assert "request" in kinds
    assert "drain_begin" in kinds
    assert "snapshot" in kinds
