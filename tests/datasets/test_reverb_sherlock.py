"""Generator tests: the noisy KB, its error injections, and the oracle."""

import pytest

from repro.datasets import GeneratedKB, ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig


@pytest.fixture(scope="module")
def generated() -> GeneratedKB:
    return generate(ReVerbSherlockConfig(seed=5))


def test_kb_is_valid_and_nonempty(generated):
    stats = generated.stats()
    assert stats["facts"] > 500
    assert stats["rules"] > 20
    assert stats["entities"] > 200
    assert stats["constraints"] == 6


def test_ambiguous_surfaces_map_to_multiple_reals(generated):
    assert generated.ambiguous_surfaces
    for surface in generated.ambiguous_surfaces:
        assert len(generated.surface_to_reals[surface]) >= 2


def test_synonyms_map_to_existing_entities(generated):
    for alias, primary in generated.synonym_surfaces.items():
        assert primary in generated.surface_to_reals[alias]


def test_rules_have_scores_and_labels(generated):
    labels = generated.rule_is_correct
    assert set(labels) == set(generated.kb.rules)
    assert any(labels.values()) and not all(labels.values())
    for rule in generated.kb.rules:
        assert 0.0 < rule.score <= 1.0
        assert rule.weight > 0


def test_correct_rules_score_higher_on_average(generated):
    correct = [r.score for r, ok in generated.rule_is_correct.items() if ok]
    wrong = [r.score for r, ok in generated.rule_is_correct.items() if not ok]
    assert sum(correct) / len(correct) > sum(wrong) / len(wrong)


def test_injected_errors_are_judged_incorrect(generated):
    by_key = {fact.key: fact for fact in generated.kb.facts}
    errors = [by_key[k] for k in generated.injected_error_keys if k in by_key]
    assert errors
    judged_incorrect = sum(
        1 for fact in errors if generated.judge.judge(fact) == "incorrect"
    )
    assert judged_incorrect / len(errors) > 0.9


def test_most_clean_extractions_are_acceptable(generated):
    clean = [
        fact
        for fact in generated.kb.facts
        if fact.key not in generated.injected_error_keys
        and not fact.relation.startswith("bulk_")
    ]
    acceptable = sum(1 for fact in clean if generated.judge.is_acceptable(fact))
    assert acceptable / len(clean) > 0.95


def test_judge_resolves_ambiguity_generously(generated):
    """A fact about an ambiguous name is correct if it holds for ANY of
    the real entities behind the name (both of the paper's born_in
    Mandel facts are individually correct)."""
    surface = next(iter(generated.ambiguous_surfaces))
    reals = generated.surface_to_reals[surface]
    facts = [
        f for f in generated.kb.facts
        if f.subject == surface and f.relation == "born_in"
        and f.key not in generated.injected_error_keys
    ]
    for fact in facts:
        assert generated.judge.is_acceptable(fact)


def test_bulk_relations_present(generated):
    bulk = [r for r in generated.kb.relations if r.startswith("bulk_rel_")]
    assert len(bulk) >= generated.config.n_bulk_relations // 2


def test_deterministic_generation():
    first = generate(ReVerbSherlockConfig(seed=9))
    second = generate(ReVerbSherlockConfig(seed=9))
    assert [f.key for f in first.kb.facts] == [f.key for f in second.kb.facts]
    assert len(first.kb.rules) == len(second.kb.rules)


def test_scaling_with_world_config():
    small = generate(ReVerbSherlockConfig(world=WorldConfig(n_people=50), seed=1))
    large = generate(ReVerbSherlockConfig(world=WorldConfig(n_people=400), seed=1))
    assert large.stats()["facts"] > small.stats()["facts"]
    assert large.stats()["entities"] > small.stats()["entities"]
