"""S1/S2 synthetic KB generators and TSV round-trips."""

import pytest

from repro import GroundingConfig, ProbKB
from repro.datasets import (
    ReVerbSherlockConfig,
    generate,
    load_kb,
    s1_kb,
    s2_kb,
    save_kb,
)


@pytest.fixture(scope="module")
def base():
    return generate(ReVerbSherlockConfig(seed=2))


def test_s1_rule_count_exact(base):
    for n_rules in (10, len(base.kb.rules) + 50):
        kb = s1_kb(base, n_rules, seed=1)
        assert len(kb.rules) == n_rules
        assert len(kb.facts) == len(base.kb.facts)


def test_s1_synthetic_rules_are_classifiable(base):
    from repro.core import classify_clause

    kb = s1_kb(base, len(base.kb.rules) + 30, seed=1)
    for rule in kb.rules:
        classify_clause(rule)  # must not raise


def test_s1_deterministic(base):
    first = s1_kb(base, 100, seed=7)
    second = s1_kb(base, 100, seed=7)
    assert [str(r) for r in first.rules] == [str(r) for r in second.rules]


def test_s2_fact_count_exact(base):
    for n_facts in (100, len(base.kb.facts) + 500):
        kb = s2_kb(base, n_facts, seed=1)
        assert len(kb.facts) == n_facts
        assert len(kb.rules) == len(base.kb.rules)


def test_s2_random_edges_follow_fact_signatures(base):
    kb = s2_kb(base, len(base.kb.facts) + 200, seed=1)
    extra = kb.facts[len(base.kb.facts):]
    base_signatures = {
        (f.relation, f.subject_class, f.object_class) for f in base.kb.facts
    }
    assert all(
        (f.relation, f.subject_class, f.object_class) in base_signatures
        for f in extra
    )


def test_s2_grows_entity_pool(base):
    kb = s2_kb(base, len(base.kb.facts) + 2000, seed=1)
    assert len(kb.entities) > len(base.kb.entities)


def test_s2_truncates(base):
    kb = s2_kb(base, 50, seed=1)
    assert len(kb.facts) == 50


def test_tsv_roundtrip(base, tmp_path):
    directory = str(tmp_path / "kb")
    save_kb(base.kb, directory)
    loaded = load_kb(directory)
    assert loaded.stats() == base.kb.stats()
    assert {f.key for f in loaded.facts} == {f.key for f in base.kb.facts}
    assert sorted(str(r) for r in loaded.rules) == sorted(
        str(r) for r in base.kb.rules
    )
    assert {(c.relation, c.arg, c.degree) for c in loaded.constraints} == {
        (c.relation, c.arg, c.degree) for c in base.kb.constraints
    }


def test_roundtrip_grounds_identically(base, tmp_path):
    from repro import ProbKB

    directory = str(tmp_path / "kb2")
    save_kb(base.kb, directory)
    loaded = load_kb(directory)
    no_constraints = GroundingConfig(apply_constraints=False)
    original = ProbKB(base.kb, grounding=no_constraints)
    reloaded = ProbKB(loaded, grounding=no_constraints)
    res_a = original.ground(max_iterations=2)
    res_b = reloaded.ground(max_iterations=2)
    assert res_a.total_new_facts == res_b.total_new_facts
