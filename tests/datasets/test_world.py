"""Ground-truth world tests: construction invariants, closures, judging."""

import pytest

from repro.datasets import World, WorldConfig, WorldRule, apply_rules
from repro.datasets.world import SOUND


@pytest.fixture(scope="module")
def world():
    return World(WorldConfig(seed=3))


def test_sizes_match_config(world):
    cfg = world.config
    assert len(world.countries) == cfg.n_countries
    assert len(world.cities) == cfg.n_countries * cfg.n_cities_per_country
    assert len(world.people) == cfg.n_people


def test_every_city_in_exactly_one_country(world):
    placements = [t for t in world.true_facts if t[0] == "located_in" and t[1].startswith("city")]
    by_city = {}
    for _, city, country in placements:
        assert city not in by_city
        by_city[city] = country
    assert set(by_city) == set(world.cities)


def test_every_person_born_once(world):
    births = [t for t in world.true_facts if t[0] == "born_in"]
    assert len(births) == len({t[1] for t in births}) == len(world.people)


def test_one_capital_per_country(world):
    capitals = [t for t in world.true_facts if t[0] == "capital_of"]
    assert len(capitals) == len(world.countries)
    assert len({t[2] for t in capitals}) == len(world.countries)


def test_sound_closure_contains_transitive_locations(world):
    closure = world.sound_closure()
    district = world.districts[0]
    city = world.parent[district]
    country = world.parent[city]
    assert ("located_in", district, city) in closure
    assert ("located_in", district, country) in closure  # derived


def test_sound_closure_lifts_birthplaces(world):
    closure = world.sound_closure()
    births = [t for t in world.true_facts if t[0] == "born_in"]
    _, person, place = births[0]
    if place.startswith("district"):
        city = world.parent[place]
        assert ("born_in", person, city) in closure
        assert ("born_in", person, world.parent[city]) in closure


def test_plausible_closure_is_superset(world):
    assert world.sound_closure() <= world.plausible_closure()
    # born -> live is plausible but not sound
    extra = world.plausible_closure() - world.sound_closure()
    assert any(t[0] == "live_in" for t in extra)


def test_judge_levels(world):
    district = world.districts[0]
    city = world.parent[district]
    assert world.judge_triple(("located_in", district, city)) == "correct"
    births = [t for t in world.true_facts if t[0] == "born_in"]
    _, person, place = births[0]
    birth_city = world._city_of(place)
    assert world.judge_triple(("live_in", person, birth_city)) in ("correct", "probable")
    home = place
    while home not in world.countries:
        home = world.parent[home]
    other_country = next(c for c in world.countries if c != home)
    assert world.judge_triple(("capital_of", place, other_country)) == "incorrect"


def test_deterministic_for_seed():
    first = World(WorldConfig(seed=11))
    second = World(WorldConfig(seed=11))
    assert first.true_facts == second.true_facts
    assert World(WorldConfig(seed=12)).true_facts != first.true_facts


def test_classes_of(world):
    assert world.classes_of(world.cities[0]) == ("City", "Place")
    assert world.classes_of(world.countries[0]) == ("Country", "Place")
    assert world.classes_of(world.people[0]) == ("Person",)


def test_class_map_covers_all_entities(world):
    members = world.class_map()
    total = set()
    for values in members.values():
        total.update(values)
    assert set(world.people) <= total
    assert set(world.cities) <= set(members["City"])
    assert set(world.cities) <= set(members["Place"])


def test_apply_rules_fixpoint():
    base = {("r", "a", "b"), ("r", "b", "c"), ("r", "c", "d")}
    transitive = WorldRule("r", ("r", "r"), pattern=4, kind=SOUND)
    closure = apply_rules(base, [transitive])
    assert ("r", "a", "d") in closure
    assert ("r", "a", "c") in closure
    assert len(closure) == 6


def test_apply_rules_excludes_reflexive():
    base = {("r", "a", "b"), ("r", "b", "a")}
    transitive = WorldRule("r", ("r", "r"), pattern=4)
    closure = apply_rules(base, [transitive])
    assert ("r", "a", "a") not in closure


@pytest.mark.parametrize(
    "pattern,expected",
    [
        (1, ("head", "s", "a")),  # q(x, y)
        (2, ("head", "a", "s")),  # q(y, x)
        (3, ("head", "a", "b")),  # q(z,x)=q(s,a), r(z,y)=r(s,b)
        (4, ("head", "s", "b")),  # q(x,z)=q(s,a), r(z,y)=r(a,b)
        (5, ("head", "a", "b")),  # q(z,x)=q(s,a), r(y,z)=r(b,s)
        (6, ("head", "s", "c")),  # q(x,z)=q(s,a), r(y,z)=r(c,a)
    ],
)
def test_apply_rules_every_pattern(pattern, expected):
    base = {
        ("q", "s", "a"),
        ("r", "s", "b"),
        ("r", "a", "b"),
        ("r", "b", "s"),
        ("r", "c", "a"),
    }
    rule = WorldRule("head", ("q",) if pattern in (1, 2) else ("q", "r"), pattern=pattern)
    closure = apply_rules(base, [rule])
    assert expected in closure
