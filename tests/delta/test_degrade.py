"""Crash -> serial degrade on the delta inference path, in-process.

The real worker-death version lives in ``tests/infer/test_parallel.py``
behind the ``mpp`` marker; here the pool failure is injected, so tier-1
covers the contract: the degrade warns once, the batch still completes
with bit-identical marginals, and the driver stays serial until reset.
"""

import pytest

from repro.delta.inference import sample_components
from repro.infer.parallel import ParallelGibbsDriver
from repro.mpp.workers import WorkerCrashError

SNAPSHOTS = [
    ([0, 1, 2], [(1, 0, None, 1.2), (2, 1, None, 0.7), (0, None, None, 0.9)]),
    ([4, 5], [(5, 4, None, 1.1), (4, None, None, 0.6)]),
]
SWEEPS = 50
SEED = 3


def crashing(*args, **kwargs):
    raise WorkerCrashError("inference worker 1 died (exitcode=-9)")


def test_crash_warns_and_falls_back_to_identical_serial(monkeypatch):
    reference = sample_components(SNAPSHOTS, SWEEPS, SEED)
    driver = ParallelGibbsDriver(num_workers=2)
    monkeypatch.setattr(driver, "_sample_pooled", crashing)

    with pytest.warns(RuntimeWarning, match="continuing with serial sampling"):
        survived = sample_components(SNAPSHOTS, SWEEPS, SEED, driver=driver)
    assert survived == reference  # bit-identical, not approximately equal

    assert driver.degraded
    assert not driver.active
    info = driver.info()
    assert info["degraded"] is True
    assert "worker 1 died" in info["degraded_reason"]


def test_degraded_driver_stays_serial_without_rewarning(monkeypatch):
    import warnings

    reference = sample_components(SNAPSHOTS, SWEEPS, SEED)
    driver = ParallelGibbsDriver(num_workers=2)
    monkeypatch.setattr(driver, "_sample_pooled", crashing)
    with pytest.warns(RuntimeWarning):
        sample_components(SNAPSHOTS, SWEEPS, SEED, driver=driver)

    # degraded: later batches go straight to serial — no pool attempt,
    # no second warning, same marginals
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = sample_components(SNAPSHOTS, SWEEPS, SEED, driver=driver)
    assert again == reference


def test_reset_forgets_the_degrade(monkeypatch):
    driver = ParallelGibbsDriver(num_workers=2)
    monkeypatch.setattr(driver, "_sample_pooled", crashing)
    with pytest.warns(RuntimeWarning):
        sample_components(SNAPSHOTS, SWEEPS, SEED, driver=driver)
    assert driver.degraded

    driver.reset()
    assert not driver.degraded
    assert driver.active  # will try the pool again on the next batch
