"""The incremental component index and componentwise sampling."""

import random

from repro.delta import (
    ComponentIndex,
    build_component_graph,
    component_seed,
    componentwise_marginals,
    sample_component,
)


class TestComponentIndex:
    def test_variables_start_as_singletons(self):
        index = ComponentIndex()
        index.add_variable(3)
        index.add_variable(7)
        assert len(index) == 2
        assert index.members(3) == [3]
        assert index.factors(7) == []
        assert index.anchor(7) == 7

    def test_add_variable_is_idempotent(self):
        index = ComponentIndex()
        index.add_variable(1)
        index.add_variable(1)
        assert len(index) == 1 and index.members(1) == [1]

    def test_factor_unions_participants(self):
        index = ComponentIndex()
        touched = index.add_factors([(2, 1, None, 1.5)])
        assert len(touched) == 1
        root = touched.pop()
        assert index.members(root) == [1, 2]
        assert index.factors(root) == [(2, 1, None, 1.5)]
        assert index.anchor(root) == 1

    def test_unknown_participants_register_on_the_fly(self):
        index = ComponentIndex()
        index.add_factors([(9, None, None, 0.5)])
        assert 9 in index and index.members(9) == [9]

    def test_merge_carries_both_payloads(self):
        index = ComponentIndex()
        index.add_factors([(1, 0, None, 1.0), (3, 2, None, 1.0)])
        assert len(index) == 2
        # a bridging factor merges the two islands
        touched = index.add_factors([(2, 1, None, 2.0)])
        assert len(touched) == 1
        root = touched.pop()
        assert index.members(root) == [0, 1, 2, 3]
        assert sorted(index.factors(root)) == [
            (1, 0, None, 1.0),
            (2, 1, None, 2.0),
            (3, 2, None, 1.0),
        ]
        assert index.anchor(root) == 0
        assert len(index) == 1

    def test_touched_roots_are_canonical_after_all_unions(self):
        index = ComponentIndex()
        # two factors that end up in the SAME component: the returned
        # set must contain one final root, not two intermediate ones
        touched = index.add_factors([(1, 0, None, 1.0), (2, 1, None, 1.0)])
        assert len(touched) == 1
        root = touched.pop()
        assert index.members(root) == [0, 1, 2]

    def test_roots_ordered_by_anchor(self):
        index = ComponentIndex()
        index.add_factors([(5, 4, None, 1.0), (1, 0, None, 1.0)])
        roots = index.roots()
        assert [index.anchor(r) for r in roots] == [0, 4]

    def test_from_factor_rows_registers_isolated_variables(self):
        index = ComponentIndex.from_factor_rows(
            [0, 1, 2], [(1, 0, None, 1.0)]
        )
        assert len(index) == 2  # {0,1} and the isolated {2}
        assert index.members(2) == [2]


class TestDeterminism:
    def test_component_seed_decorrelates_neighbours(self):
        seeds = {component_seed(0, anchor) for anchor in range(100)}
        assert len(seeds) == 100
        assert component_seed(0, 5) != component_seed(1, 5)

    def test_graph_construction_is_order_invariant(self):
        rows = [(1, 0, None, 1.2), (2, 1, None, 0.7), (2, 0, None, 0.4)]
        one = build_component_graph([0, 1, 2], rows)
        other = build_component_graph([2, 1, 0], list(reversed(rows)))
        assert one.external_ids() == other.external_ids()

    def test_sample_component_ignores_row_order(self):
        rows = [(1, 0, None, 1.2), (2, 1, None, 0.7), (0, None, None, 0.9)]
        shuffled = list(rows)
        random.Random(7).shuffle(shuffled)
        assert sample_component([0, 1, 2], rows, 50, seed=3) == sample_component(
            [2, 0, 1], shuffled, 50, seed=3
        )

    def test_componentwise_marginals_ignore_component_order(self):
        rows = [
            (0, None, None, 0.8),
            (1, 0, None, 1.5),
            (4, None, None, 0.6),
            (5, 4, None, 1.1),
        ]
        shuffled = list(rows)
        random.Random(11).shuffle(shuffled)
        assert componentwise_marginals(rows, 60, seed=2) == componentwise_marginals(
            shuffled, 60, seed=2
        )

    def test_component_marginals_independent_of_other_components(self):
        """The key splice property: a component's marginals don't change
        when an unrelated component appears elsewhere in the graph."""
        island = [(0, None, None, 0.8), (1, 0, None, 1.5)]
        other = [(4, None, None, 0.6)]
        alone = componentwise_marginals(island, 60, seed=2)
        together = componentwise_marginals(island + other, 60, seed=2)
        assert {k: v for k, v in together.items() if k in (0, 1)} == alone
