"""KBService with ``expansion="delta"``: fresh marginals on the ingest path.

Serve-level contract: a flush grounds the delta under the write lock,
re-samples only the touched components on the pipeline thread, and
splices — so queries see scored probabilities continuously, without an
operator ``materialize``, and cached queries over untouched predicates
stay warm across flushes.
"""

import threading
import time

import pytest

from repro import Fact, InferenceConfig, ProbKB
from repro.datasets import paper_kb
from repro.delta import componentwise_marginals
from repro.serve import IngestConfig, KBService, ServiceConfig

SWEEPS = 80
SEED = 5


def expandable_kb():
    kb = paper_kb()
    kb.classes["Writer"].update({"Saul Bellow", "Grace Paley"})
    return kb


def delta_config(**overrides):
    return ServiceConfig(
        expansion="delta",
        ingest=IngestConfig(flush_size=4, flush_interval=0.05),
        inference=InferenceConfig(num_sweeps=SWEEPS, seed=SEED),
        **overrides,
    )


@pytest.fixture
def service():
    system = ProbKB(expandable_kb(), backend="single")
    system.ground()
    svc = KBService(system, delta_config())
    with svc:
        yield svc


BATCH = [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)]


class TestDeltaFlush:
    def test_flush_scores_fresh_facts_without_materialize(self, service):
        service.ingest(BATCH, flush=True)
        result = service.query(subject="Saul Bellow", min_probability=0.01)
        assert result.facts  # live_in / grow_up_in derived and scored
        assert all(probability is not None for _, probability in result.facts)

    def test_flush_matches_offline_componentwise_reference(self, service):
        batches = [
            BATCH,
            [Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93)],
        ]
        for batch in batches:
            service.ingest(batch, flush=True)
        reference = ProbKB(expandable_kb(), backend="single")
        reference.ground()
        for batch in batches:
            reference.add_evidence(batch)
        expected = componentwise_marginals(reference.factor_rows(), SWEEPS, SEED)
        assert service.delta is not None
        assert service.delta.marginals == expected

    def test_worker_flush_drains_through_pipeline(self, service):
        facts = [
            Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93),
            Fact("live_in", "Grace Paley", "Writer", "Brooklyn", "Place", 0.81),
            Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88),
            Fact("live_in", "Saul Bellow", "Writer", "New York City", "City", 0.7),
        ]
        service.ingest(facts)  # == flush_size: the worker thread fires
        deadline = time.monotonic() + 5
        while service.worker.flushes == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        service.flush()  # waits out the inference pipeline too
        result = service.query(subject="Grace Paley", min_probability=0.01)
        assert len(result.facts) >= 2
        assert all(probability is not None for _, probability in result.facts)

    def test_interleaved_queries_never_see_torn_generations(self, service):
        service.materialize()  # prime before the readers start
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                result = service.query(relation="born_in")
                probkb_generation = service.generation
                if result.generation > probkb_generation:
                    torn.append((result.generation, probkb_generation))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        batches = [
            BATCH,
            [Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93)],
            [Fact("live_in", "Grace Paley", "Writer", "Brooklyn", "Place", 0.7)],
        ]
        for batch in batches:
            service.ingest(batch, flush=True)
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        assert not torn
        reference = ProbKB(expandable_kb(), backend="single")
        reference.ground()
        for batch in batches:
            reference.add_evidence(batch)
        expected = componentwise_marginals(reference.factor_rows(), SWEEPS, SEED)
        assert service.delta.marginals == expected


class TestScopedInvalidation:
    def test_flush_keeps_unrelated_predicate_queries_warm(self, service):
        service.materialize()  # prime, so the next flush is incremental
        warm = service.query(relation="located_in")
        assert not warm.cache_hit
        doomed = service.query(relation="born_in")
        assert not doomed.cache_hit
        service.ingest(BATCH, flush=True)
        # Saul Bellow's flush touches born_in/live_in/grow_up_in, not
        # located_in: the located_in entry survives the flush warm
        assert service.query(relation="located_in").cache_hit
        after = service.query(relation="born_in")
        assert not after.cache_hit
        assert any(fact.subject == "Saul Bellow" for fact, _ in after.facts)

    def test_pattern_free_queries_still_invalidate(self, service):
        service.materialize()
        service.query(subject="Ruth Gruber")  # no relation -> depends on all
        service.ingest(BATCH, flush=True)
        assert not service.query(subject="Ruth Gruber").cache_hit


class TestStats:
    def test_stats_report_delta_state_and_metrics(self, service):
        service.ingest(BATCH, flush=True)
        stats = service.stats()
        assert stats["expansion"] == "delta"
        state = stats["delta_state"]
        assert state["primed"] is True
        assert state["components"] >= 1
        assert state["scored_facts"] == len(service.delta.marginals)
        assert state["pending_inference"] == 0
        delta = stats["delta"]
        assert delta["flushes"] >= 1
        assert delta["facts"] >= 3
        assert delta["full_rebuilds"] == 0
        assert delta["ground_latency"]["count"] >= 1
        assert delta["infer_latency"]["count"] >= 1
        assert delta["commit_latency"]["count"] >= 1


class TestDeadLetterRetry:
    def test_retry_requeues_and_applies(self, service):
        real_apply = service.worker.apply

        def exploding(batch):
            raise RuntimeError("backend offline")

        service.worker.apply = exploding
        service.ingest(BATCH, flush=True)
        assert service.worker.dead_letter_stats()["facts"] == 1
        assert service.metrics.dead_letter_facts == 1

        service.worker.apply = real_apply
        requeued, depth = service.retry_dead_letter()
        assert requeued == 1 and depth == 1
        assert service.worker.dead_letter_stats()["facts"] == 0
        service.flush()
        result = service.query(subject="Saul Bellow", min_probability=0.01)
        assert result.facts
        assert service.stats()["dead_letter_retries"] == 1

    def test_retry_with_empty_dead_letter_is_a_noop(self, service):
        assert service.retry_dead_letter() == (0, 0)
        assert service.stats()["dead_letter_retries"] == 0


class TestDeltaErrorRecovery:
    def test_failed_inference_is_logged_counted_and_survivable(self, service):
        real_infer = service.delta.infer
        calls = []

        def exploding(pending):
            calls.append(pending)
            raise RuntimeError("inference backend offline")

        service.delta.infer = exploding
        service.ingest(BATCH, flush=True)
        service.pipeline.drain()
        assert len(calls) == 1

        stats = service.stats()
        assert stats["delta_state"]["errors"] == 1
        assert stats["delta"]["errors"] == 1
        assert not service.delta.primed  # invalidated for re-prime

        # the pipeline thread survived: the next flush re-primes and
        # scores the batch end to end
        service.delta.infer = real_infer
        more = [Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93)]
        service.ingest(more, flush=True)
        service.pipeline.drain()
        result = service.query(subject="Grace Paley", min_probability=0.01)
        assert result.facts
        assert service.stats()["delta_state"]["errors"] == 1  # no new errors
