"""Delta expansion vs. full re-expansion: bit-identical at a fixed seed.

The contract under test (ISSUE 6 acceptance): after any sequence of
evidence flushes, the delta path's TΠ, TΦ, and marginals are exactly
what a from-scratch full expansion over the same final evidence — and a
componentwise re-sample at the same seed — would produce.  Identically
constructed systems assign identical fact ids, so the comparison is
exact (multisets of TΦ rows, float-equal marginals), not approximate.
"""

import random
from collections import Counter

import pytest

from repro import (
    Fact,
    FunctionalConstraint,
    InferenceConfig,
    KnowledgeBase,
    ProbKB,
    Relation,
    TYPE_I,
)
from repro.api import ExpansionSession
from repro.datasets import paper_kb
from repro.delta import DeltaExpander, componentwise_marginals

SWEEPS = 60
SEED = 3
CONFIG = InferenceConfig(num_sweeps=SWEEPS, seed=SEED)


def expandable_kb():
    kb = paper_kb()
    kb.classes["Writer"].update({"Saul Bellow", "Grace Paley"})
    kb.classes["Place"].add("Chicago")
    return kb


def delta_system(make_kb=expandable_kb):
    system = ProbKB(make_kb(), backend="single")
    expander = DeltaExpander(system, inference=CONFIG)
    expander.prime()
    return system, expander


def reference_marginals(make_kb, batches):
    """Full path: re-ground + re-expand after every batch, then one
    componentwise sample over the final factor graph."""
    system = ProbKB(make_kb(), backend="single")
    system.ground()
    for batch in batches:
        system.add_evidence(batch)
    return system, componentwise_marginals(system.factor_rows(), SWEEPS, SEED)


def factor_bag(system):
    return Counter(system.factor_rows())


def triple_keys(system):
    return {(f.relation, f.subject, f.object) for f in system.all_facts()}


BATCH = [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)]


class TestEquivalence:
    def test_single_fact_delta_matches_full(self):
        system, expander = delta_system()
        result = expander.expand_delta(BATCH)
        full, expected = reference_marginals(expandable_kb, [BATCH])
        assert factor_bag(system) == factor_bag(full)
        assert expander.marginals == expected
        assert not result.full_rebuild
        assert result.new_facts == 3  # evidence + live_in + grow_up_in
        assert result.touched_components == 1

    def test_empty_delta_is_a_noop(self):
        system, expander = delta_system()
        before_facts = system.fact_count()
        before_marginals = dict(expander.marginals)
        result = expander.expand_delta([])
        assert result.new_facts == 0 and result.new_factors == 0
        assert result.touched_components == 0
        assert system.fact_count() == before_facts
        assert expander.marginals == before_marginals

    def test_overlapping_delta_dedups_against_existing_facts(self):
        system, expander = delta_system()
        existing = expandable_kb().facts[0]
        result = expander.expand_delta([existing] + BATCH)
        assert result.added_evidence == 1  # the duplicate was guarded out
        full, expected = reference_marginals(expandable_kb, [BATCH])
        assert factor_bag(system) == factor_bag(full)
        assert expander.marginals == expected

    def test_sequence_of_deltas_matches_one_shot_full(self):
        batches = [
            BATCH,
            [Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93)],
            [Fact("live_in", "Saul Bellow", "Writer", "Chicago", "Place", 0.7)],
        ]
        system, expander = delta_system()
        for batch in batches:
            expander.expand_delta(batch)
        full, expected = reference_marginals(expandable_kb, batches)
        assert triple_keys(system) == triple_keys(full)
        assert factor_bag(system) == factor_bag(full)
        assert expander.marginals == expected

    def test_marginals_are_materialized_in_tprob(self):
        system, expander = delta_system()
        expander.expand_delta(BATCH)
        from repro.relational import Scan

        stored = dict(system.backend.query(Scan("TProb")).rows)
        assert stored == pytest.approx(expander.marginals)

    def test_untouched_component_marginals_survive_verbatim(self):
        system, expander = delta_system()
        before = dict(expander.marginals)
        result = expander.expand_delta(BATCH)
        # Saul Bellow's new island is disjoint from Ruth Gruber's, so every
        # marginal in her component must survive the splice verbatim
        assert result.touched_components == 1
        gruber_ids = {
            row[0]
            for row in system.backend.project("TP", ("I", "x"))
            if row[1] == system.rkb.entities.lookup("Ruth Gruber")
        }
        for fact_id in gruber_ids:
            assert expander.marginals[fact_id] == before[fact_id]


class TestConstraintViolatingDelta:
    @staticmethod
    def make_kb():
        classes = {
            "Person": {"mandel", "ann", "zoe"},
            "City": {"berlin", "baltimore", "paris"},
        }
        relations = [
            Relation("born_in", "Person", "City"),
            Relation("live_in", "Person", "City"),
        ]
        facts = [
            Fact("born_in", "mandel", "Person", "berlin", "City", 0.9),
            Fact("born_in", "ann", "Person", "paris", "City", 0.9),
        ]
        kb = KnowledgeBase(
            classes=classes,
            relations=relations,
            facts=facts,
            constraints=[FunctionalConstraint("born_in", arg=TYPE_I)],
        )
        return kb

    def test_violating_delta_forces_full_rebuild_and_matches(self):
        system, expander = delta_system(self.make_kb)
        # a second birthplace for mandel violates the Type I constraint:
        # applyConstraints deletes BOTH mandel facts mid-delta
        violating = [
            Fact("born_in", "mandel", "Person", "baltimore", "City", 0.8),
            Fact("born_in", "zoe", "Person", "paris", "City", 0.7),
        ]
        result = expander.expand_delta(violating)
        assert result.full_rebuild
        remaining = triple_keys(system)
        assert ("born_in", "mandel", "berlin") not in remaining
        assert ("born_in", "mandel", "baltimore") not in remaining
        assert ("born_in", "zoe", "paris") in remaining
        # marginals equal a componentwise sample of the surviving graph
        expected = componentwise_marginals(system.factor_rows(), SWEEPS, SEED)
        assert expander.marginals == expected

    def test_non_violating_delta_on_constrained_kb_stays_incremental(self):
        system, expander = delta_system(self.make_kb)
        result = expander.expand_delta(
            [Fact("born_in", "zoe", "Person", "berlin", "City", 0.7)]
        )
        assert not result.full_rebuild
        full, expected = reference_marginals(
            self.make_kb,
            [[Fact("born_in", "zoe", "Person", "berlin", "City", 0.7)]],
        )
        assert factor_bag(system) == factor_bag(full)
        assert expander.marginals == expected


class TestRandomizedProperty:
    """Property test at a fixed seed: random flush sequences over a
    synthetic KB always reconverge with the full path, bit-for-bit."""

    PEOPLE = [f"p{i}" for i in range(12)]
    CITIES = [f"c{i}" for i in range(4)]

    @classmethod
    def make_kb(cls):
        kb = paper_kb()
        kb.classes["Writer"].update(cls.PEOPLE)
        kb.classes["Place"].update(cls.CITIES)
        return kb

    def random_batches(self, rng, count):
        batches = []
        for _ in range(count):
            size = rng.randint(1, 4)
            batch = [
                Fact(
                    "born_in",
                    rng.choice(self.PEOPLE),
                    "Writer",
                    rng.choice(self.CITIES),
                    "Place",
                    round(rng.uniform(0.5, 0.99), 2),
                )
                for _ in range(size)
            ]
            batches.append(batch)
        return batches

    @pytest.mark.parametrize("case_seed", [0, 1, 2])
    def test_random_flush_sequences_reconverge(self, case_seed):
        rng = random.Random(case_seed)
        batches = self.random_batches(rng, count=4)
        system, expander = delta_system(self.make_kb)
        for batch in batches:
            expander.expand_delta(batch)
        full, expected = reference_marginals(self.make_kb, batches)
        assert triple_keys(system) == triple_keys(full)
        assert factor_bag(system) == factor_bag(full)
        assert expander.marginals == expected


class TestSessionApi:
    def test_expand_delta_via_session(self):
        session = ExpansionSession(expandable_kb())
        session.ground()
        result = session.expand_delta(BATCH)
        assert result.new_facts == 3
        scored = session.query(subject="Saul Bellow", min_probability=0.01)
        assert scored and all(p is not None for _, p in scored)
