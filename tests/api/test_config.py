"""Config-object tests: validation, frozenness, backend resolution."""

import dataclasses

import pytest

from repro.api import (
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    build_backend,
)
from repro.core import MPPBackend, SingleNodeBackend


class TestMPPConfig:
    def test_defaults_are_serial(self):
        config = MPPConfig()
        assert config.num_segments == 8
        assert config.num_workers == 0
        assert config.policy == "matviews"
        assert config.use_matviews

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MPPConfig().num_workers = 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_segments": 0},
            {"num_workers": -1},
            {"policy": "mirrored"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MPPConfig(**kwargs)

    def test_naive_policy(self):
        assert not MPPConfig(policy="naive").use_matviews


class TestBackendConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="oracle")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BackendConfig().kind = "mpp"

    def test_configs_are_hashable_and_reusable(self):
        config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2))
        assert config == BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2))
        assert len({config, config}) == 1
        first = build_backend(config)
        second = build_backend(config)
        assert first is not second  # one config, many independent backends


class TestInferenceConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            InferenceConfig(method="oracle")

    def test_defaults(self):
        config = InferenceConfig()
        assert (config.method, config.num_sweeps, config.seed) == ("gibbs", 500, 0)


class TestGroundingConfig:
    def test_defaults(self):
        config = GroundingConfig()
        assert config.max_iterations is None
        assert config.apply_constraints
        assert not config.semi_naive


class TestBuildBackend:
    def test_default_is_single_node(self):
        assert isinstance(build_backend(), SingleNodeBackend)

    def test_string_shorthand(self):
        assert isinstance(build_backend("single"), SingleNodeBackend)
        assert isinstance(build_backend("mpp"), MPPBackend)

    def test_mpp_tuning_flows_through(self):
        backend = build_backend(
            BackendConfig(
                kind="mpp",
                mpp=MPPConfig(num_segments=3, num_workers=0, policy="naive"),
                name="tuned",
            )
        )
        assert backend.nseg == 3
        assert backend.num_workers == 0
        assert not backend.use_matviews
        assert backend.name == "tuned"

    def test_existing_backend_passthrough(self):
        backend = SingleNodeBackend()
        assert build_backend(backend) is backend

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            build_backend(42)
        with pytest.raises(ValueError):
            build_backend("oracle")
