"""Config-object tests: validation, frozenness, backend resolution."""

import dataclasses

import pytest

from repro.api import (
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    build_backend,
)
from repro.core import MPPBackend, SingleNodeBackend


class TestMPPConfig:
    def test_defaults_are_serial(self):
        config = MPPConfig()
        assert config.num_segments == 8
        assert config.num_workers == 0
        assert config.policy == "matviews"
        assert config.use_matviews

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MPPConfig().num_workers = 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_segments": 0},
            {"num_workers": -1},
            {"policy": "mirrored"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MPPConfig(**kwargs)

    def test_naive_policy(self):
        assert not MPPConfig(policy="naive").use_matviews


class TestBackendConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="oracle")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BackendConfig().kind = "mpp"

    def test_configs_are_hashable_and_reusable(self):
        config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2))
        assert config == BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2))
        assert len({config, config}) == 1
        first = build_backend(config)
        second = build_backend(config)
        assert first is not second  # one config, many independent backends


class TestInferenceConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            InferenceConfig(method="oracle")

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(ValueError, match="registered: .*gibbs"):
            InferenceConfig(engine="oracle")

    def test_defaults(self):
        config = InferenceConfig()
        assert (config.method, config.num_sweeps, config.seed) == ("gibbs", 500, 0)
        assert (config.engine, config.sweeps) == ("gibbs", 500)
        assert config.num_workers == 0
        assert config.worker_timeout == 60.0
        assert config.shard_threshold == 512

    def test_legacy_kwargs_warn_once_each(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = InferenceConfig(method="bp", num_sweeps=64)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
        assert (config.engine, config.sweeps) == ("bp", 64)

    def test_modern_kwargs_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = InferenceConfig(engine="bp", sweeps=64, num_workers=2)
        # legacy property reads stay silent too
        assert (config.method, config.num_sweeps) == ("bp", 64)

    def test_frozen_and_replaceable(self):
        config = InferenceConfig(sweeps=100, num_workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.sweeps = 7
        bumped = dataclasses.replace(config, sweeps=200)
        assert (bumped.sweeps, bumped.num_workers) == (200, 2)
        assert len({config, InferenceConfig(sweeps=100, num_workers=2)}) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sweeps": 0},
            {"num_workers": -1},
            {"shard_threshold": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            InferenceConfig(**kwargs)


class TestGroundingConfig:
    def test_defaults(self):
        config = GroundingConfig()
        assert config.max_iterations is None
        assert config.apply_constraints
        assert not config.semi_naive


class TestBuildBackend:
    def test_default_is_single_node(self):
        assert isinstance(build_backend(), SingleNodeBackend)

    def test_string_shorthand(self):
        assert isinstance(build_backend("single"), SingleNodeBackend)
        assert isinstance(build_backend("mpp"), MPPBackend)

    def test_mpp_tuning_flows_through(self):
        backend = build_backend(
            BackendConfig(
                kind="mpp",
                mpp=MPPConfig(num_segments=3, num_workers=0, policy="naive"),
                name="tuned",
            )
        )
        assert backend.nseg == 3
        assert backend.num_workers == 0
        assert not backend.use_matviews
        assert backend.name == "tuned"

    def test_existing_backend_passthrough(self):
        backend = SingleNodeBackend()
        assert build_backend(backend) is backend

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            build_backend(42)
        with pytest.raises(ValueError):
            build_backend("oracle")
