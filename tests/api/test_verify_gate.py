"""The runtime plan-verify gate end to end: grounding results are
bit-identical with the gate on or off, on every planner path."""

import pytest

from repro import BackendConfig, ExpansionSession, GroundingConfig, MPPConfig
from repro.datasets import paper_kb

BACKENDS = {
    "serial": lambda verify: BackendConfig(kind="single", verify_plans=verify),
    "mpp-adaptive": lambda verify: BackendConfig(
        kind="mpp",
        verify_plans=verify,
        mpp=MPPConfig(num_segments=4, plan="adaptive"),
    ),
    "mpp-static": lambda verify: BackendConfig(
        kind="mpp",
        verify_plans=verify,
        mpp=MPPConfig(num_segments=4, plan="static"),
    ),
}


def ground(config):
    with ExpansionSession(
        paper_kb(with_constraints=True),
        backend=config,
        grounding=GroundingConfig(analysis="off"),
    ) as session:
        result = session.ground()
        facts = sorted(
            (f.relation, f.subject, f.object) for f in session.probkb.all_facts()
        )
        factors = sorted(session.probkb.factor_rows())
        return result.total_new_facts, facts, factors


@pytest.mark.parametrize("name", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_grounding_is_bit_identical_with_the_gate_on(name):
    make = BACKENDS[name]
    verified = ground(make(True))
    unverified = ground(make(False))
    assert verified == unverified
    new_facts, facts, factors = verified
    assert new_facts > 0 and facts and factors


def test_gate_env_var_drives_the_session(monkeypatch):
    monkeypatch.setenv("PROBKB_VERIFY_PLANS", "1")
    with ExpansionSession(
        paper_kb(), grounding=GroundingConfig(analysis="off")
    ) as session:
        session.ground()  # every executed plan verifies clean, or raises
        assert session.probkb.backend.db.verify_plans is True


def test_session_verify_plans_reports_clean():
    with ExpansionSession(
        paper_kb(),
        backend=BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=4)),
    ) as session:
        reports = session.verify_plans()
        assert reports and all(r.ok for r in reports)
        assert any(r.plan_name.endswith("[static]") for r in reports)
