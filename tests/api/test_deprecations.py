"""The legacy call paths: still working, now warning.

Each shim must (a) emit exactly a DeprecationWarning and (b) behave
identically to the config-object spelling it deprecates.
"""

import warnings

import pytest

from repro import ProbKB
from repro.api import BackendConfig, InferenceConfig, MPPConfig
from repro.core import MPPBackend, SingleNodeBackend, make_backend
from repro.serve import ServiceConfig, load_snapshot, save_snapshot
from repro.datasets.paper_example import paper_kb


def test_make_backend_warns_but_resolves():
    with pytest.warns(DeprecationWarning, match="make_backend"):
        backend = make_backend("mpp", nseg=3, use_matviews=False)
    assert isinstance(backend, MPPBackend)
    assert backend.nseg == 3
    assert not backend.use_matviews
    with pytest.warns(DeprecationWarning):
        assert isinstance(make_backend("single"), SingleNodeBackend)
    existing = SingleNodeBackend()
    with pytest.warns(DeprecationWarning):
        assert make_backend(existing) is existing
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        make_backend("oracle")


class TestProbKBInitShims:
    def test_nseg_keyword_folds_into_config(self):
        with pytest.warns(DeprecationWarning, match="BackendConfig"):
            system = ProbKB(paper_kb(), backend="mpp", nseg=2, use_matviews=False)
        assert system.backend.nseg == 2
        assert not system.backend.use_matviews
        assert system.backend_config.mpp.num_segments == 2
        assert system.backend_config.mpp.policy == "naive"

    def test_grounding_keywords_fold_into_config(self):
        with pytest.warns(DeprecationWarning, match="GroundingConfig"):
            system = ProbKB(paper_kb(), apply_constraints=False, semi_naive=True)
        assert not system.grounding_config.apply_constraints
        assert system.grounding_config.semi_naive
        assert not system.grounder.apply_constraints_each_iteration
        assert system.grounder.semi_naive

    def test_string_backend_alone_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = ProbKB(paper_kb(), backend="single")
        assert isinstance(system.backend, SingleNodeBackend)

    def test_bad_backend_type_rejected(self):
        with pytest.raises(TypeError):
            ProbKB(paper_kb(), backend=3.14)


class TestInferShims:
    @pytest.fixture
    def grounded(self):
        system = ProbKB(paper_kb())
        system.ground()
        return system

    def test_keywords_warn_and_behave(self, grounded):
        with pytest.warns(DeprecationWarning, match="InferenceConfig"):
            legacy = grounded.infer(num_sweeps=40, seed=5)
        modern = grounded.infer(InferenceConfig(num_sweeps=40, seed=5))
        assert legacy == modern  # same sweeps + seed => same marginals

    def test_positional_method_string(self, grounded):
        with pytest.warns(DeprecationWarning):
            result = grounded.infer("bp")
        assert result.method == "bp"

    def test_unknown_method_still_value_error(self, grounded):
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            grounded.infer(method="oracle")

    def test_materialize_keywords_warn(self, grounded):
        with pytest.warns(DeprecationWarning, match="InferenceConfig"):
            stored = grounded.materialize_marginals(num_sweeps=30, seed=1)
        assert stored > 0


def test_service_config_sweeps_warns():
    with pytest.warns(DeprecationWarning, match="InferenceConfig"):
        config = ServiceConfig(num_sweeps=64, seed=3)
    assert config.inference == InferenceConfig(sweeps=64, seed=3)
    # legacy attributes stay readable
    assert (config.num_sweeps, config.seed) == (64, 3)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        modern = ServiceConfig(inference=InferenceConfig(sweeps=64))
    assert modern.inference.num_sweeps == 64


def test_load_snapshot_nseg_warns(tmp_path):
    system = ProbKB(paper_kb())
    system.ground()
    path = save_snapshot(system, str(tmp_path / "kb.json"))
    with pytest.warns(DeprecationWarning, match="BackendConfig"):
        warm = load_snapshot(path, backend="mpp", nseg=2)
    assert warm.backend.nseg == 2
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        modern = load_snapshot(
            path,
            backend=BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2)),
        )
    assert modern.fact_count() == warm.fact_count()
