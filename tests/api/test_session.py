"""ExpansionSession facade + typed pipeline results (serial backends)."""

import warnings

import pytest

from repro import ExpansionSession, ProbKB
from repro.api import (
    BackendConfig,
    ConstraintResult,
    GroundingConfig,
    GroundingResult,
    InferenceConfig,
    InferenceResult,
    MPPConfig,
)
from repro.datasets.paper_example import paper_kb


@pytest.fixture
def session():
    with ExpansionSession(paper_kb()) as active:
        yield active


def test_new_api_paths_never_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=2))
        with ExpansionSession(
            paper_kb(),
            backend=config,
            grounding=GroundingConfig(max_iterations=5),
            inference=InferenceConfig(sweeps=50, seed=1),
        ) as session:
            session.ground()
            session.apply_constraints()
            session.infer()
            session.materialize_marginals()
            session.query(min_probability=0.0)


class TestGroundingResult:
    def test_typed_result_fields(self, session):
        result = session.ground()
        assert isinstance(result, GroundingResult)
        assert result.converged
        assert result.rows_touched > 0
        assert result.elapsed_seconds == result.total_seconds > 0
        # every derived row is attributed to an MLN partition
        assert sum(result.per_partition.values()) == sum(
            stats.derived_rows for stats in result.iterations
        )
        assert set(result.per_partition) <= {1, 2, 3, 4, 5, 6}

    def test_max_iterations_comes_from_config(self):
        with ExpansionSession(
            paper_kb(), grounding=GroundingConfig(max_iterations=1)
        ) as session:
            result = session.ground()
        assert len(result.iterations) == 1


class TestConstraintResult:
    def test_is_the_removed_count(self):
        with ExpansionSession(paper_kb(with_constraints=True)) as session:
            session.ground()
            result = session.apply_constraints()
        assert isinstance(result, ConstraintResult)
        assert isinstance(result, int)
        assert result == result.removed == result.rows_touched
        assert result + 0 == int(result)  # arithmetic like the old int
        assert result.elapsed_seconds >= 0.0
        assert sum(result.per_type.values()) == int(result)

    def test_empty_constraints(self, session):
        result = session.apply_constraints()
        assert result == 0
        assert result.per_type == {}


class TestInferenceResult:
    def test_is_the_marginals_dict(self, session):
        session.ground()
        result = session.infer(InferenceConfig(num_sweeps=50, seed=2))
        assert isinstance(result, InferenceResult)
        assert isinstance(result, dict)
        assert result.method == "gibbs"
        assert result.num_sweeps == 50
        assert result.seed == 2
        assert result.elapsed_seconds > 0
        assert result.num_variables > 0
        assert result.num_factors > 0
        assert result.rows_touched == len(result)
        for probability in result.values():
            assert 0.0 <= probability <= 1.0
        # old dict-style consumers still work
        assert session.new_facts(result) == session.new_facts(dict(result))

    def test_session_default_config_used(self):
        with ExpansionSession(
            paper_kb(), inference=InferenceConfig(num_sweeps=25, seed=9)
        ) as session:
            session.ground()
            result = session.infer()
        assert (result.num_sweeps, result.seed) == (25, 9)


class TestSessionLifecycle:
    def test_executor_info_serial(self, session):
        assert session.executor_info()["mode"] == "single-node"

    def test_query_and_counts(self, session):
        session.ground()
        assert session.fact_count() == len(session.all_facts())
        everything = session.query()
        assert len(everything) == session.fact_count()
        assert session.generation >= 1

    def test_serve_reports_executor(self, session):
        session.ground()
        service = session.serve()
        stats = service.stats()
        assert stats["executor"]["mode"] == "single-node"
        assert stats["executor"]["workers"] == 0

    def test_snapshot_round_trip(self, session, tmp_path):
        session.ground()
        path = session.save_snapshot(str(tmp_path / "kb.json"))
        warm = ExpansionSession.from_snapshot(path)
        assert warm.fact_count() == session.fact_count()
        warm.close()

    def test_probkb_context_manager(self):
        with ProbKB(paper_kb()) as system:
            system.ground()
            assert system.fact_count() > 0
