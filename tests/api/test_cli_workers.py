"""CLI surface of the executor config: --mpp-workers and stats."""

import pytest

from repro.cli import build_parser, _backend_config, _build_system
from repro.relational import resolve_executor


@pytest.fixture(scope="module")
def kb_dir(tmp_path_factory):
    from repro.cli import main

    directory = str(tmp_path_factory.mktemp("kb"))
    assert main(["generate", "--out", directory, "--people", "40", "--seed", "3"]) == 0
    return directory


@pytest.mark.parametrize("command", ["ground", "infer", "serve"])
def test_parser_accepts_mpp_workers(command):
    parser = build_parser()
    extra = ["--kb", "somewhere"] if command != "serve" else ["--kb", "somewhere"]
    args = parser.parse_args(
        [command, *extra, "--backend", "mpp", "--nseg", "4", "--mpp-workers", "3"]
    )
    assert args.mpp_workers == 3
    config = _backend_config(args)
    assert config.kind == "mpp"
    assert config.mpp.num_segments == 4
    assert config.mpp.num_workers == 3


def test_default_is_serial():
    args = build_parser().parse_args(["ground", "--kb", "somewhere"])
    assert args.mpp_workers == 0
    assert _backend_config(args).mpp.num_workers == 0


def test_build_system_uses_configs(kb_dir):
    args = build_parser().parse_args(
        ["ground", "--kb", kb_dir, "--backend", "mpp", "--nseg", "2",
         "--no-constraints", "--iterations", "2"]
    )
    system = _build_system(args)
    assert system.backend.nseg == 2
    assert system.backend_config.mpp.num_workers == 0
    assert not system.grounding_config.apply_constraints
    assert system.grounding_config.max_iterations == 2
    info = system.backend.executor_info()
    assert info == {
        "mode": "serial",
        "segments": 2,
        "workers": 0,
        "degraded": False,
        "plan": "adaptive",
        "engine": resolve_executor(None),
    }
