"""The shipped examples must at least compile; the fast ones also run."""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_files():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_all_examples_present():
    assert len(example_files()) >= 5
    assert "quickstart.py" in example_files()


@pytest.mark.parametrize("name", example_files())
def test_example_compiles(name):
    py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)


@pytest.mark.parametrize(
    "name", ["quickstart.py", "lineage_exploration.py", "incremental_expansion.py"]
)
def test_fast_examples_run(name):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


def test_quickstart_output_mentions_inferred_fact():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "located_in(Brooklyn, New York City)" in completed.stdout
    assert "INFERRED" in completed.stdout
