"""The acceptance gate: repro's own source lints clean.

This is the same check ``make lint-conc`` / CI runs; keeping it as a
test means a concurrency-convention regression fails the tier-1 suite,
not just the lint lane.
"""

from pathlib import Path

from repro.devtools import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_repro_source_is_lint_clean():
    report = lint_paths([SRC])
    assert report.files_scanned > 50
    assert report.findings == (), "\n" + report.render()
