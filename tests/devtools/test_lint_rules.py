"""Per-rule fixture corpus: each RC code has a file that triggers it."""

from pathlib import Path

import pytest

from repro.devtools import LintUsageError, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("RC001", FIXTURES / "rc001_guard.py", 2),
    ("RC002", FIXTURES / "rc002_inversion.py", 1),
    ("RC003", FIXTURES / "infer" / "rc003_kernel.py", 4),
    ("RC004", FIXTURES / "rc004_block.py", 1),
    ("RC005", FIXTURES / "rc005_thread.py", 1),
    ("RC006", FIXTURES / "rc006_clock.py", 2),
    ("RC007", FIXTURES / "rc007_unknown.py", 1),
    ("RC008", FIXTURES / "rc008_unused.py", 1),
    ("RC009", FIXTURES / "rc009_plannode.py", 2),
]


@pytest.mark.parametrize(
    "code,fixture,count", RULE_FIXTURES, ids=[c for c, _, _ in RULE_FIXTURES]
)
def test_fixture_triggers_exactly_its_rule(code, fixture, count):
    report = lint_paths([fixture])
    assert {f.code for f in report.findings} == {code}
    assert len(report.findings) == count
    for finding in report.findings:
        assert finding.path == str(fixture)
        assert finding.line > 0
        assert finding.render().startswith(f"{finding.path}:{finding.line}: {code}")


def test_clean_fixture_has_no_findings():
    report = lint_paths([FIXTURES / "clean.py"])
    assert report.findings == ()
    assert report.files_scanned == 1


def test_directory_scan_covers_the_whole_corpus():
    report = lint_paths([FIXTURES])
    assert set(report.codes) == {f"RC00{i}" for i in range(1, 10)}


def test_rc009_is_silent_inside_the_planners(tmp_path):
    planner_dir = tmp_path / "mpp"
    planner_dir.mkdir()
    source = (
        "from repro.mpp.plannodes import PhysicalNode\n"
        "\n"
        "def plan():\n"
        "    return PhysicalNode('Seq Scan', 'on TP')\n"
    )
    for allowed in ("static_planner.py", "cluster.py"):
        path = planner_dir / allowed
        path.write_text(source)
        assert lint_paths([path]).findings == ()
    elsewhere = planner_dir / "workers.py"
    elsewhere.write_text(source)
    (finding,) = lint_paths([elsewhere]).findings
    assert finding.code == "RC009"
    assert "planner" in finding.message


def test_rc001_names_the_lock_and_line():
    report = lint_paths([FIXTURES / "rc001_guard.py"])
    messages = [f.message for f in report.findings]
    assert all("self._lock" in message for message in messages)
    assert sorted(f.line for f in report.findings) == [22, 25]


def test_rc002_message_spells_out_the_cycle():
    (finding,) = lint_paths([FIXTURES / "rc002_inversion.py"]).findings
    assert "debit_lock" in finding.message and "credit_lock" in finding.message
    assert "->" in finding.message


def test_suppression_silences_a_finding_and_counts_as_used():
    source = (
        "import time\n"
        "\n"
        "def f(started):\n"
        "    return time.time() - started  # lint: disable=RC006 legacy api\n"
    )
    assert lint_source(source).findings == ()


def test_suppression_only_applies_to_its_own_line():
    source = (
        "import time\n"
        "\n"
        "def f(started):  # lint: disable=RC006\n"
        "    return time.time() - started\n"
    )
    codes = [f.code for f in lint_source(source).findings]
    # the finding survives AND the misplaced suppression is reported unused
    assert codes == ["RC008", "RC006"] or sorted(codes) == ["RC006", "RC008"]


def test_hygiene_codes_are_unsuppressible():
    source = "x = 1  # lint: disable=RC999,RC007,RC008\n"
    codes = sorted(f.code for f in lint_source(source).findings)
    # RC999 -> RC007; RC007/RC008 silence nothing -> RC008 each, and the
    # suppression cannot silence its own hygiene findings
    assert codes == ["RC007", "RC008", "RC008"]


def test_multiple_codes_in_one_comment():
    source = (
        "import time\n"
        "\n"
        "def f(started):\n"
        "    return time.time() > started  # lint: disable=RC001,RC006\n"
    )
    codes = [f.code for f in lint_source(source).findings]
    assert codes == ["RC008"]  # RC006 used, RC001 unused


def test_holds_annotation_counts_as_guarded():
    source = (
        "import threading\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.items = []  # guarded by: self._lock\n"
        "\n"
        "    # holds: self._lock\n"
        "    def compact(self):\n"
        "        self.items.sort()\n"
    )
    assert lint_source(source).findings == ()


def test_derived_context_manager_matches_the_guard():
    source = (
        "import threading\n"
        "\n"
        "class RW:\n"
        "    def write_locked(self):\n"
        "        raise NotImplementedError\n"
        "\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self.lock = RW()\n"
        "        self.facts = []  # guarded by: self.lock\n"
        "\n"
        "    def add(self, fact):\n"
        "        with self.lock.write_locked():\n"
        "            self.facts.append(fact)\n"
    )
    assert lint_source(source).findings == ()


def test_missing_path_is_a_usage_error():
    with pytest.raises(LintUsageError):
        lint_paths([FIXTURES / "no_such_file.py"])


def test_syntax_error_is_a_usage_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(LintUsageError):
        lint_paths([bad])
