"""The RC-code registry and report plumbing."""

import json

import pytest

from repro.devtools import (
    ERROR,
    RC_CODES,
    SEVERITIES,
    UNSUPPRESSIBLE,
    WARNING,
    LintFinding,
    LintReport,
)


def test_registry_is_complete_and_well_formed():
    assert set(RC_CODES) == {f"RC00{i}" for i in range(1, 10)}
    for code, (severity, title) in RC_CODES.items():
        assert severity in SEVERITIES
        assert title
    assert UNSUPPRESSIBLE == {"RC007", "RC008"}


def test_finding_defaults_severity_from_registry():
    finding = LintFinding(code="RC001", message="m", path="p.py", line=3)
    assert finding.severity == ERROR
    warning = LintFinding(code="RC004", message="m", path="p.py", line=3)
    assert warning.severity == WARNING
    assert finding.title == RC_CODES["RC001"][1]


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        LintFinding(code="RC999", message="m", path="p.py", line=1)
    with pytest.raises(ValueError):
        LintFinding(code="RC001", message="m", path="p.py", line=1, severity="fatal")


def test_report_partitions_and_serializes():
    findings = (
        LintFinding(code="RC001", message="a", path="x.py", line=1),
        LintFinding(code="RC006", message="b", path="x.py", line=2),
    )
    report = LintReport(findings=findings, files_scanned=1)
    assert len(report) == 2
    assert [f.code for f in report.errors] == ["RC001"]
    assert [f.code for f in report.warnings] == ["RC006"]
    assert report.by_code("RC006")[0].message == "b"
    assert report.codes == ["RC001", "RC006"]
    assert "1 errors, 1 warnings across 1 files" == report.summary()

    payload = json.loads(report.to_json())
    assert payload["errors"] == 1 and payload["warnings"] == 1
    assert payload["findings"][0] == {
        "code": "RC001",
        "severity": "error",
        "path": "x.py",
        "line": 1,
        "message": "a",
    }
    rendered = report.render().splitlines()
    assert rendered[0] == "x.py:1: RC001 error a"
    assert rendered[-1] == report.summary()
