"""``repro devtools lint``: text/JSON output and documented exit codes."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_file_exits_zero(capsys):
    code = main(["devtools", "lint", str(FIXTURES / "clean.py")])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 errors, 0 warnings across 1 files" in out


def test_findings_exit_one_with_locations(capsys):
    fixture = FIXTURES / "rc006_clock.py"
    code = main(["devtools", "lint", str(fixture)])
    assert code == 1
    out = capsys.readouterr().out
    assert f"{fixture}:" in out
    assert "RC006" in out


def test_json_output_is_machine_readable(capsys):
    code = main(["devtools", "lint", "--json", str(FIXTURES / "rc001_guard.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert {f["code"] for f in payload["findings"]} == {"RC001"}
    assert all(f["severity"] == "error" for f in payload["findings"])


def test_bad_path_exits_two(capsys):
    code = main(["devtools", "lint", str(FIXTURES / "missing.py")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_multiple_paths_merge_into_one_report(capsys):
    code = main(
        [
            "devtools",
            "lint",
            str(FIXTURES / "rc007_unknown.py"),
            str(FIXTURES / "rc008_unused.py"),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "RC007" in out and "RC008" in out
    assert "across 2 files" in out
