"""The runtime lock sanitizer: the dynamic half of RC001/RC002."""

import threading

import pytest

from repro.devtools import (
    GuardedByViolation,
    LockOrderInversion,
    SanitizedLock,
    enabled,
    get_sanitizer,
    make_lock,
)
from repro.serve.engine import RWLock


@pytest.fixture
def sanitize(monkeypatch):
    monkeypatch.setenv("PROBKB_SANITIZE", "1")
    sanitizer = get_sanitizer()
    sanitizer.reset()
    yield sanitizer
    sanitizer.reset()


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("PROBKB_SANITIZE", raising=False)
    assert not enabled()
    assert isinstance(make_lock("x"), type(threading.Lock()))


def test_enabled_hands_out_sanitized_locks(sanitize):
    lock = make_lock("x")
    assert isinstance(lock, SanitizedLock)
    with lock:
        assert lock.locked()
    assert not lock.locked()


def test_seeded_lock_order_inversion_raises(sanitize):
    a = SanitizedLock("a")
    b = SanitizedLock("b")
    with a:
        with b:
            pass
    # the reverse order on the same (or any) thread is the deadlock
    # recipe: the sanitizer raises instead of letting a real
    # interleaving block forever
    with b:
        with pytest.raises(LockOrderInversion) as excinfo:
            a.acquire()
    assert "a" in str(excinfo.value) and "b" in str(excinfo.value)


def test_transitive_inversion_detected(sanitize):
    a, b, c = SanitizedLock("a"), SanitizedLock("b"), SanitizedLock("c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(LockOrderInversion):
            a.acquire()


def test_consistent_order_never_raises(sanitize):
    a = SanitizedLock("a")
    b = SanitizedLock("b")
    for _ in range(3):
        with a:
            with b:
                pass


def test_reacquire_raises_instead_of_self_deadlock(sanitize):
    lock = SanitizedLock("outer")
    with lock:
        with pytest.raises(LockOrderInversion, match="re-acquiring"):
            lock.acquire()


def test_guarded_by_violation(sanitize):
    lock = SanitizedLock("QueryCache._lock")

    class Cache:
        def __init__(self):
            self.entries = {}

        def evict(self):
            # the '# guarded by:' contract, asserted dynamically
            sanitize.assert_held(lock, owner="Cache.entries")
            self.entries.clear()

    cache = Cache()
    with pytest.raises(GuardedByViolation) as excinfo:
        cache.evict()
    assert "QueryCache._lock" in str(excinfo.value)
    with lock:
        cache.evict()  # held: no violation


def test_nonblocking_probe_skips_order_checks(sanitize):
    a = SanitizedLock("a")
    b = SanitizedLock("b")
    with a:
        with b:
            pass
    with b:
        # a probe must not raise (Condition._is_owned probes this way)
        assert a.acquire(blocking=False)
        a.release()


def test_condition_compatibility(sanitize):
    lock = make_lock("cond")
    ready = threading.Condition(lock)
    flag = []

    def waiter():
        with ready:
            while not flag:
                ready.wait(1.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    with ready:
        flag.append(True)
        ready.notify_all()
    thread.join(5.0)
    assert not thread.is_alive()


def test_cross_thread_inversion_detected(sanitize):
    a = SanitizedLock("a")
    b = SanitizedLock("b")

    def forward():
        with a:
            with b:
                pass

    thread = threading.Thread(target=forward)
    thread.start()
    thread.join(5.0)
    # the edge recorded by the other thread trips this one
    with b:
        with pytest.raises(LockOrderInversion):
            a.acquire()


def test_rwlock_shadow_participates_in_ordering(sanitize):
    rw = RWLock(name="KBService.lock")
    inner = SanitizedLock("QueryCache._lock")
    # the service order: RWLock first, then the cache lock
    with rw.read_locked():
        with inner:
            pass
    with rw.write_locked():
        with inner:
            pass
    # the inverted order must raise before it can deadlock
    with inner:
        with pytest.raises(LockOrderInversion):
            rw.acquire_write()
    # and the RWLock's internal bookkeeping lock never forms a false
    # edge against its own shadow token
    with rw.write_locked():
        pass


def test_edges_snapshot_names_locks(sanitize):
    a = SanitizedLock("alpha")
    b = SanitizedLock("beta")
    with a:
        with b:
            pass
    assert sanitize.edges() == {"alpha": ("beta",)}
