"""RC001 fixture: guarded field mutated outside its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded by: self._lock
        self.log = []  # guarded by: self._lock

    def bump_locked(self):
        with self._lock:
            self.value += 1
            self.log.append(self.value)

    # holds: self._lock
    def _record(self):
        self.log.append(self.value)

    def bump_racy(self):
        self.value += 1  # line 22: RC001

    def clear_racy(self):
        self.log.clear()  # line 25: RC001
