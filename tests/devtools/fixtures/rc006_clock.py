"""RC006 fixture: wall-clock arithmetic where monotonic time belongs."""

import time


def elapsed_racy(started):
    return time.time() - started  # RC006


def deadline_racy(deadline):
    return time.time() > deadline  # RC006


def timestamp_ok():
    return time.time()  # plain timestamp: fine


def elapsed_ok(started):
    return time.monotonic() - started  # fine
