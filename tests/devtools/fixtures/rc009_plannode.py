"""RC009 fixture: hand-built physical plans bypass the plan verifier."""

from repro.mpp.plannodes import PhysicalNode


def handcraft_plan():
    scan = PhysicalNode("Seq Scan", "on TP")
    return PhysicalNode("Gather Motion", "to seg0", children=[scan])
