"""RC008 fixture: a valid suppression that silences nothing."""


def f():
    return 1  # lint: disable=RC006
