"""RC002 fixture: two call paths take the same locks in opposite order."""

import threading


class Transfer:
    def __init__(self):
        self.debit_lock = threading.Lock()
        self.credit_lock = threading.Lock()

    def forward(self):
        with self.debit_lock:
            with self.credit_lock:
                pass

    def backward(self):
        with self.credit_lock:
            self._locked_debit()

    def _locked_debit(self):
        with self.debit_lock:
            pass
