"""RC004 fixture: unbounded blocking calls inside a consumer loop."""

import queue


class Consumer:
    def __init__(self):
        self.inbox = queue.Queue()
        self.done = False

    def run(self):
        try:
            while not self.done:
                item = self.inbox.get()  # no timeout: RC004
                item()
        except Exception:
            self.done = True

    def run_bounded(self):
        try:
            while not self.done:
                try:
                    item = self.inbox.get(timeout=0.5)  # fine
                except queue.Empty:
                    continue
                item()
        except Exception:
            self.done = True
