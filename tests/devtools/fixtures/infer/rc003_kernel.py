"""RC003 fixture: nondeterminism inside a (pretend) inference kernel.

Lives under a ``fixtures/infer/`` directory on purpose: the rule is
path-scoped to inference/grounding kernels.
"""

import random
import time


def sweep(variables):
    rng = random.Random()  # unseeded: RC003
    jitter = random.random()  # module-level stream: RC003
    start = time.time()  # wall clock in a kernel: RC003
    order = sorted(variables, key=id)  # id-keyed order: RC003
    return rng, jitter, start, order


def seeded_ok(variables, seed):
    rng = random.Random(seed)  # explicitly seeded: allowed
    return [rng.random() for _ in variables]
