"""RC007 fixture: a suppression naming a code that does not exist."""


def f():
    return 1  # lint: disable=RC999
