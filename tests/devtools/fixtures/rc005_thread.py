"""RC005 fixture: a thread target with no exception handler."""

import threading


class Worker:
    def start(self):
        thread = threading.Thread(target=self._run)  # RC005
        thread.start()
        return thread

    def start_guarded(self):
        thread = threading.Thread(target=self._run_guarded)  # fine
        thread.start()
        return thread

    def _run(self):
        self._work()

    def _run_guarded(self):
        try:
            self._work()
        except Exception:
            pass

    def _work(self):
        raise RuntimeError("boom")
