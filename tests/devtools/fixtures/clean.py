"""Clean fixture: the conventions, followed; zero findings expected."""

import threading
import time


class Tidy:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded by: self._lock
        self.started = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.stop = threading.Event()

    def add(self, item):
        with self._lock:
            self.items.append(item)

    # holds: self._lock
    def _compact(self):
        self.items.sort()

    def uptime(self):
        return time.monotonic() - self.started

    def _run(self):
        while not self.stop.is_set():
            try:
                self._tick()
            except Exception:
                continue

    def _tick(self):
        with self._lock:
            self._compact()
