"""Quality control tests: rule cleaning, the evaluation protocol, and
the violation audit."""

import pytest

from repro import GroundingConfig, ProbKB
from repro.core import Atom, HornClause
from repro.datasets import ReVerbSherlockConfig, generate
from repro.quality import (
    AMBIGUOUS_ENTITY,
    INCORRECT_RULE,
    QualityConfig,
    TABLE4_CONFIGS,
    categorize_violations,
    clean_rules,
    cleaned_kb,
    cleaning_report,
    find_violations,
    judge_precision,
    run_quality_experiment,
)


@pytest.fixture(scope="module")
def generated():
    return generate(ReVerbSherlockConfig(seed=4))


def make_rule(name, score):
    return HornClause.make(
        Atom(name, ("x", "y")),
        [Atom("q", ("x", "y"))],
        weight=1.0,
        var_classes={"x": "A", "y": "B"},
        score=score,
    )


class TestRuleCleaning:
    def test_top_theta_by_score(self):
        rules = [make_rule(f"r{i}", score=i / 10) for i in range(1, 11)]
        kept = clean_rules(rules, theta=0.3)
        assert len(kept) == 3
        assert {r.head.relation for r in kept} == {"r10", "r9", "r8"}

    def test_theta_one_keeps_all(self):
        rules = [make_rule(f"r{i}", 0.5) for i in range(5)]
        assert len(clean_rules(rules, 1.0)) == 5

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            clean_rules([], 0.0)
        with pytest.raises(ValueError):
            clean_rules([], 1.5)

    def test_cleaned_kb_preserves_facts(self, generated):
        kb = cleaned_kb(generated.kb, theta=0.2)
        assert len(kb.facts) == len(generated.kb.facts)
        assert len(kb.rules) < len(generated.kb.rules)

    def test_cleaning_report_tracks_rule_precision(self, generated):
        strict = cleaning_report(
            generated.kb.rules, 0.2, generated.rule_is_correct
        )
        loose = cleaning_report(
            generated.kb.rules, 1.0, generated.rule_is_correct
        )
        assert strict["rule_precision"] >= loose["rule_precision"]
        assert strict["rule_recall"] <= loose["rule_recall"]
        # the paper's caveat: scores are imperfect, so strict cleaning
        # still drops some correct rules
        assert strict["rule_recall"] < 1.0


class TestJudgePrecision:
    def test_empty(self, generated):
        assert judge_precision([], generated.judge) == (0.0, 0)

    def test_sampling_cap(self, generated):
        facts = generated.kb.facts[:200]
        _, judged = judge_precision(facts, generated.judge, sample_size=25)
        assert judged == 25

    def test_full_judging(self, generated):
        facts = generated.kb.facts[:50]
        precision, judged = judge_precision(facts, generated.judge)
        assert judged == 50
        assert 0.0 <= precision <= 1.0


class TestQualityExperiment:
    @pytest.fixture(scope="class")
    def results(self, generated):
        configs = [
            QualityConfig(use_constraints=False, theta=1.0),
            QualityConfig(use_constraints=True, theta=1.0),
            QualityConfig(use_constraints=True, theta=0.2),
        ]
        return {
            config.describe(): run_quality_experiment(
                generated, config, max_iterations=8
            )
            for config in configs
        }

    def test_quality_control_improves_precision(self, results):
        assert (
            results["SC no-RC"].overall_precision
            > results["no-SC no-RC"].overall_precision
        )
        assert (
            results["SC RC top 20%"].overall_precision
            > results["no-SC no-RC"].overall_precision
        )

    def test_no_qc_precision_decays_over_iterations(self, results):
        points = results["no-SC no-RC"].points
        assert len(points) >= 3
        assert points[-1].precision < points[0].precision

    def test_cleaning_trades_recall_for_precision(self, results):
        assert (
            results["SC RC top 20%"].total_new_facts
            < results["SC no-RC"].total_new_facts
        )

    def test_curves_are_monotone_in_estimated_correct(self, results):
        for result in results.values():
            series = result.series()
            xs = [x for x, _ in series]
            assert xs == sorted(xs)

    def test_table4_configs_shape(self):
        assert len(TABLE4_CONFIGS) == 6
        labels = [c.describe() for c in TABLE4_CONFIGS]
        assert "no-SC no-RC" in labels and "SC RC top 50%" in labels


class TestViolationAudit:
    @pytest.fixture(scope="class")
    def audited(self, generated):
        system = ProbKB(
            generated.kb, grounding=GroundingConfig(apply_constraints=False)
        )
        system.ground(max_iterations=2)
        return categorize_violations(system, generated)

    def test_violations_found(self, audited):
        assert audited.total > 50

    def test_ambiguity_is_major_source(self, audited):
        """Figure 7(b): ambiguous entities are the largest single
        detected category after rule errors."""
        dist = audited.distribution()
        assert dist[AMBIGUOUS_ENTITY] > 0.15
        assert dist[INCORRECT_RULE] > 0.15

    def test_distribution_sums_to_one(self, audited):
        assert sum(audited.distribution().values()) == pytest.approx(1.0)

    def test_find_violations_without_categorization(self, generated):
        system = ProbKB(
            generated.kb, grounding=GroundingConfig(apply_constraints=False)
        )
        system.ground(max_iterations=1)
        violations = find_violations(system)
        assert violations
        for violation in violations:
            assert len(violation.facts) >= 2

    def test_constraints_remove_all_violations(self, generated):
        system = ProbKB(
            generated.kb, grounding=GroundingConfig(apply_constraints=True)
        )
        system.ground(max_iterations=3)
        assert find_violations(system) == []
