"""The Section 6.2 evaluation protocol's mechanics."""

import pytest

from repro import GroundingConfig, ProbKB
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.quality import (
    CurvePoint,
    QualityConfig,
    QualityRunResult,
    precleaned_kb,
    run_quality_experiment,
)


@pytest.fixture(scope="module")
def generated():
    return generate(ReVerbSherlockConfig(world=WorldConfig(n_people=80), seed=11))


class TestQualityConfig:
    def test_describe_variants(self):
        assert QualityConfig(False, 1.0).describe() == "no-SC no-RC"
        assert QualityConfig(True, 0.2).describe() == "SC RC top 20%"
        assert QualityConfig(True, 1.0, label="custom").describe() == "custom"


class TestRunResult:
    def make_result(self):
        result = QualityRunResult(config=QualityConfig(True, 1.0))
        result.points = [
            CurvePoint(1, 100, 100, 0.8, 80.0),
            CurvePoint(2, 50, 50, 0.6, 110.0),
        ]
        result.total_new_facts = 150
        return result

    def test_estimated_correct_is_cumulative(self):
        assert self.make_result().estimated_correct == 110.0

    def test_overall_precision(self):
        assert self.make_result().overall_precision == pytest.approx(110 / 150)

    def test_series(self):
        assert self.make_result().series() == [(80.0, 0.8), (110.0, 0.6)]

    def test_empty(self):
        empty = QualityRunResult(config=QualityConfig(False, 1.0))
        assert empty.estimated_correct == 0.0
        assert empty.overall_precision == 0.0


class TestProtocol:
    def test_sampled_estimation_close_to_exact(self, generated):
        config = QualityConfig(use_constraints=True, theta=0.5)
        exact = run_quality_experiment(generated, config, max_iterations=6)
        sampled = run_quality_experiment(
            generated, config, max_iterations=6, sample_size=25, seed=1
        )
        assert sampled.total_new_facts == exact.total_new_facts
        # 25-sample estimate is noisy but in the same region
        assert sampled.overall_precision == pytest.approx(
            exact.overall_precision, abs=0.25
        )

    def test_explosion_cap_stops_early(self, generated):
        config = QualityConfig(use_constraints=False, theta=1.0)
        capped = run_quality_experiment(
            generated, config, max_iterations=12, explosion_cap=100
        )
        assert capped.exploded

    def test_deterministic(self, generated):
        config = QualityConfig(use_constraints=True, theta=0.5)
        first = run_quality_experiment(generated, config, max_iterations=5)
        second = run_quality_experiment(generated, config, max_iterations=5)
        assert first.series() == second.series()


class TestPrecleanedKb:
    def test_removes_violating_facts(self, generated):
        cleaned = precleaned_kb(generated.kb)
        assert len(cleaned.facts) < len(generated.kb.facts)
        assert len(cleaned.rules) == len(generated.kb.rules)

    def test_noop_without_constraints(self, generated):
        from repro.core import KnowledgeBase

        bare = KnowledgeBase(
            classes=generated.kb.classes,
            relations=generated.kb.relations.values(),
            facts=generated.kb.facts,
            rules=generated.kb.rules,
            constraints=[],
            validate=False,
        )
        assert precleaned_kb(bare) is bare

    def test_cleaned_kb_has_no_initial_violations(self, generated):
        from repro import ProbKB
        from repro.quality import find_violations

        cleaned = precleaned_kb(generated.kb)
        system = ProbKB(cleaned, grounding=GroundingConfig(apply_constraints=False))
        assert find_violations(system) == []
