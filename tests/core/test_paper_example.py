"""End-to-end grounding of the paper's Table 1 example, validated
against the expected contents of Figure 3 on every backend."""

import pytest

from repro import InferenceConfig, ProbKB, TuffyT
from repro.core import MPPBackend, SingleNodeBackend

from .paper_example import EXPECTED_CLOSURE, EXPECTED_FACTORS, paper_kb

BACKENDS = {
    "single": lambda: SingleNodeBackend(),
    "mpp": lambda: MPPBackend(nseg=4, use_matviews=True),
    "mpp-naive": lambda: MPPBackend(nseg=4, use_matviews=False),
}


def fact_triple(fact):
    return (fact.relation, fact.subject, fact.object)


@pytest.fixture(params=sorted(BACKENDS))
def system(request):
    return ProbKB(paper_kb(), backend=BACKENDS[request.param]())


def test_closure_matches_figure3(system):
    result = system.ground()
    assert result.converged
    assert {fact_triple(f) for f in system.all_facts()} == EXPECTED_CLOSURE


def test_closure_reached_in_one_productive_iteration(system):
    """Algorithm 1 applies *all* partitions each iteration, so both the
    M1 facts and the born_in-derived located_in fact arrive in iteration
    1 (the paper's Example 4 narrates M1 and M3 separately for clarity,
    but notes all M_i are applied each iteration)."""
    result = system.ground()
    productive = [it for it in result.iterations if it.new_facts > 0]
    assert len(productive) == 1
    assert productive[0].new_facts == 5
    # iteration 2 re-derives located_in via live_in but adds nothing new
    assert len(result.iterations) == 2 and result.converged


def test_factors_match_figure3(system):
    system.ground()
    by_id = {row[0]: fact_triple(system.rkb.decode_fact(row))
             for row in system.backend.query(__import__("repro.relational", fromlist=["Scan"]).Scan("TP")).rows}
    factors = set()
    for i1, i2, i3, w in system.factor_rows():
        body = frozenset(by_id[i] for i in (i2, i3) if i is not None)
        factors.add((by_id[i1], body, round(w, 2)))
    assert factors == EXPECTED_FACTORS


def test_factor_count_is_eight(system):
    result = system.ground()
    assert result.factors == len(EXPECTED_FACTORS)
    assert system.factor_count() == len(EXPECTED_FACTORS)


def test_tuffy_t_derives_identical_facts():
    """Tuffy-T (per-rule queries) and ProbKB (batch) must agree."""
    probkb = ProbKB(paper_kb(), backend="single")
    probkb.ground()
    tuffy = TuffyT(paper_kb())
    tuffy.run()
    assert {fact_triple(f) for f in tuffy.all_facts()} == EXPECTED_CLOSURE
    assert tuffy.fact_count() == probkb.fact_count()


def test_tuffy_t_factors_match():
    tuffy = TuffyT(paper_kb())
    tuffy.run()
    by_id = {}
    for _fact_obj in tuffy.all_facts():
        pass  # ids not exposed; compare counts instead
    assert tuffy.db.table("TF").rows
    assert len(tuffy.db.table("TF")) == len(EXPECTED_FACTORS)


def test_tuffy_uses_many_more_statements():
    probkb = ProbKB(paper_kb(), backend="single")
    probkb.ground(max_iterations=2)
    tuffy = TuffyT(paper_kb())
    tuffy.run(max_iterations=2)
    # 6 rules -> only 2 nonempty partitions for ProbKB
    assert probkb.rkb.nonempty_partitions == [1, 3]


def test_marginal_inference_end_to_end():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    marginals = system.infer(InferenceConfig(num_sweeps=3000, seed=3))
    probabilities = {fact_triple(f): p for f, p in marginals.items()}
    # exact marginals (see repro.infer.exact): born_in(RG, NYC) = 0.511,
    # located_in(Br, NYC) = 0.556 — Gibbs should land close
    assert probabilities[("born_in", "Ruth Gruber", "New York City")] == pytest.approx(
        0.511, abs=0.05
    )
    assert probabilities[
        ("located_in", "Brooklyn", "New York City")
    ] == pytest.approx(0.556, abs=0.05)


def test_generated_sql_runs_on_sqlite():
    """The emitted SQL must be real SQL: run Query 1-1 under sqlite3
    and compare with our engine's output."""
    from repro.core import ground_atoms_plan
    from repro.relational import SqliteMirror, to_sql

    system = ProbKB(paper_kb(), backend="single")
    plan = ground_atoms_plan(1, system.backend, mln_alias="M1")
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP", "M1"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_generated_sql_query13_matches_paper_shape():
    system = ProbKB(paper_kb(), backend="single")
    sql = system.generated_sql()["Query 1-3"]
    assert "M3" in sql and "T2" in sql and "T3" in sql
    assert "T2.x = T3.x" in sql
