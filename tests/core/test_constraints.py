"""Semantic/functional constraint application (Query 3, Section 5)."""


from repro import (
    Fact,
    FunctionalConstraint,
    KnowledgeBase,
    ProbKB,
    Relation,
    TYPE_I,
    TYPE_II,
)
from repro.core import MPPBackend


def kb_with_violations(constraints):
    classes = {
        "Person": {"mandel", "ann"},
        "City": {"berlin", "baltimore", "paris", "rome"},
        "Country": {"germany", "france"},
    }
    relations = [
        Relation("born_in", "Person", "City"),
        Relation("capital_of", "City", "Country"),
        Relation("live_in", "Person", "City"),
    ]
    facts = [
        # mandel violates Type I born_in (two cities)
        Fact("born_in", "mandel", "Person", "berlin", "City", 0.9),
        Fact("born_in", "mandel", "Person", "baltimore", "City", 0.8),
        Fact("born_in", "ann", "Person", "paris", "City", 0.9),
        # germany violates Type II capital_of (two capitals)
        Fact("capital_of", "berlin", "City", "germany", "Country", 0.9),
        Fact("capital_of", "baltimore", "City", "germany", "Country", 0.6),
        Fact("capital_of", "paris", "City", "france", "Country", 0.9),
        # pseudo-functional live_in with degree 2: two is fine
        Fact("live_in", "ann", "Person", "paris", "City", 0.9),
        Fact("live_in", "ann", "Person", "rome", "City", 0.7),
    ]
    return KnowledgeBase(
        classes=classes, relations=relations, facts=facts, constraints=constraints
    )


def surviving(system):
    return {(f.relation, f.subject, f.object) for f in system.all_facts()}


def test_type_i_violation_removes_subject_facts():
    kb = kb_with_violations([FunctionalConstraint("born_in", arg=TYPE_I)])
    system = ProbKB(kb, backend="single")
    removed = system.apply_constraints()
    assert removed == 2
    remaining = surviving(system)
    assert ("born_in", "mandel", "berlin") not in remaining
    assert ("born_in", "mandel", "baltimore") not in remaining
    assert ("born_in", "ann", "paris") in remaining


def test_type_ii_violation_removes_object_facts():
    kb = kb_with_violations([FunctionalConstraint("capital_of", arg=TYPE_II)])
    system = ProbKB(kb, backend="single")
    removed = system.apply_constraints()
    assert removed == 2
    remaining = surviving(system)
    assert ("capital_of", "berlin", "germany") not in remaining
    assert ("capital_of", "paris", "france") in remaining


def test_pseudo_functional_degree_tolerates_up_to_delta():
    kb = kb_with_violations([FunctionalConstraint("live_in", arg=TYPE_I, degree=2)])
    system = ProbKB(kb, backend="single")
    assert system.apply_constraints() == 0

    kb = kb_with_violations([FunctionalConstraint("live_in", arg=TYPE_I, degree=1)])
    system = ProbKB(kb, backend="single")
    # Query 3 greedily removes ALL facts of the violating entity (ann),
    # including her born_in fact — 3 rows, not just the 2 live_in rows
    assert system.apply_constraints() == 3


def test_constraints_apply_on_mpp_backend():
    kb = kb_with_violations(
        [
            FunctionalConstraint("born_in", arg=TYPE_I),
            FunctionalConstraint("capital_of", arg=TYPE_II),
        ]
    )
    single = ProbKB(kb_with_violations(kb.constraints), backend="single")
    mpp = ProbKB(kb, backend=MPPBackend(nseg=3))
    assert single.apply_constraints() == mpp.apply_constraints() == 4
    assert surviving(single) == surviving(mpp)


def test_no_constraints_is_noop():
    kb = kb_with_violations([])
    system = ProbKB(kb, backend="single")
    assert system.apply_constraints() == 0
    assert len(surviving(system)) == 8


def test_constraint_grouping_is_per_class_pair():
    """A person born in a City and (separately typed) in a Country does
    not violate: GROUP BY includes C2 (Section 5.4's Query 3)."""
    classes = {"Person": {"ann"}, "City": {"paris"}, "Country": {"france"}}
    relations = [Relation("born_in", "Person", "City")]
    facts = [
        Fact("born_in", "ann", "Person", "paris", "City", 0.9),
        Fact("born_in", "ann", "Person", "france", "Country", 0.9),
    ]
    kb = KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        constraints=[FunctionalConstraint("born_in", arg=TYPE_I)],
    )
    system = ProbKB(kb, backend="single")
    assert system.apply_constraints() == 0
