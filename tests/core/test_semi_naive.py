"""Semi-naive (delta) grounding: identical closure, less work."""

import pytest

from repro import GroundingConfig, ProbKB
from repro.core import MPPBackend

from .paper_example import EXPECTED_CLOSURE, paper_kb
from .test_grounding_oracle import random_setup

DELTA = GroundingConfig(semi_naive=True)


def triples(system):
    return {(f.relation, f.subject, f.object) for f in system.all_facts()}


def test_semi_naive_matches_naive_on_paper_example():
    naive = ProbKB(paper_kb(), backend="single")
    naive.ground()
    delta = ProbKB(paper_kb(), grounding=DELTA)
    delta.ground()
    assert triples(delta) == triples(naive) == EXPECTED_CLOSURE


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_semi_naive_matches_naive_on_random_kbs(seed):
    kb, _, _ = random_setup(seed)
    naive = ProbKB(kb, backend="single")
    naive.ground(max_iterations=30)
    delta = ProbKB(kb, grounding=DELTA)
    delta.ground(max_iterations=30)
    assert triples(delta) == triples(naive)
    assert delta.factor_count() == naive.factor_count()


def test_semi_naive_on_mpp_backend():
    kb, _, _ = random_setup(1)
    single = ProbKB(kb, grounding=DELTA)
    single.ground(max_iterations=30)
    mpp = ProbKB(kb, backend=MPPBackend(nseg=4), grounding=DELTA)
    mpp.ground(max_iterations=30)
    assert triples(mpp) == triples(single)


def test_semi_naive_scans_fewer_rows():
    """The point of the optimization: later iterations only join the
    delta, so total scanned row volume drops."""
    kb, _, _ = random_setup(2, n_facts=120, n_rules=10)
    naive = ProbKB(kb, backend="single")
    naive.ground(max_iterations=30)
    delta = ProbKB(kb, grounding=DELTA)
    delta.ground(max_iterations=30)
    naive_work = naive.backend.db.clock.rows_probed
    delta_work = delta.backend.db.clock.rows_probed
    assert delta_work < naive_work


def test_semi_naive_with_constraints():
    """Deleted facts leave the delta too: the closure under quality
    control matches the naive run."""
    from repro.datasets import ReVerbSherlockConfig, generate
    from repro.datasets.world import WorldConfig

    generated = generate(ReVerbSherlockConfig(world=WorldConfig(n_people=80), seed=3))
    naive = ProbKB(generated.kb, grounding=GroundingConfig(apply_constraints=True))
    naive.ground(max_iterations=8)
    delta = ProbKB(
        generated.kb,
        grounding=GroundingConfig(apply_constraints=True, semi_naive=True),
    )
    delta.ground(max_iterations=8)
    assert triples(delta) == triples(naive)
