"""The ProbKB facade: backends, inference plumbing, results access."""

import pytest

from repro import BackendConfig, InferenceConfig, MPPConfig, ProbKB
from repro.core import MPPBackend, SingleNodeBackend, build_backend

from .paper_example import paper_kb


def test_build_backend_resolution():
    assert isinstance(build_backend("single"), SingleNodeBackend)
    mpp = build_backend(
        BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=3, policy="naive"))
    )
    assert isinstance(mpp, MPPBackend)
    assert mpp.nseg == 3 and not mpp.use_matviews
    existing = SingleNodeBackend()
    assert build_backend(existing) is existing
    with pytest.raises(ValueError):
        build_backend("oracle")


def test_all_vs_inferred_facts():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    all_facts = system.all_facts()
    inferred = system.inferred_facts()
    assert len(all_facts) == 7
    assert len(inferred) == 5
    assert all(fact.weight is None for fact in inferred)
    extracted = [f for f in all_facts if f.weight is not None]
    assert len(extracted) == 2


def test_new_facts_without_marginals():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    results = system.new_facts()
    assert len(results) == 5
    assert all(probability is None for _, probability in results)


def test_new_facts_with_threshold():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    marginals = system.infer(InferenceConfig(num_sweeps=600, seed=1))
    accepted = system.new_facts(marginals, min_probability=0.5)
    everything = system.new_facts(marginals, min_probability=0.0)
    assert len(accepted) <= len(everything) == 5
    for _, probability in accepted:
        assert probability >= 0.5


def test_bp_inference_method():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    gibbs = system.infer(InferenceConfig(method="gibbs", num_sweeps=3000, seed=2))
    bp = system.infer(InferenceConfig(method="bp"))
    assert set(f.key for f in gibbs) == set(f.key for f in bp)
    for fact, probability in bp.items():
        assert gibbs[fact] == pytest.approx(probability, abs=0.12)


def test_unknown_inference_method():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    with pytest.raises(ValueError):
        system.infer(InferenceConfig(method="magic"))


def test_counts_and_clock():
    system = ProbKB(paper_kb(), backend="single")
    before = system.elapsed_seconds
    system.ground()
    assert system.fact_count() == 7
    assert system.factor_count() == 8
    assert system.elapsed_seconds > before
    assert system.load_seconds > 0


def test_lineage_accessor():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    lineage = system.lineage()
    assert len(lineage.base_facts) == 2
    assert len(lineage.derived_facts()) == 5


def test_grounding_result_aggregates():
    system = ProbKB(paper_kb(), backend="single")
    result = system.ground()
    assert result.total_new_facts == 5
    assert result.total_seconds == pytest.approx(
        result.atoms_seconds + result.factor_seconds
    )
    assert result.load_seconds == system.load_seconds
