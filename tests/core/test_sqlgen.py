"""SQL generation tests: every partition's Query 1-i and 2-i runs under
sqlite3 and agrees with our engine; Query 3 likewise."""

import random

import pytest

from repro import (
    Fact,
    FunctionalConstraint,
    GroundingConfig,
    KnowledgeBase,
    ProbKB,
    Relation,
)
from repro.core import (
    PARTITION_INDEXES,
    apply_constraints_key_plan,
    clause_from_identifier,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)
from repro.relational import SqliteMirror, to_sql


@pytest.fixture(scope="module")
def system():
    """A KB with at least one rule in EVERY partition."""
    rng = random.Random(3)
    entities = [f"e{i}" for i in range(30)]
    relations = [f"r{i}" for i in range(6)]
    facts = []
    seen = set()
    while len(facts) < 150:
        key = (rng.choice(relations), rng.choice(entities), rng.choice(entities))
        if key in seen:
            continue
        seen.add(key)
        facts.append(Fact(key[0], key[1], "T", key[2], "T", round(rng.uniform(0.2, 1), 2)))
    rules = []
    for partition in PARTITION_INDEXES:
        arity = 2 if partition in (1, 2) else 3
        rules.append(
            clause_from_identifier(
                partition,
                tuple(rng.choice(relations) for _ in range(arity - (0 if arity == 2 else 0)))[: arity],
                ("T",) * (2 if partition in (1, 2) else 3),
                weight=round(rng.uniform(0.2, 2), 2),
            )
        )
    kb = KnowledgeBase(
        classes={"T": set(entities)},
        relations=[Relation(r, "T", "T") for r in relations],
        facts=facts,
        rules=rules,
        constraints=[FunctionalConstraint("r0", arg=1, degree=1)],
    )
    return ProbKB(kb, grounding=GroundingConfig(apply_constraints=False))


@pytest.mark.parametrize("partition", PARTITION_INDEXES)
def test_query1_sqlite_conformance(system, partition):
    plan = ground_atoms_plan(partition, system.backend, mln_alias=f"M{partition}")
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP", f"M{partition}"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


@pytest.mark.parametrize("partition", PARTITION_INDEXES)
def test_query2_sqlite_conformance(system, partition):
    plan = ground_factors_plan(partition, system.backend, mln_alias=f"M{partition}")
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP", f"M{partition}"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


@pytest.mark.parametrize("ftype", [1, 2])
def test_query3_sqlite_conformance(system, ftype):
    plan = apply_constraints_key_plan(ftype)
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP", "FC"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_singleton_factor_sql(system):
    plan = singleton_factors_plan(system.backend)
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_guarded_merge_sql_conformance(system):
    """The NOT EXISTS anti-join guard renders to real SQL too."""
    plan = system.rkb.guard_candidates(
        ground_atoms_plan(1, system.backend, mln_alias="M1")
    )
    ours = system.backend.query(plan).sorted_rows()
    with SqliteMirror(system.backend.db, tables=["TP", "M1", "TDel"]) as mirror:
        theirs = mirror.run_sorted(to_sql(plan))
    assert ours == theirs


def test_query_count_per_iteration_is_constant(system):
    """O(k) statements per iteration regardless of rule count."""
    clock = system.backend.db.clock
    system.grounder.ground_atoms_iteration(1)
    before = clock.queries
    system.grounder.ground_atoms_iteration(2)
    per_iteration = clock.queries - before
    # 2 truncates (TNew, TDelta) + |partitions| staged inserts
    # + the delta materialization + the merge: O(k), never O(#rules)
    assert per_iteration == 4 + len(system.rkb.nonempty_partitions)


def test_generated_sql_smoke(system):
    sql = system.generated_sql()
    assert any("JOIN" in text or "FROM" in text for text in sql.values())
    assert "Query 3 (type I subquery)" in sql
    assert "HAVING" in sql["Query 3 (type I subquery)"]
