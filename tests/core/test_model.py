"""KnowledgeBase model tests (Definition 1)."""

import math

import pytest

from repro.core import (
    Atom,
    Fact,
    FunctionalConstraint,
    HornClause,
    KnowledgeBase,
    KnowledgeBaseError,
    Relation,
    TYPE_II,
)


def small_kb():
    return KnowledgeBase(
        classes={"Person": {"ann", "bob"}, "City": {"paris"}},
        relations=[Relation("born_in", "Person", "City")],
        facts=[Fact("born_in", "ann", "Person", "paris", "City", 0.9)],
    )


def test_entities_union_of_classes():
    kb = small_kb()
    assert kb.entities == {"ann", "bob", "paris"}


def test_fact_set_semantics():
    kb = small_kb()
    duplicate = Fact("born_in", "ann", "Person", "paris", "City", 0.5)
    assert not kb.add_fact(duplicate)  # same key, different weight
    assert len(kb.facts) == 1


def test_fact_validation():
    kb = small_kb()
    with pytest.raises(KnowledgeBaseError):
        kb.add_fact(Fact("born_in", "zoe", "Person", "paris", "City", 0.9))
    with pytest.raises(KnowledgeBaseError):
        kb.add_fact(Fact("born_in", "ann", "Nation", "paris", "City", 0.9))


def test_validation_can_be_disabled():
    kb = KnowledgeBase(
        classes={"Person": set()},
        relations=[],
        facts=[Fact("r", "nobody", "Ghost", "nothing", "Ghost", 1.0)],
        validate=False,
    )
    assert len(kb.facts) == 1


def test_hard_rule_rejected_from_h():
    kb = small_kb()
    rule = HornClause.make(
        Atom("live_in", ("x", "y")),
        [Atom("born_in", ("x", "y"))],
        math.inf,
        {"x": "Person", "y": "City"},
    )
    with pytest.raises(KnowledgeBaseError):
        kb.add_rule(rule)


def test_constraint_validation():
    with pytest.raises(ValueError):
        FunctionalConstraint("born_in", arg=3)
    with pytest.raises(ValueError):
        FunctionalConstraint("born_in", degree=0)
    assert FunctionalConstraint("capital_of", arg=TYPE_II).arg == TYPE_II


def test_stats():
    kb = small_kb()
    stats = kb.stats()
    assert stats == {
        "relations": 1,
        "rules": 0,
        "entities": 3,
        "facts": 1,
        "classes": 2,
        "constraints": 0,
    }


def test_subclass_pairs():
    kb = KnowledgeBase(
        classes={"City": {"paris"}, "Place": {"paris", "alps"}},
        relations=[],
    )
    assert ("City", "Place") in kb.subclass_pairs()
    assert ("Place", "City") not in kb.subclass_pairs()


def test_fact_str_and_key():
    fact = Fact("born_in", "ann", "Person", "paris", "City", 0.9)
    assert "born_in(ann, paris)" in str(fact)
    assert fact.key == ("born_in", "ann", "Person", "paris", "City")
    inferred = Fact("born_in", "ann", "Person", "paris", "City")
    assert inferred.key == fact.key  # weight not part of identity
