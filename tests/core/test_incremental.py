"""Incremental knowledge expansion: add_evidence + delta re-grounding."""


from repro import Fact, ProbKB

from .paper_example import EXPECTED_CLOSURE, paper_kb


def triples(system):
    return {(f.relation, f.subject, f.object) for f in system.all_facts()}


def batch_system(extra_fact=None):
    """Ground everything at once (the reference outcome)."""
    kb = paper_kb()
    if extra_fact is not None:
        kb.add_fact(extra_fact)
    system = ProbKB(kb, backend="single")
    system.ground()
    return system


def test_incremental_matches_batch():
    """Grounding facts incrementally reaches the same closure as
    grounding everything at once."""
    kb = paper_kb()
    held_out = kb.facts[1]  # born_in(Ruth Gruber, Brooklyn)
    kb.facts = [kb.facts[0]]
    kb._fact_keys = {kb.facts[0].key}
    incremental = ProbKB(kb, backend="single")
    incremental.ground()
    assert ("located_in", "Brooklyn", "New York City") not in triples(incremental)

    outcome = incremental.add_evidence([held_out])
    assert triples(incremental) == EXPECTED_CLOSURE
    assert outcome.converged
    assert incremental.factor_count() == batch_system().factor_count()


def test_evidence_keeps_weight():
    system = ProbKB(paper_kb(), backend="single")
    system.ground()
    new_fact = Fact("born_in", "Ruth Gruber", "Writer", "Brooklyn", "Place", 0.5)
    # duplicate evidence is ignored (set semantics)
    before = system.fact_count()
    system.add_evidence([new_fact])
    assert system.fact_count() == before


def test_new_entity_evidence_expands():
    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    system = ProbKB(kb, backend="single")
    system.ground()
    before = system.fact_count()
    evidence = Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.9)
    outcome = system.add_evidence([evidence])
    assert system.fact_count() > before + 1  # evidence + its consequences
    derived = triples(system)
    assert ("live_in", "Saul Bellow", "Brooklyn") in derived
    assert ("grow_up_in", "Saul Bellow", "Brooklyn") in derived
    # the stored evidence kept its extraction weight
    weighted = [
        f for f in system.all_facts()
        if f.subject == "Saul Bellow" and f.weight is not None
    ]
    assert len(weighted) == 1 and weighted[0].weight == 0.9


def test_incremental_factor_rebuild_matches_batch():
    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    incremental = ProbKB(kb, backend="single")
    incremental.ground()
    evidence = Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.9)
    incremental.add_evidence([evidence])

    reference = batch_system(None)
    batch_kb = paper_kb()
    batch_kb.classes["Writer"].add("Saul Bellow")
    batch_kb.add_fact(evidence)
    reference = ProbKB(batch_kb, backend="single")
    reference.ground()
    assert triples(incremental) == triples(reference)
    assert incremental.factor_count() == reference.factor_count()


def test_add_evidence_on_mpp():
    from repro.core import MPPBackend

    kb = paper_kb()
    kb.classes["Writer"].add("Saul Bellow")
    system = ProbKB(kb, backend=MPPBackend(nseg=3))
    system.ground()
    system.add_evidence(
        [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.9)]
    )
    assert ("live_in", "Saul Bellow", "Brooklyn") in triples(system)
