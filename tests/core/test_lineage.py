"""Lineage queries over TΦ (Section 4.2.3)."""

import pytest

from repro.core import LineageIndex


@pytest.fixture
def index():
    # 1, 2 are extracted facts; 3 <- 1; 4 <- 1,2; 5 <- 4; 5 <- 3 (two ways)
    rows = [
        (1, None, None, 0.9),
        (2, None, None, 0.8),
        (3, 1, None, 1.2),
        (4, 1, 2, 0.5),
        (5, 4, None, 0.7),
        (5, 3, None, 0.6),
    ]
    return LineageIndex(rows)


def test_base_facts(index):
    assert index.is_base(1) and index.is_base(2)
    assert not index.is_base(4)
    assert index.base_facts == {1, 2}


def test_derivations_of(index):
    assert len(index.derivations_of(5)) == 2
    assert index.derivations_of(4)[0].body == (1, 2)
    assert index.derivations_of(1) == []


def test_derived_facts(index):
    assert index.derived_facts() == {3, 4, 5}


def test_base_support_transitive(index):
    assert index.base_support(5) == {1, 2}
    assert index.base_support(3) == {1}
    assert index.base_support(1) == {1}


def test_affected_by_forward_propagation(index):
    assert index.affected_by(1) == {3, 4, 5}
    assert index.affected_by(2) == {4, 5}
    assert index.affected_by(5) == frozenset()


def test_derivation_tree_depth(index):
    tree = index.derivation_tree(5, max_depth=1)
    assert len(tree.derivations) == 2
    # depth 1: premises are not expanded further
    for step in tree.derivations:
        for premise in step.premises:
            assert premise.derivations == []
    deep = index.derivation_tree(5, max_depth=3)
    rendering = deep.render()
    assert "fact 5" in rendering and "(base)" in rendering


def test_credibility(index):
    assert index.credibility(1) == 1.0  # base
    assert index.credibility(3) == pytest.approx(0.5)  # one derivation
    assert index.credibility(5) == pytest.approx(0.75)  # two derivations
    assert index.credibility(99) == 0.0  # unknown fact


def test_facts_using(index):
    uses_of_1 = index.facts_using(1)
    assert {d.head for d in uses_of_1} == {3, 4}


def test_cycle_safety():
    """Cyclic derivations (a <- b, b <- a) must not hang."""
    rows = [(1, 2, None, 0.5), (2, 1, None, 0.5), (1, None, None, 0.9)]
    index = LineageIndex(rows)
    assert index.base_support(2) == {1}
    assert 2 in index.affected_by(1)
    tree = index.derivation_tree(1, max_depth=4)
    assert tree.fact == 1
