"""Grounding correctness against an independent oracle.

``repro.datasets.world.apply_rules`` is a standalone forward-chaining
engine; feeding the *same* rules and facts to ProbKB's SQL-based batch
grounding must produce exactly the same closure.  This exercises all
six partitions, iteration-to-fixpoint, and dedup — on both backends and
on Tuffy-T.
"""

import random

import pytest

from repro import Fact, KnowledgeBase, ProbKB, Relation, TuffyT
from repro.core import Atom, HornClause, MPPBackend
from repro.datasets.world import _PATTERN_ARGS, WorldRule, apply_rules


def random_setup(seed, n_entities=25, n_facts=60, n_rules=8):
    """A random single-class KB plus equivalent world-level rules."""
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(n_entities)]
    relations = [f"r{i}" for i in range(4)]
    triples = set()
    while len(triples) < n_facts:
        triples.add(
            (rng.choice(relations), rng.choice(entities), rng.choice(entities))
        )
    world_rules = []
    horn_rules = []
    for _ in range(n_rules):
        pattern = rng.randint(1, 6)
        body_size = 1 if pattern in (1, 2) else 2
        head = rng.choice(relations)
        body = tuple(rng.choice(relations) for _ in range(body_size))
        world_rules.append(WorldRule(head, body, pattern))
        args = _PATTERN_ARGS[pattern]
        variables = {"x", "y"} | ({"z"} if body_size == 2 else set())
        horn_rules.append(
            HornClause.make(
                Atom(head, ("x", "y")),
                [Atom(rel, arg) for rel, arg in zip(body, args)],
                weight=1.0,
                var_classes={v: "Thing" for v in variables},
            )
        )
    facts = [
        Fact(rel, s, "Thing", o, "Thing", weight=0.9) for rel, s, o in sorted(triples)
    ]
    kb = KnowledgeBase(
        classes={"Thing": set(entities)},
        relations=[Relation(r, "Thing", "Thing") for r in relations],
        facts=facts,
        rules=horn_rules,
    )
    return kb, triples, world_rules


def oracle_closure(triples, world_rules):
    closure = apply_rules(set(triples), world_rules, max_iterations=30)
    # the oracle skips reflexive x=y derivations only for 2-atom rules;
    # ProbKB has no such restriction, so align by allowing them here
    return closure


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_probkb_matches_oracle(seed):
    kb, triples, world_rules = random_setup(seed)
    expected = _closure_with_reflexive(triples, world_rules)
    system = ProbKB(kb, backend="single")
    system.ground(max_iterations=30)
    got = {(f.relation, f.subject, f.object) for f in system.all_facts()}
    assert got == expected


@pytest.mark.parametrize("seed", [0, 2])
def test_mpp_matches_oracle(seed):
    kb, triples, world_rules = random_setup(seed)
    expected = _closure_with_reflexive(triples, world_rules)
    system = ProbKB(kb, backend=MPPBackend(nseg=4))
    system.ground(max_iterations=30)
    got = {(f.relation, f.subject, f.object) for f in system.all_facts()}
    assert got == expected


@pytest.mark.parametrize("seed", [0, 1])
def test_tuffy_matches_oracle(seed):
    kb, triples, world_rules = random_setup(seed)
    expected = _closure_with_reflexive(triples, world_rules)
    tuffy = TuffyT(kb)
    tuffy.run(max_iterations=30)
    got = {(f.relation, f.subject, f.object) for f in tuffy.all_facts()}
    assert got == expected


@pytest.mark.parametrize("seed", [5, 6])
def test_probkb_and_tuffy_agree_exactly(seed):
    kb, _, _ = random_setup(seed, n_facts=80, n_rules=10)
    system = ProbKB(kb, backend="single")
    system.ground(max_iterations=30)
    tuffy = TuffyT(kb)
    tuffy.run(max_iterations=30)
    ours = {(f.relation, f.subject, f.object) for f in system.all_facts()}
    theirs = {(f.relation, f.subject, f.object) for f in tuffy.all_facts()}
    assert ours == theirs
    # factor multisets agree too (Proposition 1 holds for both)
    assert system.factor_count() == len(tuffy.db.table("TF"))


def _closure_with_reflexive(triples, world_rules):
    """Oracle closure, including x=y heads which ProbKB derives.

    The world-level helper excludes reflexive conclusions (geography
    never needs them); replicate grounding semantics exactly by adding
    them back through a tiny fixpoint here.
    """
    from collections import defaultdict

    facts = set(triples)
    for _ in range(30):
        new = set()
        by_rel = defaultdict(list)
        for t in facts:
            by_rel[t[0]].append(t)
        for rule in world_rules:
            args = _PATTERN_ARGS[rule.pattern]
            if len(rule.body) == 1:
                (a1, a2) = args[0]
                for _, s, o in by_rel[rule.body[0]]:
                    b = {a1: s, a2: o}
                    new.add((rule.head, b["x"], b["y"]))
            else:
                q_args, r_args = args
                r_index = defaultdict(list)
                r_z = r_args.index("z")
                for t in by_rel[rule.body[1]]:
                    r_index[t[1 + r_z]].append(t)
                q_z = q_args.index("z")
                for t in by_rel[rule.body[0]]:
                    bq = {q_args[0]: t[1], q_args[1]: t[2]}
                    for rt in r_index.get(t[1 + q_z], ()):
                        b = dict(bq)
                        b[r_args[0]] = rt[1]
                        b[r_args[1]] = rt[2]
                        new.add((rule.head, b["x"], b["y"]))
        if new <= facts:
            break
        facts |= new
    return facts
