"""Relational model tests: dictionaries, table loading, encoding."""

import pytest

from repro.core import Dictionary, MPPBackend, RelationalKB, SingleNodeBackend
from repro.core.backends import TPI_VIEWS
from repro.relational import Scan

from .paper_example import paper_kb


class TestDictionary:
    def test_dense_ids(self):
        d = Dictionary()
        assert d.id("a") == 0
        assert d.id("b") == 1
        assert d.id("a") == 0  # stable
        assert len(d) == 2

    def test_name_roundtrip(self):
        d = Dictionary()
        for name in ("x", "y", "z"):
            d.id(name)
        assert [d.name(d.id(n)) for n in ("x", "y", "z")] == ["x", "y", "z"]

    def test_lookup_missing(self):
        d = Dictionary()
        assert d.lookup("ghost") is None

    def test_rows(self):
        d = Dictionary()
        d.id("a")
        d.id("b")
        assert d.rows() == [(0, "a"), (1, "b")]


@pytest.fixture(scope="module")
def rkb():
    return RelationalKB(paper_kb(), SingleNodeBackend())


class TestLoad:
    def test_load_report(self, rkb):
        report = rkb.load_report
        assert report.facts == 2
        assert report.entities == 3
        assert report.classes == 3
        assert sum(report.rules_by_partition.values()) == 6
        assert report.rules_by_partition[1] == 4
        assert report.rules_by_partition[3] == 2

    def test_nonempty_partitions(self, rkb):
        assert rkb.nonempty_partitions == [1, 3]

    def test_dictionary_tables_loaded(self, rkb):
        backend = rkb.backend
        assert backend.table_size("DE") == 3
        assert backend.table_size("DC") == 3
        assert backend.table_size("DR") == 4  # distinct relation names

    def test_tc_holds_memberships(self, rkb):
        assert rkb.backend.table_size("TC") == 3

    def test_staging_tables_exist(self, rkb):
        for table in ("TNew", "TDel", "TDelta"):
            assert rkb.backend.has_table(table)
        # TDelta primed with the base facts for semi-naive iteration 1
        assert rkb.backend.table_size("TDelta") == 2

    def test_duplicate_facts_deduped_on_load(self):
        kb = paper_kb()
        before = len(kb.facts)
        loaded = RelationalKB(kb, SingleNodeBackend())
        assert loaded.fact_count() == before

    def test_mln_rows_shape(self, rkb):
        m1 = rkb.backend.query(Scan("M1"))
        assert m1.columns == ["M1.R1", "M1.R2", "M1.C1", "M1.C2", "M1.w"]
        assert len(m1) == 4


class TestEncodeDecode:
    def test_fact_roundtrip(self, rkb):
        fact = paper_kb().facts[0]
        key = rkb.encode_fact_key(fact)
        row = (99,) + key + (fact.weight,)
        decoded = rkb.decode_fact(row)
        assert decoded.key == fact.key
        assert decoded.weight == fact.weight

    def test_insert_new_facts_row_api(self):
        local = RelationalKB(paper_kb(), SingleNodeBackend())
        fact = paper_kb().facts[0]
        key = local.encode_fact_key(fact)
        assert local.insert_new_facts([key]) == 0  # already present
        fresh = (key[0], key[1], key[2], key[1], key[2])  # a new combination
        assert local.insert_new_facts([fresh, fresh]) == 1  # deduped batch


class TestMPPLoad:
    def test_views_created_and_registered(self):
        backend = MPPBackend(nseg=3, use_matviews=True)
        RelationalKB(paper_kb(), backend)
        for view in TPI_VIEWS:
            assert backend.has_table(view)
            assert backend.table_size(view) == backend.table_size("TP")
        assert set(backend.db._mirrors["TP"]) == set(TPI_VIEWS)

    def test_no_views_without_matviews(self):
        backend = MPPBackend(nseg=3, use_matviews=False)
        RelationalKB(paper_kb(), backend)
        for view in TPI_VIEWS:
            assert not backend.has_table(view)

    def test_tpi_scan_selection(self):
        backend = MPPBackend(nseg=3, use_matviews=True)
        RelationalKB(paper_kb(), backend)
        assert backend.tpi_scan("T", []).table_name == "T0"
        assert backend.tpi_scan("T", ["x"]).table_name == "Tx"
        assert backend.tpi_scan("T", ["y"]).table_name == "Ty"
        assert backend.tpi_scan("T", ["x", "y"]).table_name == "Txy"

    def test_tpi_scan_falls_back_to_tp(self):
        backend = MPPBackend(nseg=3, use_matviews=False)
        RelationalKB(paper_kb(), backend)
        assert backend.tpi_scan("T", ["x"]).table_name == "TP"
        single = SingleNodeBackend()
        RelationalKB(paper_kb(), single)
        assert single.tpi_scan("T", ["x", "y"]).table_name == "TP"
