"""Materialized marginals and the query-time interface."""

import pytest

from repro import Fact, InferenceConfig, ProbKB

from .paper_example import paper_kb


@pytest.fixture(scope="module")
def system():
    probkb = ProbKB(paper_kb(), backend="single")
    probkb.ground()
    probkb.materialize_marginals(config=InferenceConfig(num_sweeps=800, seed=5))
    return probkb


def test_materialize_covers_all_facts(system):
    assert system.backend.table_size("TProb") == system.fact_count()


def test_query_by_relation(system):
    results = system.query_facts(relation="live_in")
    assert len(results) == 2
    for fact, probability in results:
        assert fact.relation == "live_in"
        assert probability is not None


def test_query_by_subject_and_object(system):
    results = system.query_facts(subject="Brooklyn", relation="located_in")
    assert len(results) == 1
    fact, probability = results[0]
    assert fact.object == "New York City"
    assert 0.0 < probability < 1.0
    assert system.query_facts(object="Brooklyn", relation="located_in") == []


def test_query_unknown_names(system):
    assert system.query_facts(relation="owns") == []
    assert system.query_facts(subject="Nobody") == []
    assert system.query_facts(object="Atlantis") == []
    # an unknown name short-circuits even when combined with known ones
    assert system.query_facts(relation="born_in", subject="Nobody") == []
    assert system.query_facts(relation="owns", min_probability=0.9) == []


def test_probability_threshold(system):
    everything = system.query_facts()
    confident = system.query_facts(min_probability=0.55)
    assert len(confident) < len(everything) == system.fact_count()
    for _, probability in confident:
        assert probability >= 0.55


def test_rematerialization_replaces(system):
    first = system.backend.table_size("TProb")
    system.materialize_marginals(config=InferenceConfig(num_sweeps=200, seed=9))
    assert system.backend.table_size("TProb") == first


def test_query_before_materialization():
    fresh = ProbKB(paper_kb(), backend="single")
    fresh.ground()
    results = fresh.query_facts(relation="born_in")
    assert len(results) == 2
    assert all(probability is None for _, probability in results)
    # thresholds exclude un-scored facts
    assert fresh.query_facts(relation="born_in", min_probability=0.1) == []


def test_threshold_with_materialized_probabilities(system):
    # with TProb present, min_probability=0 returns every scored fact
    everything = system.query_facts(min_probability=0.0)
    assert len(everything) == system.fact_count()
    assert all(probability is not None for _, probability in everything)
    # an impossible threshold excludes everything
    assert system.query_facts(min_probability=1.01) == []


def expandable_system():
    kb = paper_kb()
    kb.classes["Writer"].update({"Saul Bellow", "Grace Paley"})
    probkb = ProbKB(kb, backend="single")
    probkb.ground()
    return probkb


class TestAddEvidenceTwice:
    """Back-to-back incremental ingests — the serving layer's hot path."""

    BATCH_ONE = [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)]
    BATCH_TWO = [
        Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93)
    ]

    def test_both_batches_and_their_inferences_land(self):
        system = expandable_system()
        first = system.add_evidence(self.BATCH_ONE)
        count_after_first = system.fact_count()
        second = system.add_evidence(self.BATCH_TWO)
        assert first.total_new_facts >= 1
        assert second.total_new_facts >= 1
        assert system.fact_count() > count_after_first
        # each writer got their rule-derived consequences, queryable
        for name in ("Saul Bellow", "Grace Paley"):
            relations = {
                fact.relation for fact, _ in system.query_facts(subject=name)
            }
            assert {"born_in", "live_in", "grow_up_in"} <= relations

    def test_repeated_batch_is_a_no_op(self):
        system = expandable_system()
        system.add_evidence(self.BATCH_ONE)
        count = system.fact_count()
        outcome = system.add_evidence(self.BATCH_ONE)
        assert outcome.total_new_facts == 0
        assert system.fact_count() == count

    def test_generation_bumps_on_every_mutation(self):
        system = expandable_system()
        generation = system.generation
        system.add_evidence(self.BATCH_ONE)
        assert system.generation == generation + 1
        system.add_evidence(self.BATCH_TWO)
        assert system.generation == generation + 2
        system.materialize_marginals(config=InferenceConfig(num_sweeps=100, seed=1))
        assert system.generation == generation + 3

    def test_factors_cover_fresh_evidence(self):
        system = expandable_system()
        system.add_evidence(self.BATCH_ONE)
        system.add_evidence(self.BATCH_TWO)
        # TΦ was rebuilt after the second batch: singleton factors exist
        # for both evidence facts (weights 0.88 and 0.93)
        weights = {row[3] for row in system.factor_rows()}
        assert {0.88, 0.93} <= weights


def test_works_on_mpp_backend():
    from repro.core import MPPBackend

    probkb = ProbKB(paper_kb(), backend=MPPBackend(nseg=3))
    probkb.ground()
    probkb.materialize_marginals(config=InferenceConfig(num_sweeps=300, seed=2))
    results = probkb.query_facts(relation="grow_up_in")
    assert len(results) == 2
