"""Materialized marginals and the query-time interface."""

import pytest

from repro import ProbKB

from .paper_example import paper_kb


@pytest.fixture(scope="module")
def system():
    probkb = ProbKB(paper_kb(), backend="single")
    probkb.ground()
    probkb.materialize_marginals(num_sweeps=800, seed=5)
    return probkb


def test_materialize_covers_all_facts(system):
    assert system.backend.table_size("TProb") == system.fact_count()


def test_query_by_relation(system):
    results = system.query_facts(relation="live_in")
    assert len(results) == 2
    for fact, probability in results:
        assert fact.relation == "live_in"
        assert probability is not None


def test_query_by_subject_and_object(system):
    results = system.query_facts(subject="Brooklyn", relation="located_in")
    assert len(results) == 1
    fact, probability = results[0]
    assert fact.object == "New York City"
    assert 0.0 < probability < 1.0
    assert system.query_facts(object="Brooklyn", relation="located_in") == []


def test_query_unknown_names(system):
    assert system.query_facts(relation="owns") == []
    assert system.query_facts(subject="Nobody") == []


def test_probability_threshold(system):
    everything = system.query_facts()
    confident = system.query_facts(min_probability=0.55)
    assert len(confident) < len(everything) == system.fact_count()
    for _, probability in confident:
        assert probability >= 0.55


def test_rematerialization_replaces(system):
    first = system.backend.table_size("TProb")
    system.materialize_marginals(num_sweeps=200, seed=9)
    assert system.backend.table_size("TProb") == first


def test_query_before_materialization():
    fresh = ProbKB(paper_kb(), backend="single")
    fresh.ground()
    results = fresh.query_facts(relation="born_in")
    assert len(results) == 2
    assert all(probability is None for _, probability in results)
    # thresholds exclude un-scored facts
    assert fresh.query_facts(relation="born_in", min_probability=0.1) == []


def test_works_on_mpp_backend():
    from repro.core import MPPBackend

    probkb = ProbKB(paper_kb(), backend=MPPBackend(nseg=3))
    probkb.ground()
    probkb.materialize_marginals(num_sweeps=300, seed=2)
    results = probkb.query_facts(relation="grow_up_in")
    assert len(results) == 2
