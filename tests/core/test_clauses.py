"""Horn clause classification (Definitions 5-6): all six patterns,
canonical ordering, round-trips, and rejection of unsupported shapes."""

import math

import pytest

from repro.core import (
    Atom,
    ClauseError,
    HornClause,
    PARTITION_BODY_PATTERNS,
    classify_clause,
    clause_from_identifier,
)

CLASSES = {"x": "A", "y": "B", "z": "C"}


def clause(head_args, body_specs, weight=1.0):
    head = Atom("p", head_args)
    body = [Atom(name, args) for name, args in body_specs]
    variables = {v for atom in [head] + body for v in atom.args}
    return HornClause.make(head, body, weight, {v: CLASSES[v] for v in variables})


@pytest.mark.parametrize(
    "body,expected",
    [
        ([("q", ("x", "y"))], 1),
        ([("q", ("y", "x"))], 2),
        ([("q", ("z", "x")), ("r", ("z", "y"))], 3),
        ([("q", ("x", "z")), ("r", ("z", "y"))], 4),
        ([("q", ("z", "x")), ("r", ("y", "z"))], 5),
        ([("q", ("x", "z")), ("r", ("y", "z"))], 6),
    ],
)
def test_all_six_patterns(body, expected):
    classified = classify_clause(clause(("x", "y"), body))
    assert classified.partition == expected
    assert classified.relations[0] == "p"


def test_body_order_is_canonicalized():
    """The y-atom listed first must still classify with q = the x-atom."""
    swapped = clause(("x", "y"), [("r", ("z", "y")), ("q", ("z", "x"))])
    classified = classify_clause(swapped)
    assert classified.partition == 3
    assert classified.relations == ("p", "q", "r")


def test_nonstandard_variable_names():
    head = Atom("lives", ("a", "b"))
    body = [Atom("born", ("a", "b"))]
    rule = HornClause.make(head, body, 1.0, {"a": "Person", "b": "City"})
    classified = classify_clause(rule)
    assert classified.partition == 1
    assert classified.classes == ("Person", "City")


def test_classes_follow_canonical_positions():
    rule = clause(("x", "y"), [("q", ("z", "x")), ("r", ("z", "y"))])
    classified = classify_clause(rule)
    assert classified.classes == ("A", "B", "C")  # (C1, C2, C3) = x, y, z


def test_roundtrip_through_identifier_tuple():
    for partition, _ in PARTITION_BODY_PATTERNS.items():
        relations = ("p", "q", "r")[: 2 if partition in (1, 2) else 3]
        classes = ("A", "B", "C")[: 2 if partition in (1, 2) else 3]
        rebuilt = clause_from_identifier(partition, relations, classes, 0.7)
        classified = classify_clause(rebuilt)
        assert classified.partition == partition
        assert classified.relations == relations
        assert classified.classes == classes
        assert classified.weight == 0.7


@pytest.mark.parametrize(
    "head_args,body",
    [
        (("x", "x"), [("q", ("x", "y"))]),  # repeated head variable
        (("x", "y"), [("q", ("z", "w")), ("r", ("z", "y"))]),  # two join vars
        (("x", "y"), [("q", ("x", "y")), ("r", ("x", "y")), ("s", ("x", "y"))]),
        (("x", "y"), [("q", ("z", "z"))]),  # body doesn't use head vars
        (("x", "y"), [("q", ("x", "y")), ("r", ("x", "y"))]),  # no z at all
    ],
)
def test_unsupported_shapes_rejected(head_args, body):
    variables = {v for _, args in body for v in args} | set(head_args)
    classes = {v: "A" for v in variables}
    head = Atom("p", head_args)
    atoms = [Atom(name, args) for name, args in body]
    rule = HornClause.make(head, atoms, 1.0, classes)
    with pytest.raises(ClauseError):
        classify_clause(rule)


def test_untyped_variable_rejected():
    rule = HornClause.make(
        Atom("p", ("x", "y")), [Atom("q", ("x", "y"))], 1.0, {"x": "A"}
    )
    with pytest.raises(ClauseError):
        classify_clause(rule)


def test_hard_rule_flag():
    rule = clause(("x", "y"), [("q", ("x", "y"))], weight=math.inf)
    assert rule.is_hard


def test_clause_str_contains_quantifiers():
    rule = clause(("x", "y"), [("q", ("x", "y"))], weight=1.4)
    text = str(rule)
    assert "p(x, y)" in text and "q(x, y)" in text and "1.40" in text


def test_identifier_arity_validation():
    with pytest.raises(ClauseError):
        clause_from_identifier(3, ("p", "q"), ("A", "B", "C"), 1.0)
    with pytest.raises(ClauseError):
        clause_from_identifier(1, ("p", "q"), ("A", "B", "C"), 1.0)
