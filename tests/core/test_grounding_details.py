"""Grounding mechanics: iteration stats, convergence, constraint
interleaving, and the graveyard semantics."""


from repro import (
    Fact,
    FunctionalConstraint,
    GroundingConfig,
    KnowledgeBase,
    ProbKB,
    Relation,
)
from repro.core import Atom, DEFAULT_MAX_ITERATIONS, HornClause

from .paper_example import paper_kb


def test_iteration_stats_fields():
    system = ProbKB(paper_kb(), backend="single")
    result = system.ground()
    first = result.iterations[0]
    assert first.iteration == 1
    assert first.new_facts == 5
    assert first.derived_rows >= first.new_facts
    assert first.seconds > 0
    assert first.fact_count == 7


def test_max_iterations_cap():
    system = ProbKB(paper_kb(), backend="single")
    result = system.ground(max_iterations=1)
    assert len(result.iterations) == 1
    assert not result.converged


def test_default_iteration_cap_matches_paper():
    # "15 iterations ground most of the facts"
    assert DEFAULT_MAX_ITERATIONS == 15


def test_graveyard_blocks_rederivation():
    """A fact deleted by Query 3 must not be re-derived by the very
    rules that produced it — otherwise constrained grounding would
    never converge."""
    classes = {"P": {"p1"}, "C": {"c1", "c2"}}
    relations = [Relation("r", "P", "C"), Relation("q", "P", "C")]
    facts = [
        Fact("q", "p1", "P", "c1", "C", 0.9),
        Fact("q", "p1", "P", "c2", "C", 0.9),
    ]
    # r(x, y) <- q(x, y): derives r(p1,c1) and r(p1,c2), violating the
    # functional constraint on r
    rules = [
        HornClause.make(
            Atom("r", ("x", "y")),
            [Atom("q", ("x", "y"))],
            1.0,
            {"x": "P", "y": "C"},
        )
    ]
    kb = KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=[FunctionalConstraint("r", arg=1, degree=1)],
    )
    system = ProbKB(kb, grounding=GroundingConfig(apply_constraints=True))
    result = system.ground(max_iterations=10)
    assert result.converged
    # the violating entity p1 was removed entirely and stayed removed
    assert all(f.subject != "p1" or f.relation == "q" for f in system.all_facts())
    graveyard = system.backend.table_size("TDel")
    assert graveyard >= 2


def test_constraints_can_be_disabled_per_system():
    kb = paper_kb(with_constraints=True)
    unconstrained = ProbKB(kb, grounding=GroundingConfig(apply_constraints=False))
    unconstrained.ground()
    assert unconstrained.fact_count() == 7  # nothing removed


def test_empty_rule_set_converges_immediately():
    kb = KnowledgeBase(
        classes={"P": {"a"}},
        relations=[Relation("r", "P", "P")],
        facts=[Fact("r", "a", "P", "a", "P", 0.9)],
        rules=[],
    )
    system = ProbKB(kb, backend="single")
    result = system.ground()
    assert result.converged
    assert result.total_new_facts == 0
    assert result.factors == 1  # the singleton prior


def test_no_facts_kb():
    kb = KnowledgeBase(
        classes={"P": {"a"}},
        relations=[Relation("r", "P", "P")],
        facts=[],
        rules=[
            HornClause.make(
                Atom("r", ("x", "y")),
                [Atom("r", ("y", "x"))],
                1.0,
                {"x": "P", "y": "P"},
            )
        ],
    )
    system = ProbKB(kb, backend="single")
    result = system.ground()
    assert result.converged and system.fact_count() == 0


def test_derived_rows_counts_candidates():
    """derived_rows counts candidate rows the joins produced (before
    dedup), new_facts what survived the set union."""
    system = ProbKB(paper_kb(), backend="single")
    first = system.grounder.ground_atoms_iteration(1)
    second = system.grounder.ground_atoms_iteration(2)
    assert first.new_facts == 5
    assert second.new_facts == 0
    # iteration 2 re-derives located_in via live_in but it is guarded out
    assert second.derived_rows <= first.derived_rows
