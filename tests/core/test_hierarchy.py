"""Class hierarchy (Remark 1): the paper's Kale example."""


from repro import Atom, Fact, HornClause, KnowledgeBase, ProbKB, Relation
from repro.core.hierarchy import broaden_facts, generalizations, subclass_map


def kale_kb():
    """Kale (a Vegetable ⊆ Food) is rich in calcium; a rule typed over
    Food says calcium-rich foods help prevent osteoporosis."""
    classes = {
        "Vegetable": {"Kale"},
        "Food": {"Kale", "Cheese"},
        "Nutrient": {"calcium"},
        "Disease": {"osteoporosis"},
    }
    relations = [
        Relation("rich_in", "Food", "Nutrient"),
        Relation("helps_prevent", "Nutrient", "Disease"),
        Relation("prevents", "Food", "Disease"),
    ]
    facts = [
        Fact("rich_in", "Kale", "Vegetable", "calcium", "Nutrient", 0.9),
        Fact("helps_prevent", "calcium", "Nutrient", "osteoporosis", "Disease", 0.8),
    ]
    rules = [
        # prevents(x, y) <- rich_in(x, z) ∧ helps_prevent(z, y), x: Food
        HornClause.make(
            Atom("prevents", ("x", "y")),
            [Atom("rich_in", ("x", "z")), Atom("helps_prevent", ("z", "y"))],
            weight=1.0,
            var_classes={"x": "Food", "y": "Disease", "z": "Nutrient"},
        )
    ]
    return KnowledgeBase(
        classes=classes, relations=relations, facts=facts, rules=rules
    )


def test_subclass_map():
    kb = kale_kb()
    ancestors = subclass_map(kb)
    assert ancestors["Vegetable"] == {"Food"}
    assert ancestors["Food"] == set()
    assert ancestors["Nutrient"] == set()


def test_subclass_map_is_transitive():
    kb = KnowledgeBase(
        classes={"A": {"x"}, "B": {"x", "y"}, "C": {"x", "y", "z"}},
        relations=[],
    )
    ancestors = subclass_map(kb)
    assert ancestors["A"] == {"B", "C"}
    assert ancestors["B"] == {"C"}


def test_equal_classes_are_not_hierarchy():
    kb = KnowledgeBase(
        classes={"A": {"x"}, "Alias": {"x"}},
        relations=[],
    )
    ancestors = subclass_map(kb)
    assert ancestors["A"] == set() and ancestors["Alias"] == set()


def test_generalizations():
    kb = kale_kb()
    ancestors = subclass_map(kb)
    fact = kb.facts[0]
    copies = generalizations(fact, ancestors)
    assert len(copies) == 1
    assert copies[0].subject_class == "Food"
    assert copies[0].weight is None


def test_without_broadening_rule_does_not_fire():
    system = ProbKB(kale_kb(), backend="single")
    system.ground()
    triples = {(f.relation, f.subject, f.object) for f in system.all_facts()}
    assert ("prevents", "Kale", "osteoporosis") not in triples


def test_kale_example_with_broadening():
    """The paper's motivating inference: Kale is rich in calcium, and
    calcium helps prevent osteoporosis, so Kale helps prevent
    osteoporosis — enabled by Vegetable ⊆ Food."""
    system = ProbKB(broaden_facts(kale_kb()), backend="single")
    system.ground()
    triples = {(f.relation, f.subject, f.object) for f in system.all_facts()}
    assert ("prevents", "Kale", "osteoporosis") in triples


def test_broadening_adds_only_rule_relevant_signatures():
    kb = kale_kb()
    broadened = broaden_facts(kb)
    extra = [f for f in broadened.facts if f not in kb.facts]
    assert len(extra) == 1  # only the rich_in(Food, Nutrient) copy
    # the generalized copy is weightless: no extra singleton factor
    system = ProbKB(broadened, backend="single")
    system.ground()
    singletons = [row for row in system.factor_rows() if row[1] is None and row[2] is None]
    assert len(singletons) == 2  # only the two original extractions


def test_broadening_idempotent():
    once = broaden_facts(kale_kb())
    twice = broaden_facts(once)
    assert len(twice.facts) == len(once.facts)
