"""The paper's running example (Table 1): the Ruth Gruber KB.

Shared by several test modules; grounding it must reproduce the TΠ and
TΦ contents of Figure 3 exactly.
"""

from repro import Atom, Fact, FunctionalConstraint, HornClause, KnowledgeBase, Relation

RG, NYC, BR = "Ruth Gruber", "New York City", "Brooklyn"


def paper_kb(with_constraints: bool = False) -> KnowledgeBase:
    classes = {
        "Writer": {RG},
        "City": {NYC},
        "Place": {BR},
    }
    relations = [
        Relation("born_in", "Writer", "Place"),
        Relation("born_in", "Writer", "City"),
        Relation("live_in", "Writer", "Place"),
        Relation("live_in", "Writer", "City"),
        Relation("grow_up_in", "Writer", "Place"),
        Relation("grow_up_in", "Writer", "City"),
        Relation("located_in", "Place", "City"),
    ]
    facts = [
        Fact("born_in", RG, "Writer", NYC, "City", weight=0.96),
        Fact("born_in", RG, "Writer", BR, "Place", weight=0.93),
    ]

    def rule1(head_rel, body_rel, c1, c2, w):
        return HornClause.make(
            Atom(head_rel, ("x", "y")),
            [Atom(body_rel, ("x", "y"))],
            w,
            {"x": c1, "y": c2},
        )

    def rule3(head_rel, q_rel, r_rel, w):
        # located_in(x, y) <- q(z, x), r(z, y);  x: Place, y: City, z: Writer
        return HornClause.make(
            Atom(head_rel, ("x", "y")),
            [Atom(q_rel, ("z", "x")), Atom(r_rel, ("z", "y"))],
            w,
            {"x": "Place", "y": "City", "z": "Writer"},
        )

    rules = [
        rule1("live_in", "born_in", "Writer", "Place", 1.40),
        rule1("live_in", "born_in", "Writer", "City", 1.53),
        rule1("grow_up_in", "born_in", "Writer", "Place", 2.68),
        rule1("grow_up_in", "born_in", "Writer", "City", 0.74),
        rule3("located_in", "live_in", "live_in", 0.32),
        rule3("located_in", "born_in", "born_in", 0.52),
    ]
    constraints = []
    if with_constraints:
        constraints = [FunctionalConstraint("born_in", arg=1, degree=1)]
    return KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=constraints,
    )


#: Figure 3(g): the closure of TΠ — (relation, subject, object) triples.
EXPECTED_CLOSURE = {
    ("born_in", RG, NYC),
    ("born_in", RG, BR),
    ("live_in", RG, NYC),
    ("live_in", RG, BR),
    ("grow_up_in", RG, NYC),
    ("grow_up_in", RG, BR),
    ("located_in", BR, NYC),
}

#: Figure 3(e): TΦ as (head triple, frozenset of body triples, weight).
EXPECTED_FACTORS = {
    (("born_in", RG, NYC), frozenset(), 0.96),
    (("born_in", RG, BR), frozenset(), 0.93),
    (("live_in", RG, NYC), frozenset({("born_in", RG, NYC)}), 1.53),
    (("live_in", RG, BR), frozenset({("born_in", RG, BR)}), 1.40),
    (("grow_up_in", RG, NYC), frozenset({("born_in", RG, NYC)}), 0.74),
    (("grow_up_in", RG, BR), frozenset({("born_in", RG, BR)}), 2.68),
    (
        ("located_in", BR, NYC),
        frozenset({("born_in", RG, BR), ("born_in", RG, NYC)}),
        0.52,
    ),
    (
        ("located_in", BR, NYC),
        frozenset({("live_in", RG, BR), ("live_in", RG, NYC)}),
        0.32,
    ),
}
