"""The paper's running example, plus the expected Figure 3 contents.

``paper_kb`` itself lives in :mod:`repro.datasets.paper_example` (the
examples and serving demos use it too); this module re-exports it for
the test suite and keeps the expected-output fixtures next to the tests
that assert them.
"""

from repro.datasets.paper_example import BR, NYC, RG, paper_kb

__all__ = ["BR", "NYC", "RG", "paper_kb", "EXPECTED_CLOSURE", "EXPECTED_FACTORS"]

#: Figure 3(g): the closure of TΠ — (relation, subject, object) triples.
EXPECTED_CLOSURE = {
    ("born_in", RG, NYC),
    ("born_in", RG, BR),
    ("live_in", RG, NYC),
    ("live_in", RG, BR),
    ("grow_up_in", RG, NYC),
    ("grow_up_in", RG, BR),
    ("located_in", BR, NYC),
}

#: Figure 3(e): TΦ as (head triple, frozenset of body triples, weight).
EXPECTED_FACTORS = {
    (("born_in", RG, NYC), frozenset(), 0.96),
    (("born_in", RG, BR), frozenset(), 0.93),
    (("live_in", RG, NYC), frozenset({("born_in", RG, NYC)}), 1.53),
    (("live_in", RG, BR), frozenset({("born_in", RG, BR)}), 1.40),
    (("grow_up_in", RG, NYC), frozenset({("born_in", RG, NYC)}), 0.74),
    (("grow_up_in", RG, BR), frozenset({("born_in", RG, BR)}), 2.68),
    (
        ("located_in", BR, NYC),
        frozenset({("born_in", RG, BR), ("born_in", RG, NYC)}),
        0.52,
    ),
    (
        ("located_in", BR, NYC),
        frozenset({("live_in", RG, BR), ("live_in", RG, NYC)}),
        0.32,
    ),
}
