"""Tuffy-T internals: per-relation tables, per-rule plans, loading."""

import pytest

from repro import TuffyT

from .paper_example import paper_kb


@pytest.fixture
def tuffy():
    return TuffyT(paper_kb())


def test_one_table_per_relation(tuffy):
    predicate_tables = [
        name for name in tuffy.db.tables if name.startswith("pred_")
    ]
    # born_in, live_in, grow_up_in, located_in
    assert len(predicate_tables) == 4


def test_facts_loaded_into_their_tables(tuffy):
    born_in = tuffy.relations.id("born_in")
    assert len(tuffy.db.table(f"pred_{born_in}")) == 2
    live_in = tuffy.relations.id("live_in")
    assert len(tuffy.db.table(f"pred_{live_in}")) == 0


def test_rule_specs_classified(tuffy):
    partitions = sorted({spec.partition for spec in tuffy.rules})
    assert partitions == [1, 3]
    assert len(tuffy.rules) == 6


def test_rule_atoms_plan_shape(tuffy):
    spec = next(s for s in tuffy.rules if s.partition == 3)
    plan = tuffy.rule_atoms_plan(spec)
    assert plan.output_columns == ["x", "y"]
    from repro.relational.plan import scans_of

    assert len(scans_of(plan)) == 2  # body tables only


def test_rule_factors_plan_includes_head(tuffy):
    spec = next(s for s in tuffy.rules if s.partition == 1)
    plan = tuffy.rule_factors_plan(spec)
    assert plan.output_columns == ["I1", "I2", "I3", "w"]


def test_statement_count_scales_with_rules(tuffy):
    before = tuffy.db.clock.queries
    tuffy.ground_atoms_iteration(1)
    per_iteration = tuffy.db.clock.queries - before
    assert per_iteration >= len(tuffy.rules)


def test_convergence_and_idempotence(tuffy):
    iterations, converged = tuffy.ground_atoms(max_iterations=10)
    assert converged
    final = tuffy.fact_count()
    more, _ = tuffy.ground_atoms(max_iterations=2)
    assert tuffy.fact_count() == final


def test_all_facts_decodes_everything(tuffy):
    tuffy.run(max_iterations=5)
    facts = tuffy.all_facts()
    assert len(facts) == tuffy.fact_count() == 7
    inferred = [f for f in facts if f.weight is None]
    assert len(inferred) == 5


def test_elapsed_seconds_accumulates(tuffy):
    before = tuffy.elapsed_seconds
    tuffy.ground_atoms_iteration(1)
    assert tuffy.elapsed_seconds > before
