PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-no-numpy test-mpp bench bench-mpp bench-delta bench-infer \
	bench-columnar lint lint-conc

# Tier-1 suite: serial executors only (the `mpp` marker is excluded
# via addopts in pyproject.toml).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Tier-1 again with numpy fast paths forced off: the columnar engine's
# pure-Python fallback must stay bit-identical (the no-numpy CI lane).
test-no-numpy:
	PROBKB_NO_NUMPY=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Multi-process tests: spawn real worker processes (the MPP executor
# plus the color-parallel inference driver in tests/infer).
test-mpp:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests -m mpp -q

# Modelled-cost paper figures (benchmarks/results/*.txt).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -m "not mpp" -q

# Delta vs full expansion wall-clock on a 10k-fact KB (bit-identical
# marginals asserted; single-fact flushes must be >=5x cheaper).
bench-delta:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_delta_expansion.py -q

# Real wall-clock of serial vs pooled grounding; needs >=2 cores for
# the speedup target, always checks bit-identical output.
bench-mpp:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_mpp_wallclock.py -m mpp -q

# Serial vs color-parallel gibbs through the engine registry; the
# bit-identity gate runs everywhere, the speedup target needs >=2 cores.
bench-infer:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_inference_engines.py -m mpp -q

# Columnar executor vs row engine on grounding-shaped operators
# (>=2x with numpy; engines checked bit-identical before timing).
bench-columnar:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_columnar.py -q

# Static checks: ruff (style/imports) + mypy (strict on repro.analyze,
# repro.core, repro.quality, repro.serve — see pyproject.toml).  Each
# tool is skipped
# with a notice when not installed, so `make lint` is safe in minimal
# environments; CI installs both and runs them for real.
# Concurrency & determinism linter over the repo's own source
# (RC001-008, see docs/devtools.md).  Pure stdlib: runs everywhere,
# fails on ANY finding.
lint-conc:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli devtools lint src/repro

lint: lint-conc
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping (pip install mypy)"; \
	fi
