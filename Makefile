PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-mpp bench bench-mpp

# Tier-1 suite: serial executors only (the `mpp` marker is excluded
# via addopts in pyproject.toml).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Multi-process executor tests: spawn real worker processes.
test-mpp:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/mpp -m mpp -q

# Modelled-cost paper figures (benchmarks/results/*.txt).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -m "not mpp" -q

# Real wall-clock of serial vs pooled grounding; needs >=2 cores for
# the speedup target, always checks bit-identical output.
bench-mpp:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_mpp_wallclock.py -m mpp -q
