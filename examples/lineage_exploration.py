"""Lineage: tracing how errors propagate through the inference chain.

Recreates the paper's Figure 5(a) scenario: an ambiguous entity
("Mandel", who is really several different people) produces a wrong
located_in fact, which then contaminates downstream inferences.  The
ground factor table TΦ records the full lineage, so we can trace the
error forward (what it poisoned) and backward (why it was derived) —
and see how a functional constraint catches it.

Run:  python examples/lineage_exploration.py
"""

from repro import (
    Atom,
    Fact,
    FunctionalConstraint,
    HornClause,
    KnowledgeBase,
    ProbKB,
    Relation,
)


def build_kb(with_constraints: bool) -> KnowledgeBase:
    classes = {
        "Person": {"Mandel", "Rothman"},
        "City": {"Berlin", "Baltimore"},
        "Country": {"Germany"},
    }
    relations = [
        Relation("born_in", "Person", "City"),
        Relation("live_in", "Person", "City"),
        Relation("located_in", "City", "City"),
        Relation("capital_of", "City", "Country"),
    ]
    facts = [
        # "Mandel" is ambiguous: Leonard Mandel (Berlin) vs Johnny
        # Mandel (Baltimore) — extracted as one name
        Fact("born_in", "Mandel", "Person", "Berlin", "City", 0.9),
        Fact("born_in", "Mandel", "Person", "Baltimore", "City", 0.85),
        Fact("born_in", "Rothman", "Person", "Baltimore", "City", 0.9),
    ]
    rules = [
        # the weak Sherlock rule from the paper's Figure 5(a)
        HornClause.make(
            Atom("located_in", ("x", "y")),
            [Atom("born_in", ("z", "x")), Atom("born_in", ("z", "y"))],
            0.52,
            {"x": "City", "y": "City", "z": "Person"},
        ),
        HornClause.make(
            Atom("live_in", ("x", "y")),
            [Atom("born_in", ("x", "y"))],
            1.40,
            {"x": "Person", "y": "City"},
        ),
        # propagation: live where born, then lift through located_in
        HornClause.make(
            Atom("live_in", ("x", "y")),
            [Atom("live_in", ("x", "z")), Atom("located_in", ("z", "y"))],
            0.8,
            {"x": "Person", "y": "City", "z": "City"},
        ),
    ]
    constraints = (
        [FunctionalConstraint("born_in", arg=1, degree=1)] if with_constraints else []
    )
    return KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=constraints,
    )


def main() -> None:
    print("=== Without quality control: the error propagates ===")
    system = ProbKB(build_kb(with_constraints=False), backend="single")
    system.ground()
    lineage = system.lineage()
    facts_by_id = system._facts_by_id()

    wrong_id = next(
        fact_id
        for fact_id, fact in facts_by_id.items()
        if (fact.relation, fact.subject, fact.object)
        == ("located_in", "Baltimore", "Berlin")
    )
    wrong = facts_by_id[wrong_id]
    print(f"\nThe wrong fact: {wrong.relation}({wrong.subject}, {wrong.object})")
    print("\nWhy it was derived (backward lineage):")
    print(lineage.derivation_tree(wrong_id, max_depth=2).render(indent=1))
    affected = lineage.affected_by(wrong_id)
    print("\nWhat it poisoned (forward propagation):")
    for fact_id in sorted(affected):
        fact = facts_by_id[fact_id]
        print(f"  -> {fact.relation}({fact.subject}, {fact.object})")
    print(f"\nlineage credibility of the wrong fact: "
          f"{lineage.credibility(wrong_id):.2f}")

    print("\n=== With a functional constraint on born_in ===")
    system = ProbKB(build_kb(with_constraints=True), backend="single")
    removed = system.apply_constraints()
    system.ground()
    print(f"Query 3 removed {removed} facts of the ambiguous entity 'Mandel'.")
    surviving = {
        (fact.relation, fact.subject, fact.object) for fact in system.all_facts()
    }
    assert ("located_in", "Baltimore", "Berlin") not in surviving
    print("The wrong located_in fact is never derived; surviving facts:")
    for triple in sorted(surviving):
        print(f"  {triple[0]}({triple[1]}, {triple[2]})")


if __name__ == "__main__":
    main()
