"""Incremental knowledge expansion.

Knowledge bases grow continuously: new extractions arrive long after
the initial load.  Rather than re-grounding from scratch, ProbKB's
semi-naive delta machinery derives exactly the consequences of the new
evidence.  This example streams facts about a new writer into an
already-expanded KB and watches only the delta get processed.

Run:  python examples/incremental_expansion.py
"""

from repro import Fact, ProbKB
from repro.datasets import paper_kb


def main() -> None:
    kb = paper_kb()
    kb.classes["Writer"].update({"Saul Bellow", "Grace Paley"})
    system = ProbKB(kb, backend="single")
    result = system.ground()
    print(f"initial expansion: {system.fact_count()} facts "
          f"({result.total_new_facts} inferred)")

    batches = [
        [Fact("born_in", "Saul Bellow", "Writer", "Brooklyn", "Place", 0.88)],
        [
            Fact("born_in", "Grace Paley", "Writer", "New York City", "City", 0.93),
            Fact("live_in", "Grace Paley", "Writer", "Brooklyn", "Place", 0.81),
        ],
    ]
    for number, batch in enumerate(batches, start=1):
        before = system.fact_count()
        outcome = system.add_evidence(batch)
        print(f"\nevidence batch {number}: {len(batch)} new extraction(s)")
        for stats in outcome.iterations:
            if stats.new_facts:
                print(f"  delta iteration {stats.iteration}: "
                      f"+{stats.new_facts} facts")
        print(f"  KB grew {before} -> {system.fact_count()} facts "
              f"({outcome.factors} factors rebuilt)")

    print("\nfinal knowledge about the newcomers:")
    for name in ("Saul Bellow", "Grace Paley"):
        for fact, _ in system.query_facts(subject=name):
            marker = "extracted" if fact.weight is not None else "inferred"
            print(f"  [{marker}] {fact.relation}({fact.subject}, {fact.object})")


if __name__ == "__main__":
    main()
