"""Quickstart: the paper's running example (Table 1 / Figure 3).

Builds the Ruth Gruber knowledge base, grounds it with the batch SQL
algorithm, prints the generated SQL, and runs marginal inference.

Run:  python examples/quickstart.py
"""

from repro import (
    Atom,
    ExpansionSession,
    Fact,
    HornClause,
    InferenceConfig,
    KnowledgeBase,
    Relation,
)


def build_kb() -> KnowledgeBase:
    """The probabilistic KB of Table 1."""
    classes = {
        "Writer": {"Ruth Gruber"},
        "City": {"New York City"},
        "Place": {"Brooklyn"},
    }
    relations = [
        Relation("born_in", "Writer", "Place"),
        Relation("live_in", "Writer", "Place"),
        Relation("grow_up_in", "Writer", "Place"),
        Relation("located_in", "Place", "City"),
    ]
    facts = [
        Fact("born_in", "Ruth Gruber", "Writer", "New York City", "City", 0.96),
        Fact("born_in", "Ruth Gruber", "Writer", "Brooklyn", "Place", 0.93),
    ]

    def live_where_born(object_class, weight):
        return HornClause.make(
            Atom("live_in", ("x", "y")),
            [Atom("born_in", ("x", "y"))],
            weight,
            {"x": "Writer", "y": object_class},
        )

    def places_nest(q_rel, weight):
        # located_in(x, y) <- q(z, x) ∧ q(z, y)
        return HornClause.make(
            Atom("located_in", ("x", "y")),
            [Atom(q_rel, ("z", "x")), Atom(q_rel, ("z", "y"))],
            weight,
            {"x": "Place", "y": "City", "z": "Writer"},
        )

    rules = [
        live_where_born("Place", 1.40),
        live_where_born("City", 1.53),
        places_nest("live_in", 0.32),
        places_nest("born_in", 0.52),
    ]
    return KnowledgeBase(
        classes=classes, relations=relations, facts=facts, rules=rules
    )


def main() -> None:
    kb = build_kb()
    print("Input KB:", kb)

    with ExpansionSession(
        kb, inference=InferenceConfig(num_sweeps=2000, seed=0)
    ) as session:
        print("\nGenerated grounding SQL (Query 1-3, exactly the paper's):\n")
        print(session.probkb.generated_sql()["Query 1-3"])

        result = session.ground()
        print(
            f"\nGrounding: {result.total_new_facts} new facts in "
            f"{len(result.iterations)} iterations, "
            f"{result.factors} ground factors"
        )

        marginals = session.infer()
        print("\nKnowledge expansion results (marginal probabilities):")
        for fact, probability in sorted(
            marginals.items(), key=lambda item: -item[1]
        ):
            marker = "extracted" if fact.weight is not None else "INFERRED"
            print(f"  P={probability:.2f}  [{marker}]  {fact.relation}"
                  f"({fact.subject}, {fact.object})")


if __name__ == "__main__":
    main()
