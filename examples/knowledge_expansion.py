"""End-to-end knowledge expansion with quality control.

Generates the ReVerb-Sherlock stand-in KB (noisy extractions, learned
rules with imperfect scores, functional constraints), then runs the
full ProbKB pipeline twice — raw and with quality control — and
compares the precision of the expanded knowledge using the ground-truth
judge, reproducing the Section 6.2 methodology at example scale.

Run:  python examples/knowledge_expansion.py
"""

from repro import GroundingConfig, ProbKB
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.quality import (
    QualityConfig,
    cleaning_report,
    judge_precision,
    run_quality_experiment,
)


def main() -> None:
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=250, seed=7), seed=7)
    )
    kb = generated.kb
    print("Generated KB:", kb)
    print(
        f"  with {len(generated.ambiguous_surfaces)} ambiguous names and "
        f"{len(generated.injected_error_keys)} injected extraction errors"
    )

    report = cleaning_report(kb.rules, theta=0.5, rule_is_correct=generated.rule_is_correct)
    print(
        f"\nRule cleaning at top 50%: keeps {report['kept']} of {report['total']} rules, "
        f"rule precision {report['rule_precision']:.2f}, recall {report['rule_recall']:.2f}"
    )

    configurations = [
        QualityConfig(use_constraints=False, theta=1.0, label="raw (no quality control)"),
        QualityConfig(use_constraints=True, theta=0.5, label="constraints + top-50% rules"),
    ]
    for config in configurations:
        outcome = run_quality_experiment(generated, config, max_iterations=10)
        print(f"\n=== {config.label} ===")
        print(f"  inferred {outcome.total_new_facts} new facts over "
              f"{len(outcome.points)} iterations")
        for point in outcome.points:
            print(
                f"    iteration {point.iteration}: {point.new_facts:6d} new, "
                f"precision {point.precision:.2f}"
            )
        print(f"  overall precision: {outcome.overall_precision:.2f}")

    # a peek at actual expanded knowledge under quality control
    from repro.quality import cleaned_kb

    system = ProbKB(
        cleaned_kb(kb, 0.5), grounding=GroundingConfig(apply_constraints=True)
    )
    system.ground(max_iterations=10)
    inferred = system.inferred_facts()
    precision, judged = judge_precision(inferred, generated.judge)
    print(f"\nFinal expanded KB: {system.fact_count()} facts "
          f"({len(inferred)} inferred, precision {precision:.2f})")
    print("Sample inferred facts:")
    for fact in inferred[:8]:
        verdict = generated.judge.judge(fact)
        print(f"  [{verdict:9s}] {fact.relation}({fact.subject}, {fact.object})")


if __name__ == "__main__":
    main()
