"""Learning MLN rule weights from labelled facts.

ProbKB consumes weights produced by the rule learner (Sherlock); this
example closes the loop: ground the KB, label the facts with the
oracle judge (standing in for human annotation), and run tied-weight
pseudo-likelihood learning.  Correct rules earn high weights, wrong
rules collapse toward zero — a learned alternative to the paper's
score-threshold rule cleaning.

Run:  python examples/weight_learning.py
"""

from repro import GroundingConfig, ProbKB
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig
from repro.learn import build_tied_graph, learn_weights, observed_from_judge


def main() -> None:
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=120, seed=6), seed=6)
    )
    system = ProbKB(
        generated.kb, grounding=GroundingConfig(apply_constraints=True)
    )
    system.ground(max_iterations=6)
    print(f"grounded KB: {system.fact_count()} facts, "
          f"{system.factor_count()} factors")

    tied = build_tied_graph(system)
    observed = observed_from_judge(system, generated.judge)
    print(f"training on {len(observed)} labelled facts "
          f"({sum(observed.values())} acceptable)")

    result = learn_weights(tied, observed, iterations=40, learning_rate=0.08)
    print(f"pseudo-log-likelihood: {result.pll_trace[0]:.1f} -> "
          f"{result.pll_trace[-1]:.1f} over {result.iterations} iterations\n")

    fired = sorted({p for p in tied.parameter_of if p >= 0})
    print(f"{'learned':>8s}  {'given':>6s}  {'label':7s}  rule")
    scored = sorted(fired, key=lambda i: -result.weights[i])
    for index in scored[:6] + scored[-6:]:
        rule = tied.rules[index]
        label = "correct" if generated.rule_is_correct.get(rule) else "WRONG"
        print(f"{result.weights[index]:8.2f}  {rule.weight:6.2f}  {label:7s}  {rule}")

    correct = [result.weights[i] for i in fired
               if generated.rule_is_correct.get(tied.rules[i])]
    wrong = [result.weights[i] for i in fired
             if not generated.rule_is_correct.get(tied.rules[i], True)]
    print(f"\nmean learned weight: correct rules {sum(correct)/len(correct):.2f}, "
          f"wrong rules {sum(wrong)/len(wrong):.2f}")


if __name__ == "__main__":
    main()
