"""MPP execution and the redistributed-materialized-view optimization.

Shows what Section 4.4 is about: the same grounding query runs on the
shared-nothing cluster with and without redistributed materialized
views of TΠ, and the EXPLAIN ANALYZE plans show where motions appear
— exactly the comparison of the paper's Figure 4.  The same plans can
also run on real worker processes (`MPPConfig(num_workers=N)`), with
bit-identical results.

Run:  python examples/mpp_tuning.py
"""

from repro import BackendConfig, GroundingConfig, MPPConfig, ProbKB
from repro.core import ground_atoms_plan
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig

NO_CONSTRAINTS = GroundingConfig(apply_constraints=False)


def run_with(kb, policy: str):
    config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=8, policy=policy))
    system = ProbKB(kb, backend=config, grounding=NO_CONSTRAINTS)
    backend = system.backend
    before = backend.elapsed_seconds
    backend.query(ground_atoms_plan(3, backend, mln_alias="M3"))
    elapsed = backend.elapsed_seconds - before
    return elapsed, backend.explain_last()


def main() -> None:
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=400, seed=1), seed=1)
    )
    kb = generated.kb
    print(f"KB: {kb}\n")

    tuned_s, tuned_plan = run_with(kb, policy="matviews")
    naive_s, naive_plan = run_with(kb, policy="naive")

    print("Query 1-3 WITH redistributed matviews "
          f"(ProbKB-p): {tuned_s * 1e3:.1f} ms modelled")
    print(tuned_plan)
    print()
    print(f"Query 1-3 WITHOUT matviews (naive MPP): {naive_s * 1e3:.1f} ms modelled")
    print(naive_plan)
    print()
    print(f"Collocation speedup: {naive_s / tuned_s:.2f}x")

    print("\nFull grounding across segment counts (speedup is sub-linear "
          "because intermediate results must be re-shipped):")
    for nseg in (1, 2, 4, 8):
        config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=nseg))
        system = ProbKB(kb, backend=config, grounding=NO_CONSTRAINTS)
        system.ground(max_iterations=2)
        print(f"  {nseg:2d} segments: {system.elapsed_seconds:7.2f} s modelled")

    print("\nThe same plans on real worker processes (num_workers=2):")
    pooled = BackendConfig(
        kind="mpp", mpp=MPPConfig(num_segments=8, num_workers=2)
    )
    with ProbKB(kb, backend=pooled, grounding=NO_CONSTRAINTS) as system:
        result = system.ground(max_iterations=2)
        info = system.backend.executor_info()
        print(f"  executor: {info['mode']} ({info['workers']} workers, "
              f"{info['segments']} segments)")
        print(f"  {result.total_new_facts} new facts, "
              f"{system.elapsed_seconds:.2f} s modelled "
              "(bit-identical to the serial executor)")


if __name__ == "__main__":
    main()
