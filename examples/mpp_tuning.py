"""MPP execution and the redistributed-materialized-view optimization.

Shows what Section 4.4 is about: the same grounding query runs on the
shared-nothing cluster with and without redistributed materialized
views of TΠ, and the EXPLAIN ANALYZE plans show where motions appear
— exactly the comparison of the paper's Figure 4.

Run:  python examples/mpp_tuning.py
"""

from repro import ProbKB
from repro.core import MPPBackend, ground_atoms_plan
from repro.datasets import ReVerbSherlockConfig, generate
from repro.datasets.world import WorldConfig


def run_with(kb, use_matviews: bool):
    backend = MPPBackend(nseg=8, use_matviews=use_matviews)
    system = ProbKB(kb, backend=backend, apply_constraints=False)
    before = backend.elapsed_seconds
    backend.query(ground_atoms_plan(3, backend, mln_alias="M3"))
    elapsed = backend.elapsed_seconds - before
    return elapsed, backend.explain_last()


def main() -> None:
    generated = generate(
        ReVerbSherlockConfig(world=WorldConfig(n_people=400, seed=1), seed=1)
    )
    kb = generated.kb
    print(f"KB: {kb}\n")

    tuned_s, tuned_plan = run_with(kb, use_matviews=True)
    naive_s, naive_plan = run_with(kb, use_matviews=False)

    print("Query 1-3 WITH redistributed matviews "
          f"(ProbKB-p): {tuned_s * 1e3:.1f} ms modelled")
    print(tuned_plan)
    print()
    print(f"Query 1-3 WITHOUT matviews (naive MPP): {naive_s * 1e3:.1f} ms modelled")
    print(naive_plan)
    print()
    print(f"Collocation speedup: {naive_s / tuned_s:.2f}x")

    print("\nFull grounding across segment counts (speedup is sub-linear "
          "because intermediate results must be re-shipped):")
    for nseg in (1, 2, 4, 8):
        system = ProbKB(
            kb, backend=MPPBackend(nseg=nseg), apply_constraints=False
        )
        system.ground(max_iterations=2)
        print(f"  {nseg:2d} segments: {system.elapsed_seconds:7.2f} s modelled")


if __name__ == "__main__":
    main()
