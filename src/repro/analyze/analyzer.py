"""The analyzer entry point: run every pass over a KB, return a report.

``analyze`` is pure — it never mutates the knowledge base (a property
test asserts this), so running it in the ``"warn"`` pre-flight gate is
guaranteed to leave grounding output bit-identical to ``"off"``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.model import KnowledgeBase
from .constraints import check_constraints
from .depgraph import check_dependencies
from .findings import AnalysisReport, Finding
from .plans import PlanEnvironment, check_plans
from .rules import check_dead_rules, check_duplicates
from .safety import check_safety
from .typecheck import SchemaIndex, check_types
from .verify import check_plan_soundness


def analyze(
    kb: KnowledgeBase,
    include_infos: bool = True,
    environment: Optional[PlanEnvironment] = None,
) -> AnalysisReport:
    """Statically analyze a KB program before grounding.

    Passes: safety/shape (PKB001-005, 007, 015), type-checking
    (PKB006), duplicates (PKB008), dead rules (PKB009), constraint
    consistency (PKB010-012), dependency analysis (PKB013-014), static
    plan analysis (PKB101-105), and plan-IR verification (PKB201-212)
    for ``environment`` (defaulting to the paper's 8-segment MPP
    cluster with matviews).
    """
    index = SchemaIndex(kb)
    findings: List[Finding] = []
    findings.extend(check_safety(kb, index))
    findings.extend(check_types(kb, index))
    findings.extend(check_duplicates(kb))
    findings.extend(check_dead_rules(kb))
    findings.extend(check_constraints(kb, index))
    findings.extend(check_plans(kb, environment, include_infos=include_infos))
    findings.extend(check_plan_soundness(kb, environment))
    if include_infos:
        findings.extend(check_dependencies(kb, index))
    findings.sort(
        key=lambda f: (
            f.rule_index if f.rule_index is not None else len(kb.rules),
            f.code,
        )
    )
    stats = kb.stats()
    return AnalysisReport(
        findings=tuple(findings),
        stats={
            "rules": stats["rules"],
            "constraints": stats["constraints"],
            "facts": stats["facts"],
            "relations": stats["relations"],
            "classes": stats["classes"],
        },
    )
