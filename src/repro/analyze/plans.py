"""Static plan analysis of a KB program's grounding queries.

The other analyzer passes look at the *rules*.  This pass looks at the
*queries* those rules will become: it compiles each nonempty partition's
batch grounding queries (Queries 1-i and 2-i of Algorithm 1) into
logical plans — without a backend, without executing anything — and runs
the MPP static planner (:mod:`repro.mpp.static_planner`) over statistics
synthesized straight from the knowledge base.

Because entity/class/relation *names* map bijectively onto the integer
ids the loader would mint, per-column distinct counts and skew computed
over names equal those of the loaded tables, so the estimates here match
what :func:`~repro.mpp.static_planner.collect_mpp_statistics` would
report after loading.

Outputs:

* :func:`estimate_plans` — a :class:`StaticPlanReport` with a
  Figure-4-style EXPLAIN tree, estimated rows/seconds per operator, and
  every predicted motion, for ``repro explain`` and ``GET /explain``.
* :func:`check_plans` — PKB101-105 findings for the analyzer: broadcast
  of a large relation, non-collocated batch join over the facts table,
  predicted cardinality explosion, skewed redistribution key, and an
  informational cost summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.backends import Backend, TPI_VIEWS
from ..core.clauses import PARTITION_INDEXES, ClauseError, classify_clause
from ..core.model import KnowledgeBase
from ..core.relmodel import TP_SCHEMA, mln_schema
from ..core.sqlgen import ground_atoms_plan, ground_factors_plan
from ..mpp.plannodes import PhysicalNode
from ..mpp.static_planner import JoinEstimate, MotionEstimate, StaticPlanner
from ..relational.plan import PlanNode, Scan
from ..relational.statistics import (
    SINGLE_NODE_DIST,
    StatisticsCatalog,
    TableDistribution,
    TableStats,
    table_stats,
)
from ..relational.types import ExecutionError, Row
from .findings import Finding

#: Stored tables that hold the facts (TΠ itself plus its Section-4.4
#: redistributed materialized views).
FACTS_TABLES = frozenset({"TP"} | set(TPI_VIEWS))

PLAN_ENVIRONMENT_KINDS = ("single", "mpp")


@dataclass(frozen=True)
class PlanEnvironment:
    """The deployment the plans are analyzed *for*, plus thresholds.

    Mirrors :class:`~repro.core.config.BackendConfig` without importing
    it (the analyzer must stay usable on a bare KB).  The thresholds are
    deliberately conservative: toy KBs never trip them, the paper-scale
    pathologies (Figure 4's broadcast, a fan-out cross product) do.
    """

    kind: str = "mpp"
    num_segments: int = 8
    use_matviews: bool = True
    #: a broadcast/redistribute moving at least this many rows is "large"
    large_motion_rows: int = 10_000
    #: a join is an explosion when output > factor * (left + right) ...
    explosion_factor: float = 10.0
    #: ... and at least this many rows (tiny KBs can never explode)
    explosion_min_rows: int = 5_000
    #: most-common-value share that counts as a skewed join key
    skew_mcv_fraction: float = 0.5
    #: minimum join input rows before skew matters
    skew_min_rows: int = 1_000

    def __post_init__(self) -> None:
        if self.kind not in PLAN_ENVIRONMENT_KINDS:
            raise ValueError(
                f"unknown plan environment kind {self.kind!r} "
                f"(use one of {PLAN_ENVIRONMENT_KINDS})"
            )
        if self.num_segments < 1:
            raise ValueError(
                f"num_segments must be >= 1, got {self.num_segments}"
            )

    @property
    def effective_segments(self) -> int:
        return self.num_segments if self.kind == "mpp" else 1

    @staticmethod
    def from_backend_config(config: Any) -> "PlanEnvironment":
        """Derive the environment from a ``BackendConfig`` (duck-typed)."""
        if getattr(config, "kind", "single") != "mpp":
            return PlanEnvironment(kind="single", num_segments=1, use_matviews=False)
        mpp = config.mpp
        return PlanEnvironment(
            kind="mpp",
            num_segments=mpp.num_segments,
            use_matviews=mpp.use_matviews,
        )

    @staticmethod
    def from_backend(backend: Backend) -> "PlanEnvironment":
        """Derive the environment from a live backend."""
        if not getattr(backend, "is_mpp", False):
            return PlanEnvironment(kind="single", num_segments=1, use_matviews=False)
        return PlanEnvironment(
            kind="mpp",
            num_segments=int(getattr(backend, "nseg", 8)),
            use_matviews=bool(getattr(backend, "use_matviews", False)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "num_segments": self.num_segments,
            "use_matviews": self.use_matviews,
        }


class _EnvironmentScans(Backend):
    """Compile-time stand-in for a backend.

    ``sqlgen`` only needs :meth:`tpi_scan` to build the grounding plans;
    this shim answers exactly as :class:`~repro.core.backends.MPPBackend`
    would after ``create_tpi_views`` — without any tables existing.
    """

    def __init__(self, environment: PlanEnvironment) -> None:
        self.name = f"plan:{environment.kind}"
        self.is_mpp = environment.kind == "mpp"
        self._environment = environment

    def tpi_scan(self, alias: str, entity_join_columns: Sequence[str]) -> Scan:
        env = self._environment
        if not (env.kind == "mpp" and env.use_matviews):
            return Scan("TP", alias)
        wants = frozenset(entity_join_columns)
        if wants == frozenset({"x"}):
            return Scan("Tx", alias)
        if wants == frozenset({"y"}):
            return Scan("Ty", alias)
        if wants == frozenset({"x", "y"}):
            return Scan("Txy", alias)
        return Scan("T0", alias)


def _classified_partitions(kb: KnowledgeBase) -> Dict[int, List[Row]]:
    """MLN identifier rows per partition, deduplicated like the loader
    (Proposition 1 requires M_i duplicate-free).  Rules that do not
    classify are the safety pass's business (PKB001-007) and are skipped."""
    rows: Dict[int, List[Row]] = {i: [] for i in PARTITION_INDEXES}
    seen: Dict[int, Set[Row]] = {i: set() for i in PARTITION_INDEXES}
    for rule in kb.rules:
        try:
            classified = classify_clause(rule)
        except ClauseError:
            continue
        row: Row = (
            tuple(classified.relations)
            + tuple(classified.classes)
            + (classified.weight,)
        )
        if row in seen[classified.partition]:
            continue
        seen[classified.partition].add(row)
        rows[classified.partition].append(row)
    return rows


def kb_statistics(
    kb: KnowledgeBase, environment: Optional[PlanEnvironment] = None
) -> StatisticsCatalog:
    """Synthesize the statistics catalog the loaded KB *would* have.

    Runs before any table exists (the pre-flight gate fires before
    :class:`~repro.core.relmodel.RelationalKB` loads), so the rows are
    rebuilt from the KB with names standing in for dictionary ids.
    """
    env = environment or PlanEnvironment()
    mpp = env.kind == "mpp"
    catalog = StatisticsCatalog(num_segments=env.effective_segments)

    # TΠ — deduplicated on the fact key, exactly like the loader
    fact_keys: Set[Tuple[str, str, str, str, str]] = set()
    tp_rows: List[Row] = []
    for fact in kb.facts:
        key = (
            fact.relation,
            fact.subject,
            fact.subject_class,
            fact.object,
            fact.object_class,
        )
        if key in fact_keys:
            continue
        fact_keys.add(key)
        tp_rows.append((len(tp_rows),) + key + (fact.weight,))
    tp_stats = table_stats(TP_SCHEMA.column_names, tp_rows)
    catalog.add(
        "TP",
        tp_stats,
        TableDistribution.hash_on(["I"]) if mpp else SINGLE_NODE_DIST,
    )
    if mpp and env.use_matviews:
        # the views mirror TΠ's content under a different distribution
        for view_name, keys in TPI_VIEWS.items():
            catalog.add(view_name, tp_stats, TableDistribution.hash_on(keys))

    # MLN tables — replicated on MPP (dimension-table optimization)
    for partition, rows in _classified_partitions(kb).items():
        if not rows:
            continue
        stats = table_stats(mln_schema(partition).column_names, rows)
        distribution = (
            TableDistribution.replicated() if mpp else SINGLE_NODE_DIST
        )
        catalog.add(f"M{partition}", stats, distribution)
    return catalog


@dataclass
class QueryPlanEstimate:
    """The static planner's verdict on one grounding query."""

    name: str  # e.g. "Query 1-3"
    partition: int
    root: PhysicalNode
    estimated_rows: int
    estimated_seconds: float
    joins: List[JoinEstimate] = field(default_factory=list)
    motions: List[MotionEstimate] = field(default_factory=list)

    def explain(self) -> str:
        return self.root.explain()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "partition": self.partition,
            "estimated_rows": self.estimated_rows,
            "estimated_seconds": self.estimated_seconds,
            "plan": self.root.to_dict(),
            "joins": [
                {
                    "detail": j.detail,
                    "left_rows": j.left_rows,
                    "right_rows": j.right_rows,
                    "est_rows": j.est_rows,
                    "collocated": j.collocated,
                    "key_mcv": j.key_mcv,
                    "source_tables": list(j.source_tables),
                }
                for j in self.joins
            ],
            "motions": [
                {
                    "kind": m.kind,
                    "rows": m.rows,
                    "shipped": m.shipped,
                    "source_tables": list(m.source_tables),
                    "detail": m.detail,
                }
                for m in self.motions
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "QueryPlanEstimate":
        joins = [
            JoinEstimate(
                detail=j["detail"],
                left_rows=float(j["left_rows"]),
                right_rows=float(j["right_rows"]),
                est_rows=float(j["est_rows"]),
                collocated=bool(j["collocated"]),
                key_mcv=float(j.get("key_mcv", 0.0)),
                source_tables=tuple(j.get("source_tables", ())),
            )
            for j in payload.get("joins", ())
        ]
        motions = [
            MotionEstimate(
                kind=m["kind"],
                rows=float(m["rows"]),
                shipped=float(m["shipped"]),
                source_tables=tuple(m.get("source_tables", ())),
                detail=m.get("detail", ""),
            )
            for m in payload.get("motions", ())
        ]
        return QueryPlanEstimate(
            name=str(payload["name"]),
            partition=int(payload["partition"]),
            root=PhysicalNode.from_dict(payload["plan"]),
            estimated_rows=int(payload["estimated_rows"]),
            estimated_seconds=float(payload["estimated_seconds"]),
            joins=joins,
            motions=motions,
        )


@dataclass
class StaticPlanReport:
    """Every grounding query's static plan, for one environment."""

    environment: PlanEnvironment
    queries: List[QueryPlanEstimate] = field(default_factory=list)

    @property
    def total_estimated_seconds(self) -> float:
        return sum(q.estimated_seconds for q in self.queries)

    def query(self, name: str) -> QueryPlanEstimate:
        for q in self.queries:
            if q.name == name:
                return q
        raise KeyError(f"no plan for query {name!r}")

    def render(self) -> str:
        env = self.environment
        lines = [
            f"static plan analysis — backend={env.kind}, "
            f"segments={env.effective_segments}, "
            f"matviews={'on' if env.use_matviews else 'off'}"
        ]
        for q in self.queries:
            lines.append("")
            lines.append(
                f"{q.name}  (est rows={q.estimated_rows}, "
                f"est {q.estimated_seconds * 1e3:.2f}ms)"
            )
            lines.append(q.explain())
        lines.append("")
        lines.append(
            f"total estimated {self.total_estimated_seconds * 1e3:.2f}ms "
            f"over {len(self.queries)} queries"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "environment": self.environment.to_dict(),
            "queries": [q.to_dict() for q in self.queries],
            "total_estimated_seconds": self.total_estimated_seconds,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "StaticPlanReport":
        env = payload.get("environment", {})
        return StaticPlanReport(
            environment=PlanEnvironment(
                kind=str(env.get("kind", "mpp")),
                num_segments=int(env.get("num_segments", 8)),
                use_matviews=bool(env.get("use_matviews", True)),
            ),
            queries=[
                QueryPlanEstimate.from_dict(q)
                for q in payload.get("queries", ())
            ],
        )


def partition_plans(
    kb: KnowledgeBase, environment: Optional[PlanEnvironment] = None
) -> List[Tuple[str, int, PlanNode]]:
    """Compile Queries 1-i / 2-i for every nonempty partition."""
    env = environment or PlanEnvironment()
    scans = _EnvironmentScans(env)
    plans: List[Tuple[str, int, PlanNode]] = []
    for partition, rows in sorted(_classified_partitions(kb).items()):
        if not rows:
            continue
        plans.append(
            (f"Query 1-{partition}", partition, ground_atoms_plan(partition, scans))
        )
        plans.append(
            (f"Query 2-{partition}", partition, ground_factors_plan(partition, scans))
        )
    return plans


def estimate_plans(
    kb: KnowledgeBase, environment: Optional[PlanEnvironment] = None
) -> StaticPlanReport:
    """Statically plan and price every grounding query of this KB."""
    env = environment or PlanEnvironment()
    catalog = kb_statistics(kb, env)
    planner = StaticPlanner(catalog, env.effective_segments)
    queries: List[QueryPlanEstimate] = []
    for name, partition, plan in partition_plans(kb, env):
        static = planner.plan(plan)
        queries.append(
            QueryPlanEstimate(
                name=name,
                partition=partition,
                root=static.root,
                estimated_rows=static.estimated_rows,
                estimated_seconds=static.estimated_seconds,
                joins=static.joins,
                motions=static.motions,
            )
        )
    return StaticPlanReport(environment=env, queries=queries)


def check_plans(
    kb: KnowledgeBase,
    environment: Optional[PlanEnvironment] = None,
    include_infos: bool = True,
) -> List[Finding]:
    """Turn the static plan estimates into PKB101-105 findings."""
    env = environment or PlanEnvironment()
    try:
        report = estimate_plans(kb, env)
    except ExecutionError:
        # a KB too broken to plan is the other passes' business
        return []
    findings: List[Finding] = []
    for query in report.queries:
        base = {"query": query.name, "partition": query.partition}
        for motion in query.motions:
            tables = ", ".join(motion.source_tables) or "an intermediate"
            if motion.kind == "broadcast" and motion.rows >= env.large_motion_rows:
                findings.append(
                    Finding(
                        code="PKB101",
                        message=(
                            f"{query.name} predicts a broadcast of "
                            f"~{int(motion.rows)} rows from {tables} "
                            f"(threshold {env.large_motion_rows}); consider "
                            f"the matviews policy so the join collocates"
                        ),
                        details={
                            **base,
                            "rows": int(motion.rows),
                            "shipped": int(motion.shipped),
                            "source_tables": list(motion.source_tables),
                        },
                    )
                )
            if (
                motion.kind == "redistribute"
                and motion.rows >= env.large_motion_rows
                and FACTS_TABLES & set(motion.source_tables)
            ):
                findings.append(
                    Finding(
                        code="PKB102",
                        message=(
                            f"{query.name} predicts a non-collocated batch "
                            f"join: ~{int(motion.rows)} facts rows from "
                            f"{tables} are redistributed {motion.detail} "
                            f"(Section 4.4's matviews keep this join local)"
                        ),
                        details={
                            **base,
                            "rows": int(motion.rows),
                            "shipped": int(motion.shipped),
                            "source_tables": list(motion.source_tables),
                        },
                    )
                )
        for join in query.joins:
            input_rows = join.left_rows + join.right_rows
            if join.est_rows >= env.explosion_min_rows and join.est_rows > (
                env.explosion_factor * max(input_rows, 1.0)
            ):
                findings.append(
                    Finding(
                        code="PKB103",
                        message=(
                            f"{query.name} predicts a cardinality explosion: "
                            f"join {join.detail} is estimated to emit "
                            f"~{int(join.est_rows)} rows from "
                            f"~{int(input_rows)} input rows "
                            f"(over {env.explosion_factor:g}x); grounding "
                            f"this program would blow up the factor graph"
                        ),
                        details={
                            **base,
                            "join": join.detail,
                            "left_rows": int(join.left_rows),
                            "right_rows": int(join.right_rows),
                            "est_rows": int(join.est_rows),
                        },
                    )
                )
            if (
                not join.collocated
                and join.key_mcv >= env.skew_mcv_fraction
                and input_rows >= env.skew_min_rows
                and any(m.kind == "redistribute" for m in join.motions)
            ):
                findings.append(
                    Finding(
                        code="PKB104",
                        message=(
                            f"{query.name} redistributes on a skewed join "
                            f"key ({join.detail}): the most common value "
                            f"holds {join.key_mcv:.0%} of the rows, so one "
                            f"segment receives most of the data"
                        ),
                        details={
                            **base,
                            "join": join.detail,
                            "key_mcv": join.key_mcv,
                            "input_rows": int(input_rows),
                        },
                    )
                )
    if include_infos and report.queries:
        findings.append(
            Finding(
                code="PKB105",
                message=(
                    f"static plan summary: {len(report.queries)} grounding "
                    f"queries, total estimated "
                    f"{report.total_estimated_seconds * 1e3:.2f}ms on "
                    f"{env.kind} ({env.effective_segments} segments, "
                    f"matviews {'on' if env.use_matviews else 'off'})"
                ),
                details={
                    "queries": len(report.queries),
                    "estimated_seconds": report.total_estimated_seconds,
                    "environment": env.to_dict(),
                },
            )
        )
    return findings
