"""Typed findings: the analyzer's output vocabulary.

Every defect the static analyzer can detect has a stable ``PKB``-prefixed
code with a fixed default severity, so CI gates, the serving layer, and
humans reading a report all key on the same identifiers.  The registry
below is the single source of truth; ``docs/analyze.md`` renders it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: code -> (default severity, one-line title).  Codes are append-only:
#: once published a code never changes meaning or disappears.
CODES: Dict[str, Tuple[str, str]] = {
    "PKB001": (ERROR, "rule references an unknown relation"),
    "PKB002": (ERROR, "atom arity mismatch (relations are binary)"),
    "PKB003": (ERROR, "unsafe rule: head variable unbound in the body"),
    "PKB004": (ERROR, "untyped variable (no class annotation)"),
    "PKB005": (ERROR, "rule shape outside the MLN partitions M1-M6"),
    "PKB006": (ERROR, "ill-typed rule: variable classes can never satisfy "
                      "the relation signatures"),
    "PKB007": (ERROR, "rule references an unknown class"),
    "PKB008": (WARNING, "duplicate rule (structurally equivalent under "
                        "canonical renaming)"),
    "PKB009": (WARNING, "dead rule: can never fire in any fixpoint "
                        "iteration"),
    "PKB010": (ERROR, "constraint references an unknown relation"),
    "PKB011": (ERROR, "constraint references an unknown class"),
    "PKB012": (ERROR, "rule head is guaranteed by its own body to violate "
                      "a functional constraint"),
    "PKB013": (INFO, "recursive rule dependency cycle"),
    "PKB014": (INFO, "static fixpoint-depth and grounding-size bounds"),
    "PKB015": (WARNING, "non-finite or non-positive rule weight"),
    # PKB1xx: static plan analysis (repro.analyze.plans)
    "PKB101": (WARNING, "predicted broadcast of a large relation"),
    "PKB102": (WARNING, "non-collocated batch join redistributes the facts "
                        "table"),
    "PKB103": (ERROR, "predicted cardinality explosion in a grounding join"),
    "PKB104": (WARNING, "redistribution on a heavily skewed join key"),
    "PKB105": (INFO, "static plan cost summary"),
}

# PKB2xx: plan-IR verification (PlanCheck).  The code tables live next
# to the verifiers — PKB201-208 (logical plans) in
# ``repro.relational.verify`` and PKB209-212 (MPP physical plans) in
# ``repro.mpp.verify`` — and are folded in here so AnalysisReport,
# the analysis gate, and docs/plan-ir.md all share one registry.


def _plancheck_codes() -> Dict[str, Tuple[str, str]]:
    from ..mpp.verify import PHYSICAL_CODES
    from ..relational.verify import LOGICAL_CODES

    return {**LOGICAL_CODES, **PHYSICAL_CODES}


CODES.update(_plancheck_codes())


@dataclass(frozen=True)
class Finding:
    """One defect (or informational note) in a KB program."""

    code: str
    message: str
    severity: str = ""
    #: textual form of the offending rule, if the finding is about one
    rule: Optional[str] = None
    #: index of the rule in ``kb.rules`` (stable across the report)
    rule_index: Optional[int] = None
    #: textual form of the offending constraint, if any
    constraint: Optional[str] = None
    #: machine-readable extras (variable names, class names, bounds, ...)
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown finding code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code][0])
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.rule is not None:
            payload["rule"] = self.rule
        if self.rule_index is not None:
            payload["rule_index"] = self.rule_index
        if self.constraint is not None:
            payload["constraint"] = self.constraint
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def render(self) -> str:
        where = ""
        if self.rule_index is not None:
            where = f" [rule #{self.rule_index}]"
        elif self.constraint is not None:
            where = f" [constraint {self.constraint}]"
        return f"{self.code} {self.severity:<7}{where} {self.message}"


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one :func:`repro.analyze.analyze` run found."""

    findings: Tuple[Finding, ...] = ()
    #: KB shape at analysis time (rules, constraints, facts, ...)
    stats: Mapping[str, int] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def _with_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self._with_severity(ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self._with_severity(WARNING)

    @property
    def infos(self) -> List[Finding]:
        return self._with_severity(INFO)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == ERROR for f in self.findings)

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    @property
    def codes(self) -> List[str]:
        return sorted({f.code for f in self.findings})

    def summary(self) -> str:
        return (
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.infos)} infos"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "stats": dict(self.stats),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self, include_infos: bool = True) -> str:
        lines = [
            f.render()
            for f in self.findings
            if include_infos or f.severity != INFO
        ]
        analyzed = ", ".join(
            f"{count} {name}" for name, count in self.stats.items()
        )
        lines.append(self.summary() + (f" — analyzed {analyzed}" if analyzed else ""))
        return "\n".join(lines)


class AnalysisError(ValueError):
    """Raised by the strict pre-flight gate when a KB program has errors."""

    def __init__(self, report: AnalysisReport) -> None:
        errors = report.errors
        shown = "; ".join(f.render() for f in errors[:5])
        suffix = "" if len(errors) <= 5 else f" (+{len(errors) - 5} more)"
        super().__init__(
            f"static analysis found {len(errors)} error(s) "
            f"(analysis='strict' refuses to ground): {shown}{suffix}"
        )
        self.report = report


class AnalysisWarning(UserWarning):
    """Category used by the ``analysis='warn'`` pre-flight gate."""
