"""Static analysis of KB programs (pre-flight quality control).

ProbKB's Section-5 quality control is dynamic: bad rules are caught
only after they have propagated wrong facts through grounding.  Almost
all of those defects — ill-typed rules, unsafe heads, duplicates,
self-violating constraints — are decidable from the schema, the class
hierarchy, and the rule text alone.  This package decides them::

    from repro.analyze import analyze

    report = analyze(kb)          # never mutates kb
    if report.has_errors:
        print(report.render())

The report feeds three gates: the ``repro analyze`` CLI subcommand, the
``GroundingConfig(analysis="off"|"warn"|"strict")`` pre-flight check in
:class:`~repro.api.ExpansionSession` / :class:`~repro.ProbKB`, and the
serving layer's rule-ingest endpoint.  ``docs/analyze.md`` documents
every finding code.
"""

from .analyzer import analyze
from .constraints import check_constraints
from .depgraph import (
    check_dependencies,
    dependency_edges,
    fixpoint_depth_bound,
    grounding_size_bound,
    strongly_connected_components,
)
from .findings import (
    AnalysisError,
    AnalysisReport,
    AnalysisWarning,
    CODES,
    ERROR,
    Finding,
    INFO,
    SEVERITIES,
    WARNING,
)
from .plans import (
    FACTS_TABLES,
    PlanEnvironment,
    QueryPlanEstimate,
    StaticPlanReport,
    check_plans,
    estimate_plans,
    kb_statistics,
    partition_plans,
)
from .rules import check_dead_rules, check_duplicates, live_relations
from .safety import check_rule_shape, check_safety
from .typecheck import SchemaIndex, check_types
from .verify import (
    check_plan_soundness,
    grounding_schemas,
    verify_partition_plans,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "AnalysisWarning",
    "CODES",
    "ERROR",
    "FACTS_TABLES",
    "Finding",
    "INFO",
    "PlanEnvironment",
    "QueryPlanEstimate",
    "SEVERITIES",
    "SchemaIndex",
    "StaticPlanReport",
    "WARNING",
    "analyze",
    "check_constraints",
    "check_dead_rules",
    "check_dependencies",
    "check_duplicates",
    "check_plan_soundness",
    "check_plans",
    "check_rule_shape",
    "check_safety",
    "check_types",
    "dependency_edges",
    "estimate_plans",
    "fixpoint_depth_bound",
    "grounding_schemas",
    "grounding_size_bound",
    "kb_statistics",
    "live_relations",
    "partition_plans",
    "strongly_connected_components",
    "verify_partition_plans",
]
