"""PlanCheck as an analyzer pass: verify every grounding plan statically.

The plan verifiers (:mod:`repro.relational.verify` for logical plans,
:mod:`repro.mpp.verify` for MPP physical plans) normally run at
execution time behind the ``PROBKB_VERIFY_PLANS`` gate.  This pass runs
them *before* any table exists: it compiles Queries 1-i / 2-i for every
nonempty partition of the KB (exactly like :func:`repro.analyze.plans
.partition_plans`), checks each logical plan against the relational
schemas, and — when the environment is a multi-segment MPP cluster —
statically plans each query and checks the physical plan's distribution
soundness as well.  Findings surface as PKB201-212 in the ordinary
:class:`~repro.analyze.findings.AnalysisReport`, so the pre-flight gate
and ``repro analyze`` see plan-IR defects the same way they see unsafe
rules.

On a healthy build every plan verifies clean; a finding here means the
query compiler or the static planner produced an ill-formed plan and is
a bug in this repository, not in the user's KB program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.backends import TPI_VIEWS
from ..core.clauses import PARTITION_INDEXES
from ..core.model import KnowledgeBase
from ..core.relmodel import TP_SCHEMA, mln_schema
from ..mpp.plannodes import DistDesc
from ..mpp.static_planner import StaticPlanner
from ..mpp.verify import verify_physical_plan
from ..relational.statistics import StatisticsCatalog, TableDistribution
from ..relational.types import ExecutionError
from ..relational.verify import VerificationReport, verify_plan
from .findings import Finding
from .plans import PlanEnvironment, kb_statistics, partition_plans


def grounding_schemas() -> Dict[str, object]:
    """Schemas of every table a grounding plan may scan.

    The TΠ views (Tx/Ty/Txy/T0) are projections of TΠ under different
    distributions, so they share ``TP_SCHEMA``'s columns.
    """
    schemas: Dict[str, object] = {"TP": TP_SCHEMA}
    for view_name in TPI_VIEWS:
        schemas[view_name] = TP_SCHEMA
    for partition in PARTITION_INDEXES:
        schemas[f"M{partition}"] = mln_schema(partition)
    return schemas


def _catalog_dists(catalog: StatisticsCatalog) -> Dict[str, DistDesc]:
    """Translate the statistics catalog's table distributions for the
    physical verifier (``TableDistribution`` -> ``DistDesc``)."""
    dists: Dict[str, DistDesc] = {}
    for name in catalog.table_names:
        dist: TableDistribution = catalog.distribution(name)
        if dist.kind == "hash" and dist.columns:
            dists[name] = DistDesc.hash_on(dist.columns)
        elif dist.kind == "replicated":
            dists[name] = DistDesc.replicated()
        else:
            dists[name] = DistDesc.arbitrary()
    return dists


def verify_partition_plans(
    kb: KnowledgeBase, environment: Optional[PlanEnvironment] = None
) -> List[VerificationReport]:
    """Verify Queries 1-i / 2-i of every nonempty partition.

    Returns one report per logical plan, plus — when ``environment``
    has more than one effective segment — one per statically planned
    physical plan (named ``"<query> [static]"``).  Raises
    :class:`~repro.relational.types.ExecutionError` when the KB is too
    broken to plan at all; that situation is the other passes' business
    (see :func:`check_plan_soundness`).
    """
    env = environment or PlanEnvironment()
    schemas = grounding_schemas()
    reports: List[VerificationReport] = []
    plans = partition_plans(kb, env)
    mpp = env.effective_segments > 1
    planner: Optional[StaticPlanner] = None
    table_dists: Dict[str, DistDesc] = {}
    if mpp:
        catalog = kb_statistics(kb, env)
        planner = StaticPlanner(catalog, env.effective_segments)
        table_dists = _catalog_dists(catalog)
    for name, _partition, plan in plans:
        reports.append(verify_plan(plan, tables=schemas, name=name))
        if planner is not None:
            static = planner.plan(plan)
            reports.append(
                verify_physical_plan(
                    static.root,
                    env.effective_segments,
                    table_dists,
                    name=f"{name} [static]",
                )
            )
    return reports


def check_plan_soundness(
    kb: KnowledgeBase, environment: Optional[PlanEnvironment] = None
) -> List[Finding]:
    """Turn plan-IR verification results into PKB201-212 findings."""
    try:
        reports = verify_partition_plans(kb, environment)
    except ExecutionError:
        # a KB too broken to plan is the other passes' business
        return []
    findings: List[Finding] = []
    for report in reports:
        for f in report.findings:
            findings.append(
                Finding(
                    code=f.code,
                    message=f"{report.plan_name}: {f.path}: {f.message}",
                    severity=f.severity,
                    details={
                        **f.details,
                        "query": report.plan_name,
                        "node": f.path,
                    },
                )
            )
    return findings
