"""Pass 3: dead and duplicate rule detection.

*Duplicates* (PKB008) are rules that are structurally equivalent under
the Definition-6 canonical renaming — same partition, same relation
tuple, same class tuple.  The relational load silently keeps only the
first of each (Proposition 1 requires M_i duplicate-free), so a
duplicate's weight is dropped on the floor; ``repro.quality``'s
:func:`~repro.quality.rule_cleaning.merge_duplicate_rules` is the
opt-in fix.

*Dead rules* (PKB009) can never fire in any fixpoint iteration: some
body relation has no facts in TΠ and is not the head of any rule that
could itself fire.  Liveness is the usual bottom-up fixpoint — start
from fact-supported relations, repeatedly mark a rule fireable when all
its body relations are live, and its head relation live in turn.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.clauses import ClassifiedClause, ClauseError, classify_clause
from ..core.model import KnowledgeBase
from .findings import Finding

CanonicalKey = Tuple[int, Tuple[str, ...], Tuple[str, ...]]


def canonical_key(classified: ClassifiedClause) -> CanonicalKey:
    """The identifier tuple that makes two rules the same M_i row
    (weight excluded: same-key rules with different weights are still
    duplicates — only one row survives the load)."""
    return (classified.partition, classified.relations, classified.classes)


def _classified_rules(
    kb: KnowledgeBase,
) -> List[Tuple[int, ClassifiedClause]]:
    classified: List[Tuple[int, ClassifiedClause]] = []
    for rule_index, rule in enumerate(kb.rules):
        try:
            classified.append((rule_index, classify_clause(rule)))
        except ClauseError:
            continue  # shape findings (safety pass) cover these
    return classified


def check_duplicates(kb: KnowledgeBase) -> List[Finding]:
    findings: List[Finding] = []
    first_seen: Dict[CanonicalKey, int] = {}
    for rule_index, classified in _classified_rules(kb):
        key = canonical_key(classified)
        original = first_seen.setdefault(key, rule_index)
        if original == rule_index:
            continue
        findings.append(
            Finding(
                code="PKB008",
                message=(
                    f"structurally equivalent to rule #{original} "
                    f"({kb.rules[original]}); only one M{classified.partition} "
                    f"row survives the load — consider merging weights "
                    f"(repro.quality.merge_duplicate_rules)"
                ),
                rule=str(kb.rules[rule_index]),
                rule_index=rule_index,
                details={
                    "duplicate_of": original,
                    "partition": classified.partition,
                },
            )
        )
    return findings


def live_relations(kb: KnowledgeBase) -> Set[str]:
    """Relations that can hold at least one fact across any fixpoint."""
    live = {fact.relation for fact in kb.facts}
    rules: List[Tuple[str, Set[str]]] = []
    for rule_index, _ in _classified_rules(kb):
        rule = kb.rules[rule_index]
        rules.append(
            (rule.head.relation, {atom.relation for atom in rule.body})
        )
    changed = True
    while changed:
        changed = False
        for head, body in rules:
            if head not in live and body <= live:
                live.add(head)
                changed = True
    return live


def check_dead_rules(kb: KnowledgeBase) -> List[Finding]:
    findings: List[Finding] = []
    live = live_relations(kb)
    for rule_index, _ in _classified_rules(kb):
        rule = kb.rules[rule_index]
        starved = sorted(
            {atom.relation for atom in rule.body if atom.relation not in live}
        )
        if not starved:
            continue
        names = ", ".join(repr(name) for name in starved)
        findings.append(
            Finding(
                code="PKB009",
                message=(
                    f"body relation(s) {names} have no facts in TΠ and no "
                    f"producing rule head — this rule can never fire in any "
                    f"fixpoint iteration"
                ),
                rule=str(rule),
                rule_index=rule_index,
                details={"starved_relations": starved},
            )
        )
    return findings
