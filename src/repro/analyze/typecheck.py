"""Pass 1: rule type-checking against the schema and class hierarchy.

A rule is *ill-typed* when some atom's argument classes can never be
satisfied by any signature of the atom's relation — not the declared
signatures, not a class pair any fact actually carries, and not a class
pair some rule head can produce.  Compatibility goes through the class
hierarchy (Remark 1): a class is compatible with a signature class when
their member sets overlap (sub- and superclasses always do), because
:func:`repro.core.hierarchy.broaden_facts` makes subclass facts feed
superclass-typed rules.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.model import KnowledgeBase
from .findings import Finding

ClassPair = Tuple[str, str]


class SchemaIndex:
    """Per-relation allowed class pairs, precomputed once per analysis."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb
        self.known_relations: Set[str] = set(kb.relations)
        self.known_classes: Set[str] = set(kb.classes)
        self._compatible_cache: Dict[ClassPair, bool] = {}
        #: declared signatures (all of them, not just the first per name)
        self.declared: Dict[str, Set[ClassPair]] = {}
        signatures = getattr(kb, "relation_signatures", None)
        if signatures is None:  # pre-signature KBs: fall back to first-per-name
            for relation in kb.relations.values():
                self.declared.setdefault(relation.name, set()).add(
                    (relation.domain, relation.range)
                )
        else:
            for name, declared in signatures.items():
                self.declared[name] = {(r.domain, r.range) for r in declared}
        #: class pairs actually observed on facts in TΠ
        self.observed: Dict[str, Set[ClassPair]] = {}
        for fact in kb.facts:
            self.observed.setdefault(fact.relation, set()).add(
                (fact.subject_class, fact.object_class)
            )
        #: class pairs producible by some rule head (derived facts carry
        #: the head atom's variable classes)
        self.producible: Dict[str, Set[ClassPair]] = {}
        for rule in kb.rules:
            if len(rule.head.args) != 2:
                continue
            classes = rule.classes
            pair = (
                classes.get(rule.head.args[0]),
                classes.get(rule.head.args[1]),
            )
            if pair[0] is None or pair[1] is None:
                continue
            self.producible.setdefault(rule.head.relation, set()).add(
                (pair[0], pair[1])
            )

    def compatible(self, first: str, second: str) -> bool:
        """Can an entity belong to both classes?  Unknown or empty
        classes are treated permissively — other passes report them."""
        if first == second:
            return True
        key = (first, second) if first < second else (second, first)
        cached = self._compatible_cache.get(key)
        if cached is not None:
            return cached
        members_first = self.kb.classes.get(first)
        members_second = self.kb.classes.get(second)
        if members_first is None or members_second is None:
            result = True
        elif not members_first or not members_second:
            result = True
        else:
            result = not members_first.isdisjoint(members_second)
        self._compatible_cache[key] = result
        return result

    def pair_compatible(self, pair: ClassPair, signature: ClassPair) -> bool:
        return self.compatible(pair[0], signature[0]) and self.compatible(
            pair[1], signature[1]
        )

    def fillable_pairs(self, relation: str) -> Set[ClassPair]:
        """Class pairs a body atom of ``relation`` could match against:
        declared signatures, fact-carried pairs, and rule-head products."""
        return (
            self.declared.get(relation, set())
            | self.observed.get(relation, set())
            | self.producible.get(relation, set())
        )


def check_types(kb: KnowledgeBase, index: SchemaIndex) -> List[Finding]:
    """PKB006: atoms whose argument classes fit no signature at all."""
    findings: List[Finding] = []
    for rule_index, rule in enumerate(kb.rules):
        classes = rule.classes
        for position, atom in enumerate((rule.head, *rule.body)):
            if len(atom.args) != 2:
                continue  # PKB002 (safety pass) covers arity
            if atom.relation not in index.known_relations:
                continue  # PKB001 covers unknown relations
            pair = (classes.get(atom.args[0]), classes.get(atom.args[1]))
            if pair[0] is None or pair[1] is None:
                continue  # PKB004 covers untyped variables
            if pair[0] not in index.known_classes or pair[1] not in index.known_classes:
                continue  # PKB007 covers unknown classes
            if position == 0:
                # the head *produces* facts, so it cannot justify its own
                # typing — check it against declared and observed pairs.
                # A mismatch is only a warning: deriving a novel class
                # pair is legal (TΠ carries per-fact classes), just
                # suspect.
                allowed = index.declared.get(atom.relation, set()) | index.observed.get(
                    atom.relation, set()
                )
                severity = "warning"
            else:
                # a body atom that fits no fillable signature can never
                # match a fact — the rule is statically inert
                allowed = index.fillable_pairs(atom.relation)
                severity = "error"
            if not allowed:
                continue  # nothing declared or observed: nothing to check
            if any(
                index.pair_compatible((pair[0], pair[1]), signature)
                for signature in allowed
            ):
                continue
            role = "head" if position == 0 else f"body atom {position}"
            candidates = ", ".join(
                f"({c1}, {c2})" for c1, c2 in sorted(allowed)
            )
            findings.append(
                Finding(
                    code="PKB006",
                    severity=severity,
                    message=(
                        f"{role} {atom} is typed ({pair[0]}, {pair[1]}) but "
                        f"no signature of {atom.relation!r} is satisfiable "
                        f"by those classes (known: {candidates})"
                    ),
                    rule=str(rule),
                    rule_index=rule_index,
                    details={
                        "relation": atom.relation,
                        "classes": [pair[0], pair[1]],
                        "known_signatures": sorted(allowed),
                    },
                )
            )
    return findings
