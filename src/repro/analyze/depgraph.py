"""Pass 5: relation-level dependency-graph analysis.

Builds the digraph with an edge ``body relation → head relation`` per
classifiable rule and reports, before any join runs:

* PKB013 (info) — each non-trivial strongly connected component: the
  rule set is recursive through these relations, so naive grounding
  iterates until the anti-join dries up rather than a fixed depth;
* PKB014 (info) — a static upper bound on the fixpoint depth (longest
  derivation chain through the condensation DAG; ``None`` when the
  graph is cyclic) and on the grounding size (how large TΠ could ever
  get given the class extents of every reachable signature).

The bounds are conservative, cheap (linear in rules + relations), and
exactly what an operator wants to see before paying for a grounding run
over a 30k-rule extracted program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.clauses import ClauseError, classify_clause
from ..core.model import KnowledgeBase
from .findings import Finding
from .rules import live_relations
from .typecheck import SchemaIndex

Edge = Tuple[str, str]


def dependency_edges(kb: KnowledgeBase) -> List[Edge]:
    """Distinct (body relation, head relation) edges, in rule order."""
    edges: List[Edge] = []
    seen: Set[Edge] = set()
    for rule in kb.rules:
        try:
            classify_clause(rule)
        except ClauseError:
            continue
        for atom in rule.body:
            edge = (atom.relation, rule.head.relation)
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
    return edges


def strongly_connected_components(
    nodes: Sequence[str], edges: Sequence[Edge]
) -> List[List[str]]:
    """Iterative Tarjan SCC (rule sets reach 30k+; no recursion)."""
    outgoing: Dict[str, List[str]] = {node: [] for node in nodes}
    for source, target in edges:
        outgoing.setdefault(source, []).append(target)
        outgoing.setdefault(target, [])

    index_of: Dict[str, int] = {}
    low_link: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in outgoing:
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_position = work[-1]
            if child_position == 0:
                index_of[node] = low_link[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = outgoing[node]
            while child_position < len(children):
                child = children[child_position]
                child_position += 1
                if child not in index_of:
                    work[-1] = (node, child_position)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low_link[node] = min(low_link[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low_link[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low_link[parent] = min(low_link[parent], low_link[node])
    return components


def fixpoint_depth_bound(kb: KnowledgeBase) -> Optional[int]:
    """Iterations after which naive grounding *must* have converged, or
    ``None`` when the rule set is recursive (no static bound)."""
    edges = dependency_edges(kb)
    nodes = sorted({n for edge in edges for n in edge})
    components = strongly_connected_components(nodes, edges)
    component_of = {
        node: position
        for position, component in enumerate(components)
        for node in component
    }
    self_loops = {source for source, target in edges if source == target}
    for component in components:
        if len(component) > 1 or component[0] in self_loops:
            return None
    # Tarjan emits components in reverse topological order, so a single
    # left-to-right sweep over the reversed list is a topological DP.
    depth: Dict[int, int] = {}
    order = list(reversed(range(len(components))))
    incoming: Dict[int, List[int]] = {i: [] for i in range(len(components))}
    for source, target in edges:
        incoming[component_of[target]].append(component_of[source])
    for position in order:
        depth[position] = max(
            (depth[p] + 1 for p in incoming[position]), default=0
        )
    return max(depth.values(), default=0)


def grounding_size_bound(kb: KnowledgeBase, index: SchemaIndex) -> int:
    """An upper bound on |TΠ| after any number of iterations: for every
    relation signature that could ever hold facts, the full cross
    product of its class extents."""
    live = live_relations(kb)
    bound = 0
    counted: Set[Tuple[str, str, str]] = set()
    for relation in sorted(live):
        for domain, range_ in sorted(index.fillable_pairs(relation)):
            signature = (relation, domain, range_)
            if signature in counted:
                continue
            counted.add(signature)
            bound += len(kb.classes.get(domain, ())) * len(
                kb.classes.get(range_, ())
            )
    # facts whose signatures fall outside the fillable set still exist
    uncovered = sum(
        1
        for fact in kb.facts
        if (fact.relation, fact.subject_class, fact.object_class) not in counted
    )
    return bound + uncovered


def check_dependencies(kb: KnowledgeBase, index: SchemaIndex) -> List[Finding]:
    findings: List[Finding] = []
    edges = dependency_edges(kb)
    nodes = sorted({n for edge in edges for n in edge})
    self_loops = {source for source, target in edges if source == target}
    recursive = False
    for component in strongly_connected_components(nodes, edges):
        if len(component) > 1 or component[0] in self_loops:
            recursive = True
            cycle = " → ".join(component + [component[0]])
            findings.append(
                Finding(
                    code="PKB013",
                    message=(
                        f"recursive rule dependency cycle: {cycle}; naive "
                        f"grounding iterates until the anti-join guard "
                        f"dries up (no static depth bound)"
                    ),
                    details={"cycle": component},
                )
            )
    depth = fixpoint_depth_bound(kb)
    size = grounding_size_bound(kb, index)
    if depth is None:
        depth_text = "unbounded (recursive rule set)"
    else:
        depth_text = f"{depth} iteration(s)"
    findings.append(
        Finding(
            code="PKB014",
            message=(
                f"static bounds: fixpoint depth ≤ {depth_text}; "
                f"|TΠ| can never exceed {size} facts"
            ),
            details={
                "fixpoint_depth_bound": depth,
                "grounding_size_bound": size,
                "recursive": recursive,
                "dependency_edges": len(edges),
                "relations_in_rules": len(nodes),
            },
        )
    )
    return findings
