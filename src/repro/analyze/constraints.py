"""Pass 4: constraint consistency (TΩ vs the schema and the rules).

* PKB010 — a functional constraint over a relation the KB never declares
* PKB011 — a constraint whose class restriction names an unknown class
* PKB012 — a rule whose head is *guaranteed* by its own body to violate
  a strictly functional constraint (δ=1): after the Definition-6
  canonical renaming the body re-uses the head relation with the same
  determining argument but a different determined variable, so every
  genuinely new derivation hands that argument a second value — exactly
  the error applyConstraints would then delete, one expensive grounding
  iteration too late.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.clauses import ClauseError, classify_clause
from ..core.model import TYPE_I, FunctionalConstraint, KnowledgeBase
from .findings import Finding
from .typecheck import SchemaIndex


def _constraint_text(constraint: FunctionalConstraint) -> str:
    kind = "I" if constraint.arg == TYPE_I else "II"
    extra = ""
    if constraint.domain is not None or constraint.range is not None:
        extra = f", classes=({constraint.domain}, {constraint.range})"
    return f"{constraint.relation}[type {kind}, δ={constraint.degree}{extra}]"


def check_constraints(kb: KnowledgeBase, index: SchemaIndex) -> List[Finding]:
    findings: List[Finding] = []
    for constraint in kb.constraints:
        text = _constraint_text(constraint)
        if constraint.relation not in index.known_relations:
            findings.append(
                Finding(
                    code="PKB010",
                    message=(
                        f"functional constraint is declared over unknown "
                        f"relation {constraint.relation!r}; it can never "
                        f"remove anything"
                    ),
                    constraint=text,
                    details={"relation": constraint.relation},
                )
            )
        for role, cls in (("domain", constraint.domain), ("range", constraint.range)):
            if cls is not None and cls not in index.known_classes:
                findings.append(
                    Finding(
                        code="PKB011",
                        message=(
                            f"constraint {role} restriction names unknown "
                            f"class {cls!r}"
                        ),
                        constraint=text,
                        details={"role": role, "class": cls},
                    )
                )

    strict_constraints = [
        c for c in kb.constraints if c.degree == 1
    ]
    if strict_constraints:
        findings.extend(_check_self_violations(kb, index, strict_constraints))
    return findings


def _check_self_violations(
    kb: KnowledgeBase,
    index: SchemaIndex,
    constraints: List[FunctionalConstraint],
) -> List[Finding]:
    by_relation: Dict[str, List[FunctionalConstraint]] = {}
    for constraint in constraints:
        by_relation.setdefault(constraint.relation, []).append(constraint)

    findings: List[Finding] = []
    for rule_index, rule in enumerate(kb.rules):
        relevant = by_relation.get(rule.head.relation)
        if not relevant:
            continue
        try:
            classify_clause(rule)
        except ClauseError:
            continue  # unclassifiable shapes have their own findings
        head_subject, head_object = rule.head.args
        classes = rule.classes
        for constraint in relevant:
            if constraint.arg == TYPE_I:
                same_position, other_position = 0, 1
                determined = head_object
                restriction = (constraint.domain, classes.get(head_subject))
            else:
                same_position, other_position = 1, 0
                determined = head_subject
                restriction = (constraint.range, classes.get(head_object))
            if restriction[0] is not None and restriction[1] is not None:
                if not index.compatible(restriction[0], restriction[1]):
                    continue  # constraint restricted to classes the rule avoids
            for atom in rule.body:
                if atom.relation != rule.head.relation:
                    continue
                if len(atom.args) != 2:
                    continue
                # Query 3 groups violations by the full (R, x, C1, C2)
                # signature, so the body's determined argument must have
                # the *same class* as the head's for the derived fact to
                # land in the violating group.
                if (
                    atom.args[same_position]
                    == rule.head.args[same_position]
                    and atom.args[other_position] != determined
                    and classes.get(atom.args[other_position])
                    == classes.get(determined)
                ):
                    kind = "I" if constraint.arg == TYPE_I else "II"
                    argument = rule.head.args[same_position]
                    findings.append(
                        Finding(
                            code="PKB012",
                            message=(
                                f"body atom {atom} already gives "
                                f"{argument!r} a value for strictly "
                                f"functional (type {kind}, δ=1) relation "
                                f"{rule.head.relation!r}; every new fact "
                                f"this rule derives violates the "
                                f"constraint and would be deleted by "
                                f"applyConstraints"
                            ),
                            rule=str(rule),
                            rule_index=rule_index,
                            constraint=_constraint_text(constraint),
                            details={
                                "relation": rule.head.relation,
                                "functionality_type": constraint.arg,
                            },
                        )
                    )
                    break
    return findings
