"""Pass 2: safety and shape checks.

Everything here is a defect that today would surface as a
:class:`~repro.core.clauses.ClauseError` deep inside the relational
load — the analyzer reports it up front as a typed finding instead:

* PKB001 — unknown relation in a rule atom
* PKB002 — non-binary atom (the relational model is strictly binary)
* PKB003 — unsafe rule: a head variable never bound by the body
* PKB004 — untyped variable (no class annotation)
* PKB005 — shape that maps onto none of the MLN partitions M1-M6
* PKB007 — unknown class in a variable annotation
* PKB015 — non-finite or non-positive weight
"""

from __future__ import annotations

import math
from typing import List

from ..core.clauses import (
    ClauseError,
    HornClause,
    classify_clause,
    partition_patterns_text,
)
from ..core.model import KnowledgeBase
from .findings import Finding
from .typecheck import SchemaIndex


def check_rule_shape(
    rule: HornClause, rule_index: int, index: SchemaIndex
) -> List[Finding]:
    """All shape findings for one rule (used standalone by the serving
    layer's rule-ingest gate)."""
    findings: List[Finding] = []
    rule_text = str(rule)

    bad_arity = [
        atom for atom in (rule.head, *rule.body) if len(atom.args) != 2
    ]
    for atom in bad_arity:
        findings.append(
            Finding(
                code="PKB002",
                message=(
                    f"atom {atom.relation}{atom.args!r} has "
                    f"{len(atom.args)} arguments; relations are binary"
                ),
                rule=rule_text,
                rule_index=rule_index,
                details={"relation": atom.relation, "arity": len(atom.args)},
            )
        )
    if bad_arity:
        return findings  # shape is unknowable; later checks would cascade

    classes = rule.classes
    untyped = [var for var in rule.variables() if var not in classes]
    for var in untyped:
        findings.append(
            Finding(
                code="PKB004",
                message=f"variable {var!r} has no class annotation",
                rule=rule_text,
                rule_index=rule_index,
                details={"variable": var},
            )
        )

    for var, cls in rule.var_classes:
        if cls not in index.known_classes:
            findings.append(
                Finding(
                    code="PKB007",
                    message=(
                        f"variable {var!r} is typed over unknown class {cls!r}"
                    ),
                    rule=rule_text,
                    rule_index=rule_index,
                    details={"variable": var, "class": cls},
                )
            )

    for atom in (rule.head, *rule.body):
        if atom.relation not in index.known_relations:
            findings.append(
                Finding(
                    code="PKB001",
                    message=f"atom {atom} references unknown relation "
                    f"{atom.relation!r}",
                    rule=rule_text,
                    rule_index=rule_index,
                    details={"relation": atom.relation},
                )
            )

    body_vars = {var for atom in rule.body for var in atom.args}
    unbound = [var for var in rule.head.args if var not in body_vars]
    for var in unbound:
        findings.append(
            Finding(
                code="PKB003",
                message=(
                    f"head variable {var!r} is unbound in the body "
                    f"(unsafe rule: it would ground to every entity)"
                ),
                rule=rule_text,
                rule_index=rule_index,
                details={"variable": var},
            )
        )

    # PKB005 only when classification fails for a *new* reason: untyped
    # variables and unbound head variables already fail classification
    # and have their own codes above.
    if not untyped and not unbound:
        try:
            classify_clause(rule)
        except ClauseError as error:
            findings.append(
                Finding(
                    code="PKB005",
                    message=(
                        f"rule cannot be mapped onto MLN partitions M1-M6 "
                        f"({error}); supported shapes: "
                        f"{partition_patterns_text()}"
                    ),
                    rule=rule_text,
                    rule_index=rule_index,
                    details={"reason": str(error)},
                )
            )

    if not math.isfinite(rule.weight) or rule.weight <= 0:
        findings.append(
            Finding(
                code="PKB015",
                message=(
                    f"rule weight {rule.weight!r} is not a positive finite "
                    f"MLN weight"
                ),
                rule=rule_text,
                rule_index=rule_index,
                details={"weight": rule.weight},
            )
        )
    return findings


def check_safety(kb: KnowledgeBase, index: SchemaIndex) -> List[Finding]:
    findings: List[Finding] = []
    for rule_index, rule in enumerate(kb.rules):
        findings.extend(check_rule_shape(rule, rule_index, index))
    return findings
