"""Weight learning for the MLN rules (pseudo-likelihood, tied weights)."""

from .weights import (
    LearningResult,
    TiedGraph,
    build_tied_graph,
    learn_weights,
    observed_from_judge,
    pseudo_log_likelihood,
    reweighted_rules,
)

__all__ = [
    "LearningResult",
    "TiedGraph",
    "build_tied_graph",
    "learn_weights",
    "observed_from_judge",
    "pseudo_log_likelihood",
    "reweighted_rules",
]
