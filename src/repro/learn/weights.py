"""MLN weight learning by pseudo-likelihood (tied rule weights).

ProbKB takes its rule weights from the rule learner (Sherlock); this
module closes the loop by *learning* the MLN weights from labelled
facts — the standard pseudo-log-likelihood (PLL) approach of Richardson
& Domingos, with one tied parameter per Horn rule.

Pipeline:

1. Ground each rule separately (Query 2-i restricted to one MLN row via
   ``mln_filter``) to obtain ground factors tagged with their rule.
2. Given an observed truth assignment (in tests/benchmarks, the
   generator's oracle provides it), run gradient ascent on

       PLL(w) = Σ_v log P(x_v = obs_v | MB(v); w)

   whose gradient w.r.t. the tied weight w_j is

       Σ_v [ n_j(v, obs_v) − E_{x_v ~ P(·|MB)} n_j(v, x_v) ]

   with n_j(v, val) = number of satisfied groundings of rule j among
   the factors touching v when x_v = val.

Extraction-confidence singleton factors are held fixed (they are
evidence priors, not parameters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ProbKB
from ..core.clauses import HornClause, classify_clause
from ..core.sqlgen import ground_factors_plan
from ..infer.factor_graph import FactorGraph
from ..relational.expr import conj, eq_const


@dataclass
class TiedGraph:
    """A ground factor graph whose clause factors are tagged with the
    index of the rule they instantiate (-1 = fixed singleton prior)."""

    graph: FactorGraph
    parameter_of: List[int]
    rules: List[HornClause]

    @property
    def num_parameters(self) -> int:
        return len(self.rules)


@dataclass
class LearningResult:
    weights: List[float]
    pll_trace: List[float] = field(default_factory=list)
    iterations: int = 0

    def weight_of(self, rule_index: int) -> float:
        return self.weights[rule_index]


def build_tied_graph(system: ProbKB) -> TiedGraph:
    """Ground every rule separately and build the tagged factor graph.

    One Query 2-i per rule (this is offline training, so the per-rule
    cost the paper avoids at inference time is acceptable here).
    """
    graph = FactorGraph()
    parameter_of: List[int] = []
    rules = list(system.kb.rules)
    rkb = system.rkb
    backend = system.backend

    for rule_index, rule in enumerate(rules):
        classified = classify_clause(rule)
        mln_alias = f"M{classified.partition}"
        conditions = []
        for slot, relation in enumerate(classified.relations):
            conditions.append(
                eq_const(f"{mln_alias}.R{slot + 1}", rkb.relations.id(relation))
            )
        for slot, class_name in enumerate(classified.classes):
            conditions.append(
                eq_const(f"{mln_alias}.C{slot + 1}", rkb.classes.id(class_name))
            )
        plan = ground_factors_plan(
            classified.partition,
            backend,
            mln_alias=mln_alias,
            mln_filter=conj(*conditions),
        )
        for head, body2, body3, _ in backend.query(plan).rows:
            body = [b for b in (body2, body3) if b is not None]
            graph.add_clause(head, body, rule.weight)
            parameter_of.append(rule_index)

    # fixed singleton priors from extraction confidences
    from ..core.sqlgen import singleton_factors_plan

    for head, _, _, weight in backend.query(singleton_factors_plan(backend)).rows:
        graph.add_clause(head, [], weight)
        parameter_of.append(-1)

    return TiedGraph(graph=graph, parameter_of=parameter_of, rules=rules)


def pseudo_log_likelihood(
    tied: TiedGraph,
    observed: Dict[int, int],
    weights: Sequence[float],
) -> float:
    """PLL of the observed assignment under the given tied weights."""
    state = _observed_state(tied.graph, observed)
    touching = tied.graph.factors_touching()
    total = 0.0
    for var in range(tied.graph.num_variables):
        delta = _weighted_delta(tied, touching, state, var, weights)
        # log P(x_v = obs | MB) for a binary variable
        obs = state[var]
        logit = delta if obs == 1 else -delta
        total += -_log1p_exp(-logit)
    return total


def learn_weights(
    tied: TiedGraph,
    observed: Dict[int, int],
    iterations: int = 60,
    learning_rate: float = 0.05,
    l2: float = 0.01,
    min_weight: float = 0.0,
    initial_weights: Optional[Sequence[float]] = None,
) -> LearningResult:
    """Gradient ascent on the pseudo-log-likelihood.

    ``min_weight`` clamps weights from below (Horn rule weights are
    non-negative in the ProbKB setting — a rule either supports its
    head or is useless).
    """
    graph = tied.graph
    state = _observed_state(graph, observed)
    touching = graph.factors_touching()
    n_parameters = tied.num_parameters
    weights = (
        list(initial_weights)
        if initial_weights is not None
        else [1.0] * n_parameters
    )
    trace: List[float] = []

    for _iteration in range(iterations):
        gradient = [0.0] * n_parameters
        for var in range(graph.num_variables):
            counts_true, counts_false, fixed_delta = _rule_counts(
                tied, touching, state, var
            )
            delta = fixed_delta
            for index in counts_true:
                delta += weights[index] * counts_true[index]
            for index in counts_false:
                delta -= weights[index] * counts_false[index]
            p_true = _sigmoid(delta)
            obs = state[var]
            for index in set(counts_true) | set(counts_false):
                n_obs = (
                    counts_true.get(index, 0.0)
                    if obs == 1
                    else counts_false.get(index, 0.0)
                )
                expected = (
                    p_true * counts_true.get(index, 0.0)
                    + (1 - p_true) * counts_false.get(index, 0.0)
                )
                gradient[index] += n_obs - expected
        for index in range(n_parameters):
            gradient[index] -= l2 * weights[index]
            weights[index] = max(
                min_weight, weights[index] + learning_rate * gradient[index]
            )
        trace.append(pseudo_log_likelihood(tied, observed, weights))
    return LearningResult(weights=weights, pll_trace=trace, iterations=iterations)


def observed_from_judge(system: ProbKB, judge) -> Dict[int, int]:
    """Label every stored fact with the oracle judge (1 = acceptable)."""
    labels: Dict[int, int] = {}
    for fact_id, fact in system._facts_by_id().items():
        labels[fact_id] = 1 if judge.is_acceptable(fact) else 0
    return labels


def reweighted_rules(tied: TiedGraph, result: LearningResult) -> List[HornClause]:
    """The rule set with learned weights substituted in."""
    return [
        HornClause(
            head=rule.head,
            body=rule.body,
            weight=round(result.weights[index], 4),
            var_classes=rule.var_classes,
            score=rule.score,
        )
        for index, rule in enumerate(tied.rules)
    ]


# -- internals ----------------------------------------------------------------------


def _observed_state(graph: FactorGraph, observed: Dict[int, int]) -> List[int]:
    state = []
    for var in range(graph.num_variables):
        external = graph.external_id(var)
        state.append(int(observed.get(external, 1)))
    return state


def _rule_counts(
    tied: TiedGraph, touching, state: List[int], var: int
) -> Tuple[Dict[int, float], Dict[int, float], float]:
    """Per-rule satisfied-grounding counts around ``var`` with x_var
    forced to 1 and to 0, plus the fixed-factor delta contribution."""
    counts_true: Dict[int, float] = {}
    counts_false: Dict[int, float] = {}
    fixed_delta = 0.0
    original = state[var]
    for factor_id in touching[var]:
        factor = tied.graph.factors[factor_id]
        parameter = tied.parameter_of[factor_id]
        state[var] = 1
        sat_true = 1.0 if factor.satisfied(state) else 0.0
        state[var] = 0
        sat_false = 1.0 if factor.satisfied(state) else 0.0
        if parameter < 0:
            fixed_delta += factor.weight * (sat_true - sat_false)
        else:
            if sat_true:
                counts_true[parameter] = counts_true.get(parameter, 0.0) + sat_true
            if sat_false:
                counts_false[parameter] = counts_false.get(parameter, 0.0) + sat_false
    state[var] = original
    return counts_true, counts_false, fixed_delta


def _weighted_delta(
    tied: TiedGraph, touching, state: List[int], var: int, weights: Sequence[float]
) -> float:
    counts_true, counts_false, fixed_delta = _rule_counts(tied, touching, state, var)
    delta = fixed_delta
    for index, count in counts_true.items():
        delta += weights[index] * count
    for index, count in counts_false.items():
        delta -= weights[index] * count
    return delta


def _sigmoid(value: float) -> float:
    if value > 35:
        return 1.0
    if value < -35:
        return 0.0
    return 1.0 / (1.0 + math.exp(-value))


def _log1p_exp(value: float) -> float:
    """log(1 + e^value), numerically stable."""
    if value > 35:
        return value
    return math.log1p(math.exp(value))
