"""Tuffy-T: the baseline system (Section 6.1).

Tuffy [Niu et al., VLDB'11] grounds MLNs in an RDBMS but stores *each
relation in its own table* and applies *each rule with its own SQL
query* — O(n) statements per iteration for n rules, against ProbKB's
O(k) for k partitions.  The original Tuffy is untyped; following the
paper we re-implement it with typing ("Tuffy-T") so both systems derive
identical facts and differ only in how the work is issued to the
database.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..relational import Database, Filter, HashJoin, PlanNode, Project, Scan, col, const, schema
from ..relational.expr import And, Expr, IsNull, conj, eq_const
from ..relational.types import Row
from .clauses import PARTITION_BODY_PATTERNS, classify_clause
from .grounding import DEFAULT_MAX_ITERATIONS, GroundingResult, IterationStats
from .model import Fact, KnowledgeBase
from .relmodel import Dictionary, TF_SCHEMA

_ARG_COLUMNS = (("x", "C1"), ("y", "C2"))


class _RuleSpec:
    """One rule, dictionary-encoded, ready to compile into its query."""

    __slots__ = ("partition", "relations", "classes", "weight")

    def __init__(
        self,
        partition: int,
        relations: Tuple[int, ...],
        classes: Tuple[int, ...],
        weight: float,
    ) -> None:
        self.partition = partition
        self.relations = relations  # (R1, R2[, R3]) ids
        self.classes = classes  # (C1, C2[, C3]) ids
        self.weight = weight

    def class_of(self, var: str) -> int:
        return self.classes[{"x": 0, "y": 1, "z": 2}[var]]


class TuffyT:
    """The per-rule, per-relation-table grounding baseline."""

    def __init__(self, kb: KnowledgeBase, name: str = "tuffy-t") -> None:
        self.kb = kb
        self.db = Database(name)
        self.entities = Dictionary()
        self.classes = Dictionary()
        self.relations = Dictionary()
        self._fact_keys: Set[Tuple[int, int, int, int, int]] = set()
        self._next_fact_id = 0
        self.rules: List[_RuleSpec] = []
        self._load()

    # -- loading -------------------------------------------------------------

    def _pred_table(self, relation_id: int) -> str:
        return f"pred_{relation_id}"

    def _load(self) -> None:
        kb = self.kb
        for rule in kb.rules:
            classified = classify_clause(rule)
            self.rules.append(
                _RuleSpec(
                    classified.partition,
                    tuple(self.relations.id(r) for r in classified.relations),
                    tuple(self.classes.id(c) for c in classified.classes),
                    classified.weight,
                )
            )

        by_relation: Dict[int, List[Row]] = defaultdict(list)
        for fact in kb.facts:
            key = self._encode_key(fact)
            if key in self._fact_keys:
                continue
            self._fact_keys.add(key)
            by_relation[key[0]].append(
                (self._next_fact_id,) + key[1:] + (fact.weight,)
            )
            self._next_fact_id += 1

        # one table per relation — this is what makes Tuffy's bulkload
        # O(|R|) statements (83K tables for ReVerb in the paper)
        relation_ids = sorted(
            {self.relations.id(name) for name in kb.relations}
            | set(by_relation)
        )
        for relation_id in relation_ids:
            table_name = self._pred_table(relation_id)
            self.db.create_table(
                schema(table_name, "I:int", "x:int", "C1:int", "y:int", "C2:int", "w:float")
            )
            self.db.bulkload(table_name, by_relation.get(relation_id, []))
        self.db.create_table(TF_SCHEMA)

    def _encode_key(self, fact: Fact) -> Tuple[int, int, int, int, int]:
        return (
            self.relations.id(fact.relation),
            self.entities.id(fact.subject),
            self.classes.id(fact.subject_class),
            self.entities.id(fact.object),
            self.classes.id(fact.object_class),
        )

    # -- per-rule query compilation -----------------------------------------------

    def _body_plan(self, spec: _RuleSpec) -> Tuple[PlanNode, List[str], Dict[str, str]]:
        """The body joins/filters of one rule; returns (plan, aliases,
        head-variable source columns)."""
        patterns = PARTITION_BODY_PATTERNS[spec.partition]
        aliases = ["T2", "T3"][: len(patterns)]
        plan: Optional[PlanNode] = None
        head_source: Dict[str, str] = {}
        shared: Dict[str, str] = {}
        join_keys: Optional[Tuple[str, str]] = None

        for index, (pattern, alias) in enumerate(zip(patterns, aliases)):
            scan: PlanNode = Scan(self._pred_table(spec.relations[index + 1]), alias)
            filters: List[Expr] = []
            for pos, var in enumerate(pattern):
                entity_col, class_col = _ARG_COLUMNS[pos]
                filters.append(
                    eq_const(f"{alias}.{class_col}", spec.class_of(var))
                )
                column = f"{alias}.{entity_col}"
                if var in ("x", "y") and var not in head_source:
                    head_source[var] = column
                if var == "z":
                    if "z" in shared:
                        join_keys = (shared["z"], column)
                    else:
                        shared["z"] = column
            filtered = Filter(scan, conj(*filters))
            if plan is None:
                plan = filtered
            else:
                assert join_keys is not None
                plan = HashJoin(plan, filtered, [join_keys[0]], [join_keys[1]])
        assert plan is not None
        return plan, aliases, head_source

    def rule_atoms_plan(self, spec: _RuleSpec) -> PlanNode:
        """Tuffy's Query 1 analogue for a *single* rule."""
        plan, _, head = self._body_plan(spec)
        return Project(plan, [(col(head["x"]), "x"), (col(head["y"]), "y")])

    def rule_factors_plan(self, spec: _RuleSpec) -> PlanNode:
        """Tuffy's Query 2 analogue for a single rule."""
        plan, aliases, head = self._body_plan(spec)
        head_scan = Scan(self._pred_table(spec.relations[0]), "T1")
        head_filter = Filter(
            head_scan,
            And(
                eq_const("T1.C1", spec.classes[0]),
                eq_const("T1.C2", spec.classes[1]),
            ),
        )
        plan = HashJoin(
            plan,
            head_filter,
            [head["x"], head["y"]],
            ["T1.x", "T1.y"],
        )
        outputs = [(col("T1.I"), "I1")]
        for slot, alias in enumerate(aliases):
            outputs.append((col(f"{alias}.I"), f"I{slot + 2}"))
        if len(aliases) == 1:
            outputs.append((const(None), "I3"))
        outputs.append((const(spec.weight), "w"))
        return Project(plan, outputs)

    # -- grounding ------------------------------------------------------------------

    def ground_atoms_iteration(self, iteration: int) -> IterationStats:
        """One iteration: run every rule's query against the iteration-
        start snapshot, then insert.

        Inserts are buffered until all queries of the iteration ran so
        Tuffy-T derives exactly what ProbKB derives per iteration (the
        paper: "both Tuffy and ProbKB systems need to iterate the same
        times").  There is still one insertion statement per producing
        rule — the paper calls out Tuffy's 30,912 insertions explicitly.
        """
        start = self.db.elapsed_seconds
        derived = 0
        new_facts = 0
        pending: List[Tuple[int, List[Row]]] = []
        for spec in self.rules:
            result = self.db.query(self.rule_atoms_plan(spec))
            derived += len(result)
            fresh: List[Row] = []
            head_relation, head_c1, head_c2 = (
                spec.relations[0],
                spec.classes[0],
                spec.classes[1],
            )
            for x, y in result.rows:
                key = (head_relation, x, head_c1, y, head_c2)
                if key in self._fact_keys:
                    continue
                self._fact_keys.add(key)
                fresh.append((self._next_fact_id, x, head_c1, y, head_c2, None))
                self._next_fact_id += 1
            if fresh:
                pending.append((head_relation, fresh))
        for head_relation, fresh in pending:
            self.db.insert_rows(self._pred_table(head_relation), fresh)
            new_facts += len(fresh)
        return IterationStats(
            iteration=iteration,
            derived_rows=derived,
            new_facts=new_facts,
            removed_facts=0,
            seconds=self.db.elapsed_seconds - start,
            fact_count=len(self._fact_keys),
        )

    def ground_atoms(
        self, max_iterations: Optional[int] = None
    ) -> Tuple[List[IterationStats], bool]:
        cap = max_iterations if max_iterations is not None else DEFAULT_MAX_ITERATIONS
        iterations: List[IterationStats] = []
        converged = False
        for number in range(1, cap + 1):
            stats = self.ground_atoms_iteration(number)
            iterations.append(stats)
            if stats.new_facts == 0:
                converged = True
                break
        return iterations, converged

    def ground_factors(self) -> Tuple[int, float]:
        start = self.db.elapsed_seconds
        inserted = 0
        for spec in self.rules:
            result = self.db.query(self.rule_factors_plan(spec))
            if result.rows:
                inserted += self.db.insert_rows("TF", result.rows)
        # singleton factors, one query per predicate table
        for table_name in sorted(self.db.tables):
            if not table_name.startswith("pred_"):
                continue
            plan = Project(
                Filter(Scan(table_name, "T"), IsNull(col("T.w"), negated=True)),
                [
                    (col("T.I"), "I1"),
                    (const(None), "I2"),
                    (const(None), "I3"),
                    (col("T.w"), "w"),
                ],
            )
            result = self.db.query(plan)
            if result.rows:
                inserted += self.db.insert_rows("TF", result.rows)
        return inserted, self.db.elapsed_seconds - start

    def run(self, max_iterations: Optional[int] = None) -> GroundingResult:
        outcome = GroundingResult()
        outcome.iterations, outcome.converged = self.ground_atoms(max_iterations)
        outcome.factors, outcome.factor_seconds = self.ground_factors()
        return outcome

    # -- introspection -----------------------------------------------------------------

    def fact_count(self) -> int:
        return len(self._fact_keys)

    def all_facts(self) -> List[Fact]:
        """Decode every stored fact (for parity checks against ProbKB)."""
        facts = []
        for table_name, table in self.db.tables.items():
            if not table_name.startswith("pred_"):
                continue
            relation_id = int(table_name.split("_", 1)[1])
            relation = self.relations.name(relation_id)
            for row in table.rows:
                _, x, c1, y, c2, weight = row
                facts.append(
                    Fact(
                        relation=relation,
                        subject=self.entities.name(x),
                        subject_class=self.classes.name(c1),
                        object=self.entities.name(y),
                        object_class=self.classes.name(c2),
                        weight=weight,
                    )
                )
        return facts

    @property
    def elapsed_seconds(self) -> float:
        return self.db.elapsed_seconds
