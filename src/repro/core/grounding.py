"""Algorithm 1: SQL-based batch grounding.

Applies every rule of one MLN partition with a single join query,
iterating to the transitive closure of the ground atoms, then builds the
ground factor table TΦ with a second round of batch joins plus the
singleton factors from the uncertain extracted facts.

Quality control (Section 5) plugs in as the per-iteration
``applyConstraints`` step; on MPP backends ``redistribute(TΠ)`` refreshes
the redistributed materialized views after every merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .relmodel import RelationalKB
from .sqlgen import (
    CONSTRAINT_DELETE_COLUMNS,
    apply_constraints_key_plan,
    ground_atoms_delta_plans,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)

#: Both Tuffy and ProbKB iterate the same number of times; the paper's
#: quality runs converge by ~15 iterations.
DEFAULT_MAX_ITERATIONS = 15


@dataclass
class IterationStats:
    """What one grounding iteration produced and cost."""

    iteration: int
    derived_rows: int  # rows produced by the Query 1-i joins (pre-merge)
    new_facts: int  # facts actually added by the set union
    removed_facts: int  # facts deleted by applyConstraints
    seconds: float  # modelled elapsed time of the iteration
    fact_count: int  # |TΠ| after the iteration
    #: derived rows by MLN partition (Query 1-i), pre-merge
    partition_rows: Dict[int, int] = field(default_factory=dict)


@dataclass
class GroundingResult:
    """Outcome of Algorithm 1."""

    iterations: List[IterationStats] = field(default_factory=list)
    converged: bool = False
    factors: int = 0
    factor_seconds: float = 0.0
    load_seconds: float = 0.0

    @property
    def total_new_facts(self) -> int:
        return sum(stats.new_facts for stats in self.iterations)

    @property
    def atoms_seconds(self) -> float:
        return sum(stats.seconds for stats in self.iterations)

    @property
    def total_seconds(self) -> float:
        return self.atoms_seconds + self.factor_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Modelled time of the whole run (alias of :attr:`total_seconds`,
        under the name every pipeline result shares)."""
        return self.total_seconds

    @property
    def rows_touched(self) -> int:
        """Rows the run produced: batch-join derivations plus factors."""
        derived = sum(stats.derived_rows for stats in self.iterations)
        return derived + self.factors

    @property
    def per_partition(self) -> Dict[int, int]:
        """Derived rows by MLN partition, summed over all iterations."""
        totals: Dict[int, int] = {}
        for stats in self.iterations:
            for partition, rows in stats.partition_rows.items():
                totals[partition] = totals.get(partition, 0) + rows
        return totals


class Grounder:
    """Runs Algorithm 1 over a loaded :class:`RelationalKB`."""

    def __init__(
        self,
        rkb: RelationalKB,
        apply_constraints: bool = True,
        semi_naive: bool = False,
    ) -> None:
        """``semi_naive=True`` enables delta grounding: each iteration's
        batch joins touch only facts derived in the previous iteration
        (at least one delta atom per derivation), the classic Datalog
        evaluation strategy.  The paper's Algorithm 1 is the naive
        variant (default); results are identical — see the
        ``ablation_semi_naive`` benchmark for the cost difference."""
        self.rkb = rkb
        self.backend = rkb.backend
        self.apply_constraints_each_iteration = apply_constraints
        self.semi_naive = semi_naive

    # -- ground atoms (Lines 2-7) ------------------------------------------------

    def ground_atoms_iteration(self, iteration: int) -> IterationStats:
        """One pass of Lines 3-7: apply all partitions, merge, constrain.

        Everything stays inside the engine: each partition's batch join
        is INSERTed (with a NOT EXISTS guard) into the staging table
        TNew, and one merge statement moves the staged facts into TΠ
        with freshly assigned ids — no result set ever travels to the
        client.  O(k) statements per iteration for k partitions.
        """
        backend = self.backend
        start = backend.elapsed_seconds
        backend.truncate("TNew")
        derived = 0
        partition_rows: Dict[int, int] = {}
        for partition in self.rkb.nonempty_partitions:
            staged = 0
            if self.semi_naive:
                for plan in ground_atoms_delta_plans(partition, backend):
                    staged += self.rkb.stage_candidates(plan)
            else:
                staged += self.rkb.stage_candidates(
                    ground_atoms_plan(partition, backend)
                )
            partition_rows[partition] = staged
            derived += staged
        new_facts = self.rkb.merge_staged()
        removed = 0
        if self.apply_constraints_each_iteration:
            removed = self.apply_constraints()
        backend.after_facts_changed()
        return IterationStats(
            iteration=iteration,
            derived_rows=derived,
            new_facts=new_facts,
            removed_facts=removed,
            seconds=backend.elapsed_seconds - start,
            fact_count=self.rkb.fact_count(),
            partition_rows=partition_rows,
        )

    def ground_atoms(
        self, max_iterations: Optional[int] = None
    ) -> Tuple[List[IterationStats], bool]:
        """Iterate to closure (or the iteration cap); True if converged."""
        cap = max_iterations if max_iterations is not None else DEFAULT_MAX_ITERATIONS
        iterations: List[IterationStats] = []
        converged = False
        for number in range(1, cap + 1):
            stats = self.ground_atoms_iteration(number)
            iterations.append(stats)
            if stats.new_facts == 0:
                converged = True
                break
        return iterations, converged

    # -- applyConstraints (Query 3) --------------------------------------------------

    def apply_constraints(self) -> int:
        """Remove facts of entities violating functional constraints.

        The doomed facts' keys are recorded in the graveyard table TDel
        first, so the merge's anti-join never re-admits them (otherwise
        the same error would be re-derived every following iteration).
        """
        removed, _ = self.apply_constraints_detailed()
        return removed

    def apply_constraints_detailed(self) -> Tuple[int, Dict[int, int]]:
        """:meth:`apply_constraints`, also reporting removals by
        constraint functionality type (Section 5's type I / type II)."""
        if not self.rkb.kb.constraints:
            return 0, {}
        from ..relational import HashJoin, Project, Scan, col

        removed = 0
        per_type: Dict[int, int] = {}
        for functionality_type, columns in CONSTRAINT_DELETE_COLUMNS.items():
            key_plan = apply_constraints_key_plan(functionality_type)
            doomed = Project(
                HashJoin(
                    Scan("TP", "T"),
                    key_plan,
                    [f"T.{columns[0]}", f"T.{columns[1]}"],
                    ["x", "C1"],
                ),
                [
                    (col("T.R"), "R"),
                    (col("T.x"), "x"),
                    (col("T.C1"), "C1"),
                    (col("T.y"), "y"),
                    (col("T.C2"), "C2"),
                ],
            )
            self.backend.insert_from("TDel", doomed)
            # the delta must not carry deleted facts into the next
            # iteration's semi-naive joins; it must be purged BEFORE TΠ
            # (the violating-keys subquery reads TΠ)
            self.backend.delete_in("TDelta", list(columns), key_plan)
            deleted = self.backend.delete_in("TP", list(columns), key_plan)
            per_type[functionality_type] = deleted
            removed += deleted
        return removed, per_type

    # -- ground factors (Lines 8-10) ----------------------------------------------------

    def ground_factors(self) -> Tuple[int, float]:
        """Build TΦ: per-partition factors plus singleton factors, all
        via INSERT ... SELECT (bag union, Proposition 1).

        Returns (factor rows inserted, modelled seconds).
        """
        backend = self.backend
        start = backend.elapsed_seconds
        inserted = 0
        for partition in self.rkb.nonempty_partitions:
            inserted += backend.insert_from(
                "TF", ground_factors_plan(partition, backend)
            )
        inserted += backend.insert_from("TF", singleton_factors_plan(backend))
        return inserted, backend.elapsed_seconds - start

    # -- Algorithm 1 -------------------------------------------------------------------

    def run(self, max_iterations: Optional[int] = None) -> GroundingResult:
        outcome = GroundingResult()
        outcome.iterations, outcome.converged = self.ground_atoms(max_iterations)
        outcome.factors, outcome.factor_seconds = self.ground_factors()
        return outcome
