"""Lineage queries over the ground factor table TΦ (Section 4.2.3).

"Since it records the causal relationships among facts, it contains the
entire lineage and can be queried.  One application of lineage is to
help determine the facts' credibility."

:class:`LineageIndex` materializes the derivation graph from TΦ rows
and answers the queries the quality experiments use: which ground rules
derived a fact, which base (extracted) facts ultimately support it, and
a simple credibility score counting independent derivations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Derivation:
    """One ground rule instance: head <- body with the rule's weight."""

    head: int
    body: Tuple[int, ...]
    weight: float


@dataclass
class DerivationTree:
    """A fact with (up to a depth cap) the derivations supporting it."""

    fact: int
    derivations: List["DerivationStep"] = field(default_factory=list)
    is_base: bool = False

    def render(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"fact {self.fact}" + (" (base)" if self.is_base else "")]
        for step in self.derivations:
            lines.append(
                "  " * (indent + 1) + f"<- rule(w={step.weight:.2f})"
            )
            for child in step.premises:
                lines.append(child.render(indent + 2))
        return "\n".join(lines)


@dataclass
class DerivationStep:
    weight: float
    premises: List[DerivationTree] = field(default_factory=list)


class LineageIndex:
    """Derivation graph over TΦ."""

    def __init__(
        self,
        factor_rows: Sequence[Tuple[Optional[int], Optional[int], Optional[int], float]],
    ) -> None:
        self.derivations_by_head: Dict[int, List[Derivation]] = defaultdict(list)
        self.base_facts: Set[int] = set()
        self.uses: Dict[int, List[Derivation]] = defaultdict(list)
        for head, body2, body3, weight in factor_rows:
            if head is None:
                continue
            body = tuple(b for b in (body2, body3) if b is not None)
            if not body:
                # singleton factor: an uncertain extracted fact
                self.base_facts.add(head)
                continue
            derivation = Derivation(head, body, weight)
            self.derivations_by_head[head].append(derivation)
            for premise in body:
                self.uses[premise].append(derivation)

    # -- direct queries ------------------------------------------------------

    def derivations_of(self, fact: int) -> List[Derivation]:
        """Ground rules with this fact as head."""
        return list(self.derivations_by_head.get(fact, []))

    def derived_facts(self) -> Set[int]:
        return set(self.derivations_by_head)

    def facts_using(self, fact: int) -> List[Derivation]:
        """Ground rules this fact participates in as a premise."""
        return list(self.uses.get(fact, []))

    def is_base(self, fact: int) -> bool:
        return fact in self.base_facts

    # -- transitive queries ------------------------------------------------------

    def base_support(self, fact: int) -> FrozenSet[int]:
        """All base facts reachable through some derivation chain."""
        support: Set[int] = set()
        seen: Set[int] = set()
        stack = [fact]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self.base_facts:
                support.add(current)
            for derivation in self.derivations_by_head.get(current, []):
                stack.extend(derivation.body)
        return frozenset(support)

    def affected_by(self, fact: int) -> FrozenSet[int]:
        """Facts whose derivations (transitively) use ``fact`` — the set
        an error would propagate to (Figure 5(a))."""
        affected: Set[int] = set()
        stack = [fact]
        while stack:
            current = stack.pop()
            for derivation in self.uses.get(current, []):
                if derivation.head not in affected:
                    affected.add(derivation.head)
                    stack.append(derivation.head)
        return frozenset(affected)

    def derivation_tree(self, fact: int, max_depth: int = 5) -> DerivationTree:
        """Expand the derivations of a fact to a bounded depth."""
        tree = DerivationTree(fact=fact, is_base=self.is_base(fact))
        if max_depth <= 0:
            return tree
        for derivation in self.derivations_by_head.get(fact, []):
            step = DerivationStep(weight=derivation.weight)
            for premise in derivation.body:
                step.premises.append(
                    self.derivation_tree(premise, max_depth - 1)
                )
            tree.derivations.append(step)
        return tree

    def credibility(self, fact: int) -> float:
        """A simple lineage-based credibility score: base facts score 1;
        derived facts score by their number of independent derivations,
        saturating smoothly (1 - 2^-k)."""
        if self.is_base(fact):
            return 1.0
        k = len(self.derivations_by_head.get(fact, []))
        return 1.0 - 0.5 ** k if k else 0.0
