"""The formal probabilistic knowledge base model (Definition 1).

A probabilistic KB is a 5-tuple Γ = (E, C, R, Π, L) of entities,
classes, relations, weighted facts (relationships), and weighted rules.
L splits into the deductive rules H (soft Horn clauses) and the
semantic constraints Ω (hard rules, Remark 2) — we keep them separate
as Γ = (E, C, R, Π, H, Ω), the form the quality-control section uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .clauses import ClauseError, HornClause, classify_clause

TYPE_I = 1
TYPE_II = 2


@dataclass(frozen=True)
class Relation:
    """A typed binary relation R(domain, range) ∈ R."""

    name: str
    domain: str
    range: str

    @property
    def signature(self) -> Tuple[str, str, str]:
        return (self.name, self.domain, self.range)

    def __str__(self) -> str:
        return f"{self.name}({self.domain}, {self.range})"


@dataclass(frozen=True)
class Fact:
    """A weighted relationship (r, w) ∈ Π: r = R(x, y).

    ``weight`` is None for *inferred* facts whose weight is determined
    later by marginal inference (Section 4.3: inferred facts get NULL
    weights during grounding).
    """

    relation: str
    subject: str
    subject_class: str
    object: str
    object_class: str
    weight: Optional[float] = None

    @property
    def key(self) -> Tuple[str, str, str, str, str]:
        """Semantic identity used for set-union of facts."""
        return (
            self.relation,
            self.subject,
            self.subject_class,
            self.object,
            self.object_class,
        )

    def __str__(self) -> str:
        prefix = f"{self.weight:.2f} " if self.weight is not None else ""
        return f"{prefix}{self.relation}({self.subject}, {self.object})"


@dataclass(frozen=True)
class FunctionalConstraint:
    """A functional semantic constraint ω ∈ Ω (Definitions 8-11).

    ``arg`` is the functionality type: TYPE_I means the subject
    determines the object (born_in); TYPE_II the converse (capital_of).
    ``degree`` is the pseudo-functionality degree δ: a Type-I relation
    tolerates up to δ distinct objects per subject (δ=1 for strictly
    functional relations).

    Per Section 5.4, constraints whose functionality holds for all
    associated classes omit the class components; ``domain``/``range``
    of None mean "applies to every class pair".
    """

    relation: str
    arg: int = TYPE_I
    degree: int = 1
    domain: Optional[str] = None
    range: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arg not in (TYPE_I, TYPE_II):
            raise ValueError(f"functionality type must be 1 or 2, got {self.arg}")
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")


class KnowledgeBaseError(ValueError):
    """Invalid knowledge base construction."""


class KnowledgeBase:
    """Γ = (E, C, R, Π, H, Ω) with validation.

    Entities, classes, and relations are referenced by name (strings);
    the relational model (``repro.core.relmodel``) dictionary-encodes
    them into integers.
    """

    def __init__(
        self,
        classes: Mapping[str, Iterable[str]],
        relations: Iterable[Relation],
        facts: Iterable[Fact] = (),
        rules: Iterable[HornClause] = (),
        constraints: Iterable[FunctionalConstraint] = (),
        validate: bool = True,
    ) -> None:
        self.classes: Dict[str, Set[str]] = {
            name: set(members) for name, members in classes.items()
        }
        self.relations: Dict[str, Relation] = {}
        #: every declared signature per relation name.  ReVerb-style KBs
        #: type one relation name over several class pairs; ``relations``
        #: keeps the first signature per name for schema lookups, this
        #: keeps them all (the static analyzer type-checks against it).
        self.relation_signatures: Dict[str, List[Relation]] = {}
        for relation in relations:
            self.relations.setdefault(relation.name, relation)
            declared = self.relation_signatures.setdefault(relation.name, [])
            if relation not in declared:
                declared.append(relation)
        self.facts: List[Fact] = []
        self._fact_keys: Set[Tuple[str, str, str, str, str]] = set()
        self.rules: List[HornClause] = []
        self.constraints: List[FunctionalConstraint] = list(constraints)
        self._validate = validate

        for fact in facts:
            self.add_fact(fact)
        for rule in rules:
            self.add_rule(rule)

    # -- membership ------------------------------------------------------------

    @property
    def entities(self) -> Set[str]:
        """E: the union of all class memberships."""
        members: Set[str] = set()
        for values in self.classes.values():
            members |= values
        return members

    def add_fact(self, fact: Fact) -> bool:
        """Add a fact with set semantics; returns True if new."""
        if self._validate:
            self._check_fact(fact)
        if fact.key in self._fact_keys:
            return False
        self._fact_keys.add(fact.key)
        self.facts.append(fact)
        return True

    def add_rule(self, rule: HornClause) -> None:
        if rule.is_hard:
            raise KnowledgeBaseError(
                "hard rules belong in the constraint set Ω; "
                "use FunctionalConstraint"
            )
        if self._validate:
            # raises ClauseError (naming the rule and the supported
            # partition patterns) for unsupported shapes.  With
            # validate=False the rule is admitted as-is so that
            # ``repro.analyze`` can report on degenerate programs; the
            # relational load re-checks before grounding.
            classify_clause(rule)
        self.rules.append(rule)

    def _check_fact(self, fact: Fact) -> None:
        for class_name, entity in (
            (fact.subject_class, fact.subject),
            (fact.object_class, fact.object),
        ):
            members = self.classes.get(class_name)
            if members is None:
                raise KnowledgeBaseError(
                    f"fact {fact} references unknown class {class_name!r}"
                )
            if entity not in members:
                raise KnowledgeBaseError(
                    f"fact {fact}: entity {entity!r} not in class {class_name!r}"
                )

    def has_fact_key(self, key: Tuple[str, str, str, str, str]) -> bool:
        return key in self._fact_keys

    # -- summary -----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Table-2 style statistics."""
        return {
            "relations": len(self.relations),
            "rules": len(self.rules),
            "entities": len(self.entities),
            "facts": len(self.facts),
            "classes": len(self.classes),
            "constraints": len(self.constraints),
        }

    def subclass_pairs(self) -> List[Tuple[str, str]]:
        """The implied class hierarchy (Remark 1): Ci ⊆ Cj pairs."""
        names = list(self.classes)
        pairs = []
        for child in names:
            for parent in names:
                if child != parent and self.classes[child] <= self.classes[parent]:
                    pairs.append((child, parent))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"KnowledgeBase(|E|={stats['entities']}, |C|={stats['classes']}, "
            f"|R|={stats['relations']}, |Π|={stats['facts']}, "
            f"|H|={stats['rules']}, |Ω|={stats['constraints']})"
        )
