"""Typed results for the pipeline entry points.

``ground()``, ``apply_constraints()``, and ``infer()`` each return an
object that answers the same three questions the same way — how many
rows were touched, how long it took (modelled or wall-clock), and how
the work broke down per partition — while staying drop-in compatible
with the plain values the old API returned: :class:`ConstraintResult`
*is* the removed-facts int, :class:`InferenceResult` *is* the
``{Fact: probability}`` dict, and
:class:`~repro.core.grounding.GroundingResult` is unchanged in shape,
only extended.
"""

from __future__ import annotations

from typing import Dict, Optional


class ConstraintResult(int):
    """Outcome of one ``applyConstraints`` pass (Query 3).

    Subclasses ``int`` so existing callers that treat the return value
    as "number of facts removed" keep working; new callers also get the
    modelled time and the per-constraint-type breakdown.
    """

    elapsed_seconds: float
    per_type: Dict[int, int]

    def __new__(
        cls,
        removed: int,
        elapsed_seconds: float = 0.0,
        per_type: Optional[Dict[int, int]] = None,
    ) -> "ConstraintResult":
        self = super().__new__(cls, removed)
        self.elapsed_seconds = elapsed_seconds
        self.per_type = dict(per_type or {})
        return self

    @property
    def removed(self) -> int:
        return int(self)

    @property
    def rows_touched(self) -> int:
        return int(self)

    def __repr__(self) -> str:
        return (
            f"ConstraintResult(removed={int(self)}, "
            f"elapsed_seconds={self.elapsed_seconds:.6f}, "
            f"per_type={self.per_type})"
        )


class InferenceResult(dict):
    """Marginals plus how they were computed.

    Subclasses ``dict`` (``{Fact: probability}``) so existing callers —
    ``new_facts(marginals)``, ``materialize_marginals(marginals)``,
    plain lookups — keep working; new callers also see the method,
    its parameters, the wall-clock time, and the graph size.
    """

    method: str
    num_sweeps: int
    seed: int
    elapsed_seconds: float
    num_variables: int
    num_factors: int

    def __init__(
        self,
        marginals: Dict,
        method: str = "gibbs",
        num_sweeps: int = 0,
        seed: int = 0,
        elapsed_seconds: float = 0.0,
        num_variables: int = 0,
        num_factors: int = 0,
    ) -> None:
        super().__init__(marginals)
        self.method = method
        self.num_sweeps = num_sweeps
        self.seed = seed
        self.elapsed_seconds = elapsed_seconds
        self.num_variables = num_variables
        self.num_factors = num_factors

    @property
    def rows_touched(self) -> int:
        return len(self)

    def __repr__(self) -> str:
        return (
            f"InferenceResult({len(self)} marginals, method={self.method!r}, "
            f"num_sweeps={self.num_sweeps}, seed={self.seed}, "
            f"elapsed_seconds={self.elapsed_seconds:.3f})"
        )
