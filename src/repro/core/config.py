"""Frozen configuration objects for the public entry points.

Every way of constructing the system — :class:`~repro.api.ExpansionSession`,
:class:`~repro.ProbKB`, the CLI, the serving layer — funnels through these
dataclasses, so "which backend, how many segments, how many worker
processes, which grounding strategy" is spelled the same everywhere
instead of as per-function keyword sprawl.

The objects are frozen: a config in hand can be shared, used as a dict
key, and passed to several sessions without aliasing surprises.  Use
:func:`dataclasses.replace` to derive variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..mpp import PLAN_MODES
from .backends import Backend, MPPBackend, SingleNodeBackend

#: TΠ-view policies for the MPP backend (Section 4.4): ``"matviews"``
#: maintains the four redistributed materialized views, ``"naive"``
#: reships TΠ at every join (the paper's ProbKB-pn configuration).
MPP_POLICIES = ("matviews", "naive")

BACKEND_KINDS = ("single", "mpp")


@dataclass(frozen=True)
class MPPConfig:
    """Shape of the simulated MPP cluster.

    ``num_workers=0`` (the default) runs every segment's work serially
    in the master process; ``num_workers >= 1`` spawns that many real
    worker processes, each owning ``num_segments / num_workers`` of the
    segments (see :mod:`repro.mpp.workers`).  Both modes produce
    bit-identical tables and modelled timings.

    ``plan="adaptive"`` (the default) decides broadcast-vs-redistribute
    from actual intermediate sizes at run time; ``plan="static"`` takes
    those decisions up front from catalog statistics
    (:mod:`repro.mpp.static_planner`).  Result rows are bit-identical
    either way — only the motions (and their modelled cost) can differ.
    """

    num_segments: int = 8
    num_workers: int = 0
    policy: str = "matviews"
    worker_timeout: float = 60.0
    plan: str = "adaptive"

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {self.num_segments}")
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if self.policy not in MPP_POLICIES:
            raise ValueError(
                f"unknown MPP policy {self.policy!r} (use one of {MPP_POLICIES})"
            )
        if self.plan not in PLAN_MODES:
            raise ValueError(
                f"unknown plan mode {self.plan!r} (use one of {PLAN_MODES})"
            )

    @property
    def use_matviews(self) -> bool:
        return self.policy == "matviews"


@dataclass(frozen=True)
class BackendConfig:
    """Which engine holds the tables.

    ``kind="single"`` is the PostgreSQL role, ``kind="mpp"`` the
    Greenplum role; ``mpp`` tunes the latter and is ignored by the
    former.
    """

    kind: str = "single"
    mpp: MPPConfig = field(default_factory=MPPConfig)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r} (use one of {BACKEND_KINDS})"
            )


#: Pre-flight static-analysis gate modes: ``"off"`` skips analysis,
#: ``"warn"`` runs it and emits an :class:`~repro.analyze.AnalysisWarning`
#: (grounding output stays bit-identical to ``"off"``), ``"strict"``
#: refuses to ground a KB program with error-severity findings.
ANALYSIS_MODES = ("off", "warn", "strict")


@dataclass(frozen=True)
class GroundingConfig:
    """How Algorithm 1 runs."""

    max_iterations: Optional[int] = None
    apply_constraints: bool = True
    semi_naive: bool = False
    analysis: str = "warn"

    def __post_init__(self) -> None:
        if self.analysis not in ANALYSIS_MODES:
            raise ValueError(
                f"unknown analysis mode {self.analysis!r} "
                f"(use one of {ANALYSIS_MODES})"
            )


@dataclass(frozen=True)
class InferenceConfig:
    """How marginal inference runs over the ground factor graph."""

    method: str = "gibbs"
    num_sweeps: int = 500
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in ("gibbs", "bp"):
            raise ValueError(
                f"unknown inference method {self.method!r} (gibbs|bp)"
            )


BackendSpec = Union[BackendConfig, Backend, str]


def build_backend(spec: BackendSpec = BackendConfig()) -> Backend:
    """Resolve a backend spec to a live :class:`Backend`.

    Accepts a :class:`BackendConfig`, an already-constructed backend
    (returned as-is), or the shorthand strings ``"single"`` / ``"mpp"``
    (resolved with default tuning).
    """
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        spec = BackendConfig(kind=spec)
    if not isinstance(spec, BackendConfig):
        raise TypeError(
            f"expected BackendConfig, Backend, or 'single'/'mpp'; got {spec!r}"
        )
    if spec.kind == "single":
        return SingleNodeBackend(name=spec.name or "probkb")
    mpp = spec.mpp
    return MPPBackend(
        nseg=mpp.num_segments,
        use_matviews=mpp.use_matviews,
        name=spec.name or "probkb-p",
        num_workers=mpp.num_workers,
        worker_timeout=mpp.worker_timeout,
        plan=mpp.plan,
    )
