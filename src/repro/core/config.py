"""Frozen configuration objects for the public entry points.

Every way of constructing the system — :class:`~repro.api.ExpansionSession`,
:class:`~repro.ProbKB`, the CLI, the serving layer — funnels through these
dataclasses, so "which backend, how many segments, how many worker
processes, which grounding strategy" is spelled the same everywhere
instead of as per-function keyword sprawl.

The objects are frozen: a config in hand can be shared, used as a dict
key, and passed to several sessions without aliasing surprises.  Use
:func:`dataclasses.replace` to derive variants.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..mpp import PLAN_MODES
from ..relational.columnar import EXECUTOR_ENGINES
from .backends import Backend, MPPBackend, SingleNodeBackend

#: Distinguishes "caller did not pass this" from any real value, so the
#: legacy-keyword shims fire only on explicit use.
_UNSET: Any = object()

#: TΠ-view policies for the MPP backend (Section 4.4): ``"matviews"``
#: maintains the four redistributed materialized views, ``"naive"``
#: reships TΠ at every join (the paper's ProbKB-pn configuration).
MPP_POLICIES = ("matviews", "naive")

BACKEND_KINDS = ("single", "mpp")


@dataclass(frozen=True)
class MPPConfig:
    """Shape of the simulated MPP cluster.

    ``num_workers=0`` (the default) runs every segment's work serially
    in the master process; ``num_workers >= 1`` spawns that many real
    worker processes, each owning ``num_segments / num_workers`` of the
    segments (see :mod:`repro.mpp.workers`).  Both modes produce
    bit-identical tables and modelled timings.

    ``plan="adaptive"`` (the default) decides broadcast-vs-redistribute
    from actual intermediate sizes at run time; ``plan="static"`` takes
    those decisions up front from catalog statistics
    (:mod:`repro.mpp.static_planner`).  Result rows are bit-identical
    either way — only the motions (and their modelled cost) can differ.
    """

    num_segments: int = 8
    num_workers: int = 0
    policy: str = "matviews"
    worker_timeout: float = 60.0
    plan: str = "adaptive"

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {self.num_segments}")
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if self.policy not in MPP_POLICIES:
            raise ValueError(
                f"unknown MPP policy {self.policy!r} (use one of {MPP_POLICIES})"
            )
        if self.plan not in PLAN_MODES:
            raise ValueError(
                f"unknown plan mode {self.plan!r} (use one of {PLAN_MODES})"
            )

    @property
    def use_matviews(self) -> bool:
        return self.policy == "matviews"


@dataclass(frozen=True)
class BackendConfig:
    """Which engine holds the tables.

    ``kind="single"`` is the PostgreSQL role, ``kind="mpp"`` the
    Greenplum role; ``mpp`` tunes the latter and is ignored by the
    former.
    """

    kind: str = "single"
    mpp: MPPConfig = field(default_factory=MPPConfig)
    name: Optional[str] = None
    #: debug gate: statically verify every distinct plan once before it
    #: executes (False still honors the PROBKB_VERIFY_PLANS env var)
    verify_plans: bool = False
    #: relational engine: "columnar" or "rows"; None defers to the
    #: PROBKB_EXECUTOR env var, then the columnar default
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r} (use one of {BACKEND_KINDS})"
            )
        if self.executor is not None and self.executor not in EXECUTOR_ENGINES:
            raise ValueError(
                f"unknown executor {self.executor!r} "
                f"(use one of {EXECUTOR_ENGINES})"
            )


#: Pre-flight static-analysis gate modes: ``"off"`` skips analysis,
#: ``"warn"`` runs it and emits an :class:`~repro.analyze.AnalysisWarning`
#: (grounding output stays bit-identical to ``"off"``), ``"strict"``
#: refuses to ground a KB program with error-severity findings.
ANALYSIS_MODES = ("off", "warn", "strict")


@dataclass(frozen=True)
class GroundingConfig:
    """How Algorithm 1 runs."""

    max_iterations: Optional[int] = None
    apply_constraints: bool = True
    semi_naive: bool = False
    analysis: str = "warn"

    def __post_init__(self) -> None:
        if self.analysis not in ANALYSIS_MODES:
            raise ValueError(
                f"unknown analysis mode {self.analysis!r} "
                f"(use one of {ANALYSIS_MODES})"
            )


@dataclass(frozen=True, init=False)
class InferenceConfig:
    """How marginal inference runs over the ground factor graph.

    ``engine`` names a factory in :mod:`repro.infer.registry` (built-ins:
    ``"gibbs"``, ``"bp"``); unknown names raise a :class:`ValueError`
    listing what is registered.  ``num_workers=0`` (the default) samples
    serially in the master process; ``num_workers >= 2`` runs the gibbs
    engine's componentwise sweep on a persistent worker pool
    (:mod:`repro.infer.parallel`) — marginals are bit-identical either
    way at a fixed seed.  ``shard_threshold`` is the component size at
    which a single component is swept by all workers together instead of
    one.

    The legacy spellings ``method=`` and ``num_sweeps=`` still work but
    emit one :class:`DeprecationWarning` each; read access through the
    ``.method`` / ``.num_sweeps`` properties stays silent.
    """

    engine: str = "gibbs"
    sweeps: int = 500
    seed: int = 0
    num_workers: int = 0
    worker_timeout: float = 60.0
    shard_threshold: int = 512

    def __init__(
        self,
        engine: str = "gibbs",
        sweeps: int = 500,
        seed: int = 0,
        num_workers: int = 0,
        worker_timeout: float = 60.0,
        shard_threshold: int = 512,
        *,
        method: Any = _UNSET,
        num_sweeps: Any = _UNSET,
    ) -> None:
        if method is not _UNSET:
            warnings.warn(
                "InferenceConfig(method=...) is deprecated; pass engine= "
                "(see repro.infer.registry)",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = method
        if num_sweeps is not _UNSET:
            warnings.warn(
                "InferenceConfig(num_sweeps=...) is deprecated; pass sweeps=",
                DeprecationWarning,
                stacklevel=2,
            )
            sweeps = num_sweeps
        object.__setattr__(self, "engine", engine)
        object.__setattr__(self, "sweeps", sweeps)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "num_workers", num_workers)
        object.__setattr__(self, "worker_timeout", worker_timeout)
        object.__setattr__(self, "shard_threshold", shard_threshold)
        self._validate()

    def _validate(self) -> None:
        from ..infer.registry import registered_engines

        if self.engine not in registered_engines():
            raise ValueError(
                f"unknown inference engine {self.engine!r} "
                f"(registered: {', '.join(registered_engines())})"
            )
        if self.sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {self.sweeps}")
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.shard_threshold < 2:
            raise ValueError(
                f"shard_threshold must be >= 2, got {self.shard_threshold}"
            )

    @property
    def method(self) -> str:
        """Deprecated spelling of :attr:`engine` (silent on read)."""
        return self.engine

    @property
    def num_sweeps(self) -> int:
        """Deprecated spelling of :attr:`sweeps` (silent on read)."""
        return self.sweeps


BackendSpec = Union[BackendConfig, Backend, str]


def build_backend(spec: BackendSpec = BackendConfig()) -> Backend:
    """Resolve a backend spec to a live :class:`Backend`.

    Accepts a :class:`BackendConfig`, an already-constructed backend
    (returned as-is), or the shorthand strings ``"single"`` / ``"mpp"``
    (resolved with default tuning).
    """
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        spec = BackendConfig(kind=spec)
    if not isinstance(spec, BackendConfig):
        raise TypeError(
            f"expected BackendConfig, Backend, or 'single'/'mpp'; got {spec!r}"
        )
    # verify_plans=False means "not forced here": pass None so the
    # PROBKB_VERIFY_PLANS env var still switches the gate on
    verify = spec.verify_plans or None
    if spec.kind == "single":
        return SingleNodeBackend(
            name=spec.name or "probkb",
            verify_plans=verify,
            executor=spec.executor,
        )
    mpp = spec.mpp
    return MPPBackend(
        nseg=mpp.num_segments,
        use_matviews=mpp.use_matviews,
        name=spec.name or "probkb-p",
        num_workers=mpp.num_workers,
        worker_timeout=mpp.worker_timeout,
        plan=mpp.plan,
        verify_plans=verify,
        executor=spec.executor,
    )
