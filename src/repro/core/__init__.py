"""The paper's core contribution: probabilistic KBs as relations,
batch grounding, quality control hooks, and the Tuffy-T baseline."""

from .backends import Backend, MPPBackend, SingleNodeBackend, TPI_VIEWS
from .clauses import (
    Atom,
    ClassifiedClause,
    ClauseError,
    HornClause,
    PARTITION_BODY_PATTERNS,
    PARTITION_INDEXES,
    classify_clause,
    clause_from_identifier,
)
from .hierarchy import broaden_facts, generalizations, subclass_map
from .grounding import (
    DEFAULT_MAX_ITERATIONS,
    Grounder,
    GroundingResult,
    IterationStats,
)
from .lineage import Derivation, DerivationTree, LineageIndex
from .model import (
    Fact,
    FunctionalConstraint,
    KnowledgeBase,
    KnowledgeBaseError,
    Relation,
    TYPE_I,
    TYPE_II,
)
from .probkb import ProbKB, make_backend
from .relmodel import Dictionary, LoadReport, RelationalKB
from .sqlgen import (
    apply_constraints_key_plan,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)
from .tuffy import TuffyT

__all__ = [
    "Atom",
    "Backend",
    "ClassifiedClause",
    "ClauseError",
    "DEFAULT_MAX_ITERATIONS",
    "Derivation",
    "DerivationTree",
    "Dictionary",
    "Fact",
    "FunctionalConstraint",
    "Grounder",
    "GroundingResult",
    "HornClause",
    "IterationStats",
    "KnowledgeBase",
    "KnowledgeBaseError",
    "LineageIndex",
    "LoadReport",
    "MPPBackend",
    "PARTITION_BODY_PATTERNS",
    "PARTITION_INDEXES",
    "ProbKB",
    "Relation",
    "RelationalKB",
    "SingleNodeBackend",
    "TPI_VIEWS",
    "TYPE_I",
    "TYPE_II",
    "TuffyT",
    "apply_constraints_key_plan",
    "broaden_facts",
    "classify_clause",
    "clause_from_identifier",
    "ground_atoms_plan",
    "generalizations",
    "ground_factors_plan",
    "make_backend",
    "singleton_factors_plan",
    "subclass_map",
]
