"""The paper's core contribution: probabilistic KBs as relations,
batch grounding, quality control hooks, and the Tuffy-T baseline."""

from .backends import Backend, MPPBackend, SingleNodeBackend, TPI_VIEWS
from .clauses import (
    Atom,
    ClassifiedClause,
    ClauseError,
    HornClause,
    PARTITION_BODY_PATTERNS,
    PARTITION_INDEXES,
    classify_clause,
    clause_from_identifier,
    partition_patterns_text,
)
from .config import (
    ANALYSIS_MODES,
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    build_backend,
)
from .hierarchy import broaden_facts, generalizations, subclass_map
from .grounding import (
    DEFAULT_MAX_ITERATIONS,
    Grounder,
    GroundingResult,
    IterationStats,
)
from .lineage import Derivation, DerivationTree, LineageIndex
from .model import (
    Fact,
    FunctionalConstraint,
    KnowledgeBase,
    KnowledgeBaseError,
    Relation,
    TYPE_I,
    TYPE_II,
)
from .probkb import ProbKB, make_backend
from .relmodel import Dictionary, LoadReport, RelationalKB
from .results import ConstraintResult, InferenceResult
from .sqlgen import (
    apply_constraints_key_plan,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)
from .tuffy import TuffyT

__all__ = [
    "ANALYSIS_MODES",
    "Atom",
    "Backend",
    "BackendConfig",
    "ClassifiedClause",
    "ClauseError",
    "ConstraintResult",
    "DEFAULT_MAX_ITERATIONS",
    "Derivation",
    "DerivationTree",
    "Dictionary",
    "Fact",
    "FunctionalConstraint",
    "Grounder",
    "GroundingConfig",
    "GroundingResult",
    "HornClause",
    "InferenceConfig",
    "InferenceResult",
    "IterationStats",
    "KnowledgeBase",
    "KnowledgeBaseError",
    "LineageIndex",
    "LoadReport",
    "MPPBackend",
    "MPPConfig",
    "PARTITION_BODY_PATTERNS",
    "PARTITION_INDEXES",
    "ProbKB",
    "Relation",
    "RelationalKB",
    "SingleNodeBackend",
    "TPI_VIEWS",
    "TYPE_I",
    "TYPE_II",
    "TuffyT",
    "apply_constraints_key_plan",
    "broaden_facts",
    "build_backend",
    "classify_clause",
    "clause_from_identifier",
    "ground_atoms_plan",
    "generalizations",
    "ground_factors_plan",
    "make_backend",
    "partition_patterns_text",
    "singleton_factors_plan",
    "subclass_map",
]
