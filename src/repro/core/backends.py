"""Execution backends: PostgreSQL-like single node vs Greenplum-like MPP.

The grounding algorithm issues the same logical plans regardless of the
backend; backends differ in where tables live, whether redistributed
materialized views of TΠ exist (Section 4.4), and how time is modelled.

Three configurations reproduce the paper's three systems:

* ``SingleNodeBackend``                      — "ProbKB"   (PostgreSQL)
* ``MPPBackend(use_matviews=False)``         — "ProbKB-pn" (Greenplum, naive)
* ``MPPBackend(use_matviews=True)``          — "ProbKB-p"  (Greenplum, tuned)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..mpp import HashDistribution, MPPDatabase, ReplicatedDistribution
from ..relational import Database, PlanNode, Result, Scan, TableSchema
from ..relational.types import Row

#: Redistributed materialized views of TΠ (Section 4.4): name -> keys.
#: "It turns out that ... the only replicates of TΠ we need to create
#: are distributed by (R,C1,C2), (R,C1,x,C2), (R,C1,C2,y), (R,C1,x,C2,y)."
TPI_VIEWS: Dict[str, Tuple[str, ...]] = {
    "T0": ("R", "C1", "C2"),
    "Tx": ("R", "C1", "x", "C2"),
    "Ty": ("R", "C1", "C2", "y"),
    "Txy": ("R", "C1", "x", "C2", "y"),
}


class Backend:
    """Common interface over the two engines."""

    name: str
    is_mpp: bool = False

    def create_table(
        self, table_schema: TableSchema, dist_keys: Optional[Sequence[str]] = None
    ) -> None:
        raise NotImplementedError

    def bulkload(self, table_name: str, rows: Sequence[Row]) -> int:
        raise NotImplementedError

    def query(self, plan: PlanNode) -> Result:
        raise NotImplementedError

    def insert_rows(self, table_name: str, rows: Sequence[Row]) -> int:
        raise NotImplementedError

    def insert_from(self, table_name: str, plan: PlanNode) -> int:
        """INSERT ... SELECT, staying inside the engine (no gather)."""
        raise NotImplementedError

    def insert_from_with_ids(
        self, table_name: str, plan: PlanNode, next_id: int, pad_nulls: int = 0
    ) -> Tuple[int, int]:
        """INSERT ... SELECT with a leading sequence column."""
        raise NotImplementedError

    def truncate(self, table_name: str) -> None:
        raise NotImplementedError

    def delete_in(
        self, table_name: str, columns: Sequence[str], key_plan: PlanNode
    ) -> int:
        raise NotImplementedError

    def table_size(self, table_name: str) -> int:
        raise NotImplementedError

    def has_table(self, table_name: str) -> bool:
        raise NotImplementedError

    def project(self, table_name: str, column_names: Sequence[str]) -> List[Row]:
        """Project a stored table onto named columns (schema-resolved).

        Callers that need specific columns of a physical table use this
        instead of slicing raw rows by position, so a schema change
        cannot silently misalign them.
        """
        raise NotImplementedError

    @property
    def elapsed_seconds(self) -> float:
        raise NotImplementedError

    def executor_info(self) -> Dict[str, object]:
        """How this backend executes work (reported by ``GET /stats``)."""
        return {
            "mode": "single-node",
            "segments": 1,
            "workers": 0,
            "degraded": False,
            "engine": getattr(
                getattr(self, "db", None), "executor_name", "columnar"
            ),
        }

    def close(self) -> None:
        """Release executor resources (worker pools); no-op by default."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def tpi_scan(self, alias: str, entity_join_columns: Sequence[str]) -> Scan:
        """A scan of the facts table suitable for joining on
        (R, C1, C2) plus the given entity columns ('x' and/or 'y').

        Single-node backends (and MPP without views) scan TΠ itself; a
        tuned MPP backend picks the redistributed materialized view whose
        distribution key matches so the join is collocated.
        """
        return Scan("TP", alias)

    def after_facts_changed(self) -> None:
        """Hook run after TΠ changes (Algorithm 1's redistribute step)."""


class SingleNodeBackend(Backend):
    """ProbKB on a single-node RDBMS (the PostgreSQL role)."""

    def __init__(
        self,
        name: str = "probkb",
        verify_plans: Optional[bool] = None,
        executor: Optional[str] = None,
    ) -> None:
        self.name = name
        self.db = Database(name, verify_plans=verify_plans, executor=executor)

    def create_table(
        self, table_schema: TableSchema, dist_keys: Optional[Sequence[str]] = None
    ) -> None:
        self.db.create_table(table_schema, replace=True)

    def bulkload(self, table_name: str, rows: Sequence[Row]) -> int:
        return self.db.bulkload(table_name, rows)

    def query(self, plan: PlanNode) -> Result:
        return self.db.query(plan)

    def insert_rows(self, table_name: str, rows: Sequence[Row]) -> int:
        return self.db.insert_rows(table_name, rows)

    def insert_from(self, table_name: str, plan: PlanNode) -> int:
        return self.db.insert_from(table_name, plan)

    def insert_from_with_ids(
        self, table_name: str, plan: PlanNode, next_id: int, pad_nulls: int = 0
    ) -> Tuple[int, int]:
        return self.db.insert_from_with_ids(table_name, plan, next_id, pad_nulls)

    def truncate(self, table_name: str) -> None:
        self.db.truncate(table_name)

    def delete_in(
        self, table_name: str, columns: Sequence[str], key_plan: PlanNode
    ) -> int:
        return self.db.delete_in(table_name, columns, key_plan)

    def table_size(self, table_name: str) -> int:
        return len(self.db.table(table_name))

    def has_table(self, table_name: str) -> bool:
        return self.db.has_table(table_name)

    def project(self, table_name: str, column_names: Sequence[str]) -> List[Row]:
        return self.db.table(table_name).project(column_names)

    @property
    def elapsed_seconds(self) -> float:
        return self.db.elapsed_seconds


class MPPBackend(Backend):
    """ProbKB on a shared-nothing MPP cluster (the Greenplum role)."""

    is_mpp = True

    def __init__(
        self,
        nseg: int = 8,
        use_matviews: bool = True,
        name: str = "probkb-p",
        num_workers: int = 0,
        worker_timeout: float = 60.0,
        plan: str = "adaptive",
        verify_plans: Optional[bool] = None,
        executor: Optional[str] = None,
    ) -> None:
        self.name = name
        self.nseg = nseg
        self.use_matviews = use_matviews
        self.num_workers = num_workers
        self.db = MPPDatabase(
            nseg=nseg,
            name=name,
            num_workers=num_workers,
            worker_timeout=worker_timeout,
            plan_mode=plan,
            verify_plans=verify_plans,
            executor=executor,
        )
        self._views_created = False

    # -- table management ------------------------------------------------------

    def create_table(
        self, table_schema: TableSchema, dist_keys: Optional[Sequence[str]] = None
    ) -> None:
        policy = HashDistribution(dist_keys) if dist_keys else None
        self.db.create_table(table_schema, policy, replace=True)

    def create_replicated_table(self, table_schema: TableSchema) -> None:
        """MLN tables are small: replicate them to every segment so rule
        application never ships them (a standard MPP dimension-table
        optimization)."""
        self.db.create_table(table_schema, ReplicatedDistribution(), replace=True)

    def bulkload(self, table_name: str, rows: Sequence[Row]) -> int:
        return self.db.bulkload(table_name, rows)

    def query(self, plan: PlanNode) -> Result:
        return self.db.query(plan)

    def insert_rows(self, table_name: str, rows: Sequence[Row]) -> int:
        return self.db.insert_rows(table_name, rows)

    def insert_from(self, table_name: str, plan: PlanNode) -> int:
        return self.db.insert_from(table_name, plan)

    def insert_from_with_ids(
        self, table_name: str, plan: PlanNode, next_id: int, pad_nulls: int = 0
    ) -> Tuple[int, int]:
        return self.db.insert_from_with_ids(table_name, plan, next_id, pad_nulls)

    def truncate(self, table_name: str) -> None:
        self.db.truncate(table_name)

    def delete_in(
        self, table_name: str, columns: Sequence[str], key_plan: PlanNode
    ) -> int:
        return self.db.delete_in(table_name, columns, key_plan)

    def table_size(self, table_name: str) -> int:
        return len(self.db.table(table_name))

    def has_table(self, table_name: str) -> bool:
        return self.db.has_table(table_name)

    def project(self, table_name: str, column_names: Sequence[str]) -> List[Row]:
        table = self.db.table(table_name)
        positions = table.schema.positions(column_names)
        return [
            tuple(row[pos] for pos in positions) for row in table.all_rows()
        ]

    @property
    def elapsed_seconds(self) -> float:
        return self.db.elapsed_seconds

    def executor_info(self) -> Dict[str, object]:
        return self.db.executor_info()

    def close(self) -> None:
        self.db.close()

    # -- redistributed materialized views ------------------------------------------

    def create_tpi_views(self) -> None:
        """Create the four redistributed materialized views of TΠ and
        register them as mirrors so TΠ DML keeps them fresh
        incrementally (Algorithm 1's redistribute step, amortized)."""
        if not self.use_matviews:
            return
        for view_name, keys in TPI_VIEWS.items():
            self.db.create_redistributed_matview(view_name, "TP", keys)
            self.db.add_mirror("TP", view_name)
        self._views_created = True

    def tpi_scan(self, alias: str, entity_join_columns: Sequence[str]) -> Scan:
        if not (self.use_matviews and self._views_created):
            return Scan("TP", alias)
        wants = frozenset(entity_join_columns)
        if wants == frozenset({"x"}):
            return Scan("Tx", alias)
        if wants == frozenset({"y"}):
            return Scan("Ty", alias)
        if wants == frozenset({"x", "y"}):
            return Scan("Txy", alias)
        return Scan("T0", alias)

    def after_facts_changed(self) -> None:
        """Algorithm 1 Line 7: ``redistribute(TΠ)``.

        A no-op here because the views are maintained incrementally as
        mirrors of TΠ's DML (cheaper than the full refresh and
        equivalent in content)."""

    def explain_last(self) -> str:
        return self.db.explain_last()
