"""ProbKB: the public facade of the system.

Ties together the relational model, the batch grounding algorithm,
quality control, and marginal inference:

    >>> from repro import ProbKB
    >>> system = ProbKB(kb, backend="mpp", nseg=8)
    >>> grounding = system.ground()
    >>> marginals = system.infer()          # {Fact: probability}
    >>> new = system.new_facts(marginals, min_probability=0.5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..infer import FactorGraph, bp_marginals, gibbs_marginals
from ..relational import Scan, to_sql
from ..relational.expr import IsNull, col
from ..relational.plan import Filter
from ..relational.types import Row
from .backends import Backend, MPPBackend, SingleNodeBackend
from .grounding import Grounder, GroundingResult
from .lineage import LineageIndex
from .model import Fact, KnowledgeBase
from .relmodel import FACT_KEY_COLUMNS, RelationalKB
from .sqlgen import (
    apply_constraints_key_plan,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)


def make_backend(
    backend: Union[str, Backend],
    nseg: int = 8,
    use_matviews: bool = True,
) -> Backend:
    """Resolve a backend spec: 'single' | 'mpp' | an existing Backend."""
    if isinstance(backend, Backend):
        return backend
    if backend == "single":
        return SingleNodeBackend()
    if backend == "mpp":
        return MPPBackend(nseg=nseg, use_matviews=use_matviews)
    raise ValueError(f"unknown backend {backend!r} (use 'single' or 'mpp')")


class ProbKB:
    """A probabilistic knowledge base loaded and ready for expansion.

    Thread-safety: a ProbKB instance is **not** safe for concurrent use.
    Mutating entry points (:meth:`ground`, :meth:`add_evidence`,
    :meth:`apply_constraints`, :meth:`materialize_marginals`) update the
    backend tables and the dictionaries in place; readers that interleave
    with them can observe partially merged state.  ``repro.serve``
    wraps an instance in a readers-writer lock for concurrent serving.
    Every mutation bumps :attr:`generation`, so callers holding results
    can detect that the KB has changed underneath them.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        backend: Union[str, Backend] = "single",
        nseg: int = 8,
        use_matviews: bool = True,
        apply_constraints: bool = True,
        semi_naive: bool = False,
    ) -> None:
        self.kb = kb
        self.backend = make_backend(backend, nseg=nseg, use_matviews=use_matviews)
        load_start = self.backend.elapsed_seconds
        self.rkb = RelationalKB(kb, self.backend)
        self.load_seconds = self.backend.elapsed_seconds - load_start
        self.grounder = Grounder(
            self.rkb,
            apply_constraints=apply_constraints,
            semi_naive=semi_naive,
        )
        self.grounding: Optional[GroundingResult] = None
        #: monotone counter, bumped every time stored state mutates
        self.generation = 0

    # -- pipeline ------------------------------------------------------------------

    def apply_constraints(self) -> int:
        """Run Query 3 once (e.g. up-front cleaning as in Section 6.1.1)."""
        removed = self.grounder.apply_constraints()
        self.backend.after_facts_changed()
        self.generation += 1
        return removed

    def ground(self, max_iterations: Optional[int] = None) -> GroundingResult:
        """Run Algorithm 1; returns per-iteration statistics."""
        self.grounding = self.grounder.run(max_iterations)
        self.grounding.load_seconds = self.load_seconds
        self.generation += 1
        return self.grounding

    def add_evidence(
        self,
        facts: Sequence[Fact],
        max_iterations: Optional[int] = None,
        reground_factors: bool = True,
    ) -> GroundingResult:
        """Incrementally expand the KB with new extracted evidence.

        The new facts become the semi-naive delta, so each follow-up
        iteration joins only what changed — no re-derivation of the
        existing closure.  TΦ is rebuilt afterwards (factors are a
        function of the final atom set).
        """
        incremental = Grounder(
            self.rkb,
            apply_constraints=self.grounder.apply_constraints_each_iteration,
            semi_naive=True,
        )
        outcome = GroundingResult()
        added = self.rkb.add_evidence(facts)
        outcome.iterations, outcome.converged = incremental.ground_atoms(
            max_iterations
        )
        if reground_factors:
            self.backend.truncate("TF")
            outcome.factors, outcome.factor_seconds = incremental.ground_factors()
        self.grounding = outcome
        outcome.load_seconds = self.load_seconds
        self.generation += 1
        # the evidence itself counts as new knowledge in the report
        if outcome.iterations:
            outcome.iterations[0].new_facts += added
        return outcome

    def factor_rows(self) -> List[Row]:
        return self.backend.query(Scan("TF")).rows

    def factor_graph(self) -> FactorGraph:
        """The ground factor graph handed to the inference engine."""
        return FactorGraph.from_factor_rows(self.factor_rows())

    def infer(
        self,
        method: str = "gibbs",
        num_sweeps: int = 500,
        seed: int = 0,
    ) -> Dict[Fact, float]:
        """Marginal probabilities of every fact (observed and inferred)."""
        graph = self.factor_graph()
        if method == "gibbs":
            marginals = gibbs_marginals(graph, num_sweeps=num_sweeps, seed=seed)
        elif method == "bp":
            marginals = bp_marginals(graph).marginals
        else:
            raise ValueError(f"unknown inference method {method!r} (gibbs|bp)")
        by_id = self._facts_by_id()
        return {
            by_id[fact_id]: probability
            for fact_id, probability in marginals.items()
            if fact_id in by_id
        }

    # -- results ----------------------------------------------------------------------

    def all_facts(self) -> List[Fact]:
        return [self.rkb.decode_fact(row) for row in self.backend.query(Scan("TP")).rows]

    def inferred_facts(self) -> List[Fact]:
        """Facts added by knowledge expansion (NULL-weight TΠ rows)."""
        plan = Filter(Scan("TP", "T"), IsNull(col("T.w")))
        return [self.rkb.decode_fact(row) for row in self.backend.query(plan).rows]

    def new_facts(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        """Inferred facts with their marginals, filtered by probability."""
        inferred = self.inferred_facts()
        if marginals is None:
            return [(fact, None) for fact in inferred]
        by_key = _marginals_by_key(marginals)
        results = []
        for fact in inferred:
            probability = by_key.get(fact.key)
            if probability is not None and probability >= min_probability:
                results.append((fact, probability))
        return results

    def lineage(self) -> LineageIndex:
        return LineageIndex(self.factor_rows())

    # -- materialized marginals & query-time access ---------------------------

    def materialize_marginals(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        method: str = "gibbs",
        num_sweeps: int = 500,
        seed: int = 0,
    ) -> int:
        """Store marginal probabilities in the database (table TProb).

        ProbKB "stores all the inferred results in the knowledge base,
        thereby avoiding query-time computation and improving system
        responsivity" (Section 2.2) — after this, :meth:`query_facts`
        answers probabilistic queries straight from the tables.
        """
        from ..relational import schema as make_schema

        if marginals is None:
            marginals = self.infer(method=method, num_sweeps=num_sweeps, seed=seed)
        if not self.backend.has_table("TProb"):
            self.backend.create_table(
                make_schema("TProb", "I:int", "p:float", unique_key=["I"]),
                dist_keys=["I"],
            )
        else:
            self.backend.truncate("TProb")
        key_to_id = {
            row[1:]: row[0]
            for row in self.backend.project("TP", ("I",) + FACT_KEY_COLUMNS)
        }
        rows = []
        for fact, probability in marginals.items():
            fact_id = key_to_id.get(self.rkb.encode_fact_key(fact))
            if fact_id is not None:
                rows.append((fact_id, probability))
        inserted = self.backend.insert_rows("TProb", rows)
        self.generation += 1
        return inserted

    def query_facts(
        self,
        relation: Optional[str] = None,
        subject: Optional[str] = None,
        object: Optional[str] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        """Query the expanded KB by pattern, with stored probabilities.

        Filters run as relational plans inside the backend.  Facts
        without a materialized marginal (or before materialization)
        carry probability None and pass any threshold of 0.
        """
        from ..relational.expr import conj, eq_const

        predicates = []
        if relation is not None:
            relation_id = self.rkb.relations.lookup(relation)
            if relation_id is None:
                return []
            predicates.append(eq_const("T.R", relation_id))
        if subject is not None:
            subject_id = self.rkb.entities.lookup(subject)
            if subject_id is None:
                return []
            predicates.append(eq_const("T.x", subject_id))
        if object is not None:
            object_id = self.rkb.entities.lookup(object)
            if object_id is None:
                return []
            predicates.append(eq_const("T.y", object_id))

        plan: "Scan" = Scan("TP", "T")
        if predicates:
            plan = Filter(plan, conj(*predicates))
        rows = self.backend.query(plan).rows

        probabilities: Dict[int, float] = {}
        if self.backend.has_table("TProb"):
            probabilities = dict(self.backend.query(Scan("TProb")).rows)

        results: List[Tuple[Fact, Optional[float]]] = []
        for row in rows:
            probability = probabilities.get(row[0])
            if probability is None:
                if min_probability > 0.0:
                    continue
            elif probability < min_probability:
                continue
            results.append((self.rkb.decode_fact(row), probability))
        return results

    def _facts_by_id(self) -> Dict[int, Fact]:
        rows = self.backend.query(Scan("TP")).rows
        return {row[0]: self.rkb.decode_fact(row) for row in rows}

    # -- introspection -----------------------------------------------------------------

    def generated_sql(self) -> Dict[str, str]:
        """The actual SQL the grounding algorithm runs (paper Figure 3)."""
        queries: Dict[str, str] = {}
        for partition in self.rkb.nonempty_partitions or [1, 3]:
            queries[f"Query 1-{partition}"] = to_sql(
                ground_atoms_plan(partition, self.backend, mln_alias=f"M{partition}")
            )
            queries[f"Query 2-{partition}"] = to_sql(
                ground_factors_plan(partition, self.backend, mln_alias=f"M{partition}")
            )
        queries["Query 3 (type I subquery)"] = to_sql(apply_constraints_key_plan(1))
        queries["Query 3 (type II subquery)"] = to_sql(apply_constraints_key_plan(2))
        queries["singleton factors"] = to_sql(singleton_factors_plan(self.backend))
        return queries

    def fact_count(self) -> int:
        return self.rkb.fact_count()

    def factor_count(self) -> int:
        return self.rkb.factor_count()

    @property
    def elapsed_seconds(self) -> float:
        return self.backend.elapsed_seconds


def _marginals_by_key(
    marginals: Dict[Fact, float]
) -> Dict[Tuple[str, str, str, str, str], float]:
    """Re-key marginals by semantic fact key (weights differ between the
    Fact a caller holds and the Fact inference returned, so the dataclass
    hash cannot be used directly)."""
    return {fact.key: probability for fact, probability in marginals.items()}
