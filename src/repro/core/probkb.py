"""ProbKB: the public facade of the system.

Ties together the relational model, the batch grounding algorithm,
quality control, and marginal inference:

    >>> from repro import ProbKB
    >>> from repro.api import BackendConfig, MPPConfig
    >>> system = ProbKB(kb, backend=BackendConfig(kind="mpp",
    ...                                           mpp=MPPConfig(num_segments=8)))
    >>> grounding = system.ground()
    >>> marginals = system.infer()          # InferenceResult ({Fact: probability})
    >>> new = system.new_facts(marginals, min_probability=0.5)

The pre-config keyword spellings (``nseg=``, ``use_matviews=``,
``apply_constraints=``, ``infer(num_sweeps=...)``, ...) still work but
emit :class:`DeprecationWarning`; :mod:`repro.api` documents the
migration.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from ..infer import FactorGraph
from ..infer.registry import InferenceEngine, build_engine
from ..relational import Scan, to_sql
from ..relational.expr import IsNull, col
from ..relational.plan import Filter
from ..relational.types import Row
from .backends import Backend
from .clauses import HornClause
from .config import (
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    build_backend,
)
from .grounding import Grounder, GroundingResult
from .lineage import LineageIndex
from .model import Fact, KnowledgeBase
from .relmodel import FACT_KEY_COLUMNS, RelationalKB
from .results import ConstraintResult, InferenceResult
from .sqlgen import (
    apply_constraints_key_plan,
    ground_atoms_plan,
    ground_factors_plan,
    singleton_factors_plan,
)

if TYPE_CHECKING:
    from ..analyze import AnalysisReport, StaticPlanReport
    from ..relational.verify import VerificationReport

#: Distinguishes "caller did not pass this" from any real value, so the
#: deprecation shims only fire on explicit use of a legacy keyword.
_UNSET = object()


def make_backend(
    backend: Union[str, Backend],
    nseg: int = 8,
    use_matviews: bool = True,
) -> Backend:
    """Resolve a backend spec: 'single' | 'mpp' | an existing Backend.

    .. deprecated::
        Use :func:`repro.api.build_backend` with a
        :class:`~repro.api.BackendConfig` instead.
    """
    warnings.warn(
        "make_backend() is deprecated; use repro.api.build_backend with "
        "a BackendConfig",
        DeprecationWarning,
        stacklevel=2,
    )
    if isinstance(backend, Backend):
        return backend
    return build_backend(
        BackendConfig(
            kind=backend,
            mpp=MPPConfig(
                num_segments=nseg,
                policy="matviews" if use_matviews else "naive",
            ),
        )
    )


class ProbKB:
    """A probabilistic knowledge base loaded and ready for expansion.

    Thread-safety: a ProbKB instance is **not** safe for concurrent use.
    Mutating entry points (:meth:`ground`, :meth:`add_evidence`,
    :meth:`apply_constraints`, :meth:`materialize_marginals`) update the
    backend tables and the dictionaries in place; readers that interleave
    with them can observe partially merged state.  ``repro.serve``
    wraps an instance in a readers-writer lock for concurrent serving.
    Every mutation bumps :attr:`generation`, so callers holding results
    can detect that the KB has changed underneath them.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        backend: Union[BackendConfig, Backend, str, None] = None,
        *,
        grounding: Optional[GroundingConfig] = None,
        inference: Optional[InferenceConfig] = None,
        nseg: Any = _UNSET,
        use_matviews: Any = _UNSET,
        apply_constraints: Any = _UNSET,
        semi_naive: Any = _UNSET,
    ) -> None:
        self.kb = kb
        self.backend_config: Optional[BackendConfig] = None
        self.backend = self._resolve_backend(backend, nseg, use_matviews)
        self.grounding_config = self._resolve_grounding(
            grounding, apply_constraints, semi_naive
        )
        self.inference_config = inference or InferenceConfig()
        self.analysis_report = self._preflight_analysis()
        load_start = self.backend.elapsed_seconds
        self.rkb = RelationalKB(kb, self.backend)
        self.load_seconds = self.backend.elapsed_seconds - load_start
        self.grounder = Grounder(
            self.rkb,
            apply_constraints=self.grounding_config.apply_constraints,
            semi_naive=self.grounding_config.semi_naive,
        )
        self.grounding: Optional[GroundingResult] = None
        #: live engines keyed by their construction-relevant tuning, so
        #: repeated infer() calls reuse one worker pool per shape
        self._engines: Dict[Tuple[str, int, float, int], InferenceEngine] = {}
        #: monotone counter, bumped every time stored state mutates
        self.generation = 0

    def _resolve_backend(
        self,
        backend: Union[BackendConfig, Backend, str, None],
        nseg: Any,
        use_matviews: Any,
    ) -> Backend:
        overrides = {}
        if nseg is not _UNSET:
            overrides["num_segments"] = nseg
        if use_matviews is not _UNSET:
            overrides["policy"] = "matviews" if use_matviews else "naive"
        if overrides:
            warnings.warn(
                "ProbKB(nseg=..., use_matviews=...) is deprecated; pass "
                "backend=BackendConfig(kind='mpp', mpp=MPPConfig(...))",
                DeprecationWarning,
                stacklevel=3,
            )
        if isinstance(backend, Backend):
            return backend
        if backend is None:
            config = BackendConfig()
        elif isinstance(backend, str):
            config = BackendConfig(kind=backend)
        elif isinstance(backend, BackendConfig):
            config = backend
        else:
            raise TypeError(
                "backend must be a BackendConfig, a Backend, or "
                f"'single'/'mpp'; got {backend!r}"
            )
        if overrides:
            config = replace(config, mpp=replace(config.mpp, **overrides))
        self.backend_config = config
        return build_backend(config)

    def _preflight_analysis(self) -> Optional["AnalysisReport"]:
        """The static-analysis gate (GroundingConfig.analysis).

        ``"off"`` skips analysis entirely; ``"warn"`` runs it and emits
        one :class:`~repro.analyze.AnalysisWarning` summarizing any
        errors/warnings (analysis is pure, so grounding output stays
        bit-identical to ``"off"``); ``"strict"`` raises
        :class:`~repro.analyze.AnalysisError` instead of loading a KB
        program with error-severity findings.  Returns the report (or
        None when off) for callers that want the full diagnostics.
        """
        mode = self.grounding_config.analysis
        if mode == "off":
            return None
        from ..analyze import (
            AnalysisError,
            AnalysisWarning,
            PlanEnvironment,
            analyze,
        )

        report = analyze(
            self.kb, environment=PlanEnvironment.from_backend(self.backend)
        )
        if report.has_errors and mode == "strict":
            raise AnalysisError(report)
        problems = report.errors + report.warnings
        if problems:
            shown = "; ".join(f.render() for f in problems[:3])
            suffix = "" if len(problems) <= 3 else f" (+{len(problems) - 3} more)"
            warnings.warn(
                f"static analysis: {report.summary()} — {shown}{suffix} "
                f"(run `repro analyze` for the full report)",
                AnalysisWarning,
                stacklevel=4,
            )
        return report

    def _resolve_grounding(
        self,
        grounding: Optional[GroundingConfig],
        apply_constraints: Any,
        semi_naive: Any,
    ) -> GroundingConfig:
        overrides = {}
        if apply_constraints is not _UNSET:
            overrides["apply_constraints"] = apply_constraints
        if semi_naive is not _UNSET:
            overrides["semi_naive"] = semi_naive
        if overrides:
            warnings.warn(
                "ProbKB(apply_constraints=..., semi_naive=...) is deprecated; "
                "pass grounding=GroundingConfig(...)",
                DeprecationWarning,
                stacklevel=3,
            )
        config = grounding or GroundingConfig()
        if overrides:
            config = replace(config, **overrides)
        return config

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (worker pools); idempotent."""
        engines, self._engines = self._engines, {}
        for engine in engines.values():
            engine.close()
        self.backend.close()

    def __enter__(self) -> "ProbKB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pipeline ------------------------------------------------------------------

    def apply_constraints(self) -> ConstraintResult:
        """Run Query 3 once (e.g. up-front cleaning as in Section 6.1.1).

        Returns a :class:`ConstraintResult` — an ``int`` (facts removed)
        that also carries the modelled time and per-type breakdown.
        """
        start = self.backend.elapsed_seconds
        removed, per_type = self.grounder.apply_constraints_detailed()
        self.backend.after_facts_changed()
        self.generation += 1
        return ConstraintResult(
            removed,
            elapsed_seconds=self.backend.elapsed_seconds - start,
            per_type=per_type,
        )

    def ground(self, max_iterations: Optional[int] = None) -> GroundingResult:
        """Run Algorithm 1; returns per-iteration statistics."""
        if max_iterations is None:
            max_iterations = self.grounding_config.max_iterations
        self.grounding = self.grounder.run(max_iterations)
        self.grounding.load_seconds = self.load_seconds
        self.generation += 1
        return self.grounding

    def add_evidence(
        self,
        facts: Sequence[Fact],
        max_iterations: Optional[int] = None,
        reground_factors: bool = True,
    ) -> GroundingResult:
        """Incrementally expand the KB with new extracted evidence.

        The new facts become the semi-naive delta, so each follow-up
        iteration joins only what changed — no re-derivation of the
        existing closure.  TΦ is rebuilt afterwards (factors are a
        function of the final atom set).
        """
        incremental = Grounder(
            self.rkb,
            apply_constraints=self.grounder.apply_constraints_each_iteration,
            semi_naive=True,
        )
        outcome = GroundingResult()
        added = self.rkb.add_evidence(facts)
        outcome.iterations, outcome.converged = incremental.ground_atoms(
            max_iterations
        )
        if reground_factors:
            self.backend.truncate("TF")
            outcome.factors, outcome.factor_seconds = incremental.ground_factors()
        self.grounding = outcome
        outcome.load_seconds = self.load_seconds
        self.generation += 1
        # the evidence itself counts as new knowledge in the report
        if outcome.iterations:
            outcome.iterations[0].new_facts += added
        return outcome

    def add_rules(
        self,
        rules: Sequence[HornClause],
        max_iterations: Optional[int] = None,
        reground_factors: bool = True,
    ) -> GroundingResult:
        """Incrementally expand the KB with new deductive rules.

        The same static-analysis gate that guards construction runs over
        the combined program (existing KB plus the new rules): under
        ``analysis="strict"`` an error-severity finding rejects the
        whole batch and leaves the KB untouched; under ``"warn"`` the
        findings are emitted as an :class:`~repro.analyze.AnalysisWarning`.
        Accepted rules are merged into the MLN tables and a full naive
        grounding pass derives their consequences (a new rule must see
        every existing fact, so the semi-naive delta does not apply).
        """
        rules = list(rules)
        rules_before = len(self.kb.rules)
        try:
            for rule in rules:
                self.kb.add_rule(rule)
            self.analysis_report = self._preflight_analysis()
        except Exception:
            del self.kb.rules[rules_before:]
            raise
        self.rkb.add_rules(rules)
        grounder = Grounder(
            self.rkb,
            apply_constraints=self.grounding_config.apply_constraints,
            semi_naive=False,
        )
        outcome = GroundingResult()
        outcome.iterations, outcome.converged = grounder.ground_atoms(
            max_iterations
        )
        if reground_factors:
            self.backend.truncate("TF")
            outcome.factors, outcome.factor_seconds = grounder.ground_factors()
        self.grounding = outcome
        outcome.load_seconds = self.load_seconds
        self.generation += 1
        return outcome

    def explain(self) -> "StaticPlanReport":
        """Static EXPLAIN of every grounding query for this backend's
        environment — Figure 4's plan trees with estimated rows and
        modelled seconds, without executing anything (see
        :mod:`repro.analyze.plans` and the ``repro explain`` CLI)."""
        from ..analyze import PlanEnvironment, estimate_plans

        return estimate_plans(
            self.kb, PlanEnvironment.from_backend(self.backend)
        )

    def verify_plans(self) -> List["VerificationReport"]:
        """Run the plan verifier (PKB201-212) over every grounding query
        for this backend's environment: the logical plans plus, on a
        multi-segment cluster, the statically planned physical plans.
        Pure — nothing executes, no table changes."""
        from ..analyze import PlanEnvironment, verify_partition_plans

        return verify_partition_plans(
            self.kb, PlanEnvironment.from_backend(self.backend)
        )

    def factor_rows(self) -> List[Row]:
        return self.backend.query(Scan("TF")).rows

    def factor_graph(self) -> FactorGraph:
        """The ground factor graph handed to the inference engine."""
        return FactorGraph.from_factor_rows(self.factor_rows())

    def infer(
        self,
        config: Optional[Union[InferenceConfig, str]] = None,
        *,
        method: Any = _UNSET,
        num_sweeps: Any = _UNSET,
        seed: Any = _UNSET,
    ) -> InferenceResult:
        """Marginal probabilities of every fact (observed and inferred).

        Returns an :class:`InferenceResult` — a ``{Fact: probability}``
        dict that also records the method, parameters, wall-clock time,
        and factor-graph size.
        """
        config = self._inference_config(config, method, num_sweeps, seed)
        engine = self.inference_engine(config)
        rows = self.factor_rows()
        num_variables = len(
            {var for row in rows for var in row[:3] if var is not None}
        )
        started = time.perf_counter()
        marginals = engine.marginals(rows, config)
        elapsed = time.perf_counter() - started
        by_id = self._facts_by_id()
        resolved = {
            by_id[fact_id]: probability
            for fact_id, probability in marginals.items()
            if fact_id in by_id
        }
        return InferenceResult(
            resolved,
            method=config.engine,
            num_sweeps=config.sweeps,
            seed=config.seed,
            elapsed_seconds=elapsed,
            num_variables=num_variables,
            num_factors=len(rows),
        )

    def inference_engine(
        self, config: Optional[InferenceConfig] = None
    ) -> InferenceEngine:
        """The live engine for ``config`` (default: the session's).

        Engines are cached per construction-relevant tuning — one
        worker pool per shape, reused across infer() calls — and closed
        with the ProbKB.
        """
        config = config or self.inference_config
        key = (
            config.engine,
            config.num_workers,
            config.worker_timeout,
            config.shard_threshold,
        )
        engine = self._engines.get(key)
        if engine is None:
            engine = build_engine(config)
            self._engines[key] = engine
        return engine

    def inference_info(
        self, config: Optional[InferenceConfig] = None
    ) -> Dict[str, Any]:
        """Engine introspection (engine, workers, colours, last wall
        clock) — the inference counterpart of ``executor_info()``."""
        config = config or self.inference_config
        return {
            "sweeps": config.sweeps,
            "seed": config.seed,
            **self.inference_engine(config).info(),
        }

    def inference_driver(
        self, config: Optional[InferenceConfig] = None
    ) -> Optional[Any]:
        """The gibbs engine's pool driver, or ``None`` for other engines.

        The delta path hands this to
        :func:`repro.delta.inference.sample_components` so big touched
        components ride the worker pool too.
        """
        config = config or self.inference_config
        if config.engine != "gibbs":
            return None
        engine = self.inference_engine(config)
        return getattr(engine, "driver", None)

    def _inference_config(
        self,
        config: Optional[Union[InferenceConfig, str]],
        method: Any,
        num_sweeps: Any,
        seed: Any,
    ) -> InferenceConfig:
        """Fold legacy inference keywords into an :class:`InferenceConfig`."""
        if isinstance(config, str):  # legacy positional: infer("bp")
            method, config = config, None
        overrides = {}
        if method is not _UNSET:
            overrides["engine"] = method
        if num_sweeps is not _UNSET:
            overrides["sweeps"] = num_sweeps
        if seed is not _UNSET:
            overrides["seed"] = seed
        if overrides:
            warnings.warn(
                "passing method=/num_sweeps=/seed= is deprecated; pass an "
                "InferenceConfig",
                DeprecationWarning,
                stacklevel=3,
            )
        base = config if config is not None else self.inference_config
        if overrides:
            base = replace(base, **overrides)
        return base

    # -- results ----------------------------------------------------------------------

    def all_facts(self) -> List[Fact]:
        return [self.rkb.decode_fact(row) for row in self.backend.query(Scan("TP")).rows]

    def inferred_facts(self) -> List[Fact]:
        """Facts added by knowledge expansion (NULL-weight TΠ rows)."""
        plan = Filter(Scan("TP", "T"), IsNull(col("T.w")))
        return [self.rkb.decode_fact(row) for row in self.backend.query(plan).rows]

    def new_facts(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        """Inferred facts with their marginals, filtered by probability."""
        inferred = self.inferred_facts()
        if marginals is None:
            return [(fact, None) for fact in inferred]
        by_key = _marginals_by_key(marginals)
        results = []
        for fact in inferred:
            probability = by_key.get(fact.key)
            if probability is not None and probability >= min_probability:
                results.append((fact, probability))
        return results

    def lineage(self) -> LineageIndex:
        return LineageIndex(self.factor_rows())

    # -- materialized marginals & query-time access ---------------------------

    def materialize_marginals(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        config: Optional[InferenceConfig] = None,
        *,
        method: Any = _UNSET,
        num_sweeps: Any = _UNSET,
        seed: Any = _UNSET,
    ) -> int:
        """Store marginal probabilities in the database (table TProb).

        ProbKB "stores all the inferred results in the knowledge base,
        thereby avoiding query-time computation and improving system
        responsivity" (Section 2.2) — after this, :meth:`query_facts`
        answers probabilistic queries straight from the tables.
        """
        from ..relational import schema as make_schema

        if marginals is None:
            marginals = self.infer(
                self._inference_config(config, method, num_sweeps, seed)
            )
        if not self.backend.has_table("TProb"):
            self.backend.create_table(
                make_schema("TProb", "I:int", "p:float", unique_key=["I"]),
                dist_keys=["I"],
            )
        else:
            self.backend.truncate("TProb")
        key_to_id = {
            row[1:]: row[0]
            for row in self.backend.project("TP", ("I",) + FACT_KEY_COLUMNS)
        }
        rows = []
        for fact, probability in marginals.items():
            fact_id = key_to_id.get(self.rkb.encode_fact_key(fact))
            if fact_id is not None:
                rows.append((fact_id, probability))
        inserted = self.backend.insert_rows("TProb", rows)
        self.generation += 1
        return inserted

    def query_facts(
        self,
        relation: Optional[str] = None,
        subject: Optional[str] = None,
        object: Optional[str] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        """Query the expanded KB by pattern, with stored probabilities.

        Filters run as relational plans inside the backend.  Facts
        without a materialized marginal (or before materialization)
        carry probability None and pass any threshold of 0.
        """
        from ..relational.expr import conj, eq_const

        predicates = []
        if relation is not None:
            relation_id = self.rkb.relations.lookup(relation)
            if relation_id is None:
                return []
            predicates.append(eq_const("T.R", relation_id))
        if subject is not None:
            subject_id = self.rkb.entities.lookup(subject)
            if subject_id is None:
                return []
            predicates.append(eq_const("T.x", subject_id))
        if object is not None:
            object_id = self.rkb.entities.lookup(object)
            if object_id is None:
                return []
            predicates.append(eq_const("T.y", object_id))

        plan: "Scan" = Scan("TP", "T")
        if predicates:
            plan = Filter(plan, conj(*predicates))
        rows = self.backend.query(plan).rows

        probabilities: Dict[int, float] = {}
        if self.backend.has_table("TProb"):
            probabilities = dict(self.backend.query(Scan("TProb")).rows)

        results: List[Tuple[Fact, Optional[float]]] = []
        for row in rows:
            probability = probabilities.get(row[0])
            if probability is None:
                if min_probability > 0.0:
                    continue
            elif probability < min_probability:
                continue
            results.append((self.rkb.decode_fact(row), probability))
        return results

    def _facts_by_id(self) -> Dict[int, Fact]:
        rows = self.backend.query(Scan("TP")).rows
        return {row[0]: self.rkb.decode_fact(row) for row in rows}

    # -- introspection -----------------------------------------------------------------

    def generated_sql(self) -> Dict[str, str]:
        """The actual SQL the grounding algorithm runs (paper Figure 3)."""
        queries: Dict[str, str] = {}
        for partition in self.rkb.nonempty_partitions or [1, 3]:
            queries[f"Query 1-{partition}"] = to_sql(
                ground_atoms_plan(partition, self.backend, mln_alias=f"M{partition}")
            )
            queries[f"Query 2-{partition}"] = to_sql(
                ground_factors_plan(partition, self.backend, mln_alias=f"M{partition}")
            )
        queries["Query 3 (type I subquery)"] = to_sql(apply_constraints_key_plan(1))
        queries["Query 3 (type II subquery)"] = to_sql(apply_constraints_key_plan(2))
        queries["singleton factors"] = to_sql(singleton_factors_plan(self.backend))
        return queries

    def fact_count(self) -> int:
        return self.rkb.fact_count()

    def factor_count(self) -> int:
        return self.rkb.factor_count()

    @property
    def elapsed_seconds(self) -> float:
        return self.backend.elapsed_seconds


def _marginals_by_key(
    marginals: Dict[Fact, float]
) -> Dict[Tuple[str, str, str, str, str], float]:
    """Re-key marginals by semantic fact key (weights differ between the
    Fact a caller holds and the Fact inference returned, so the dataclass
    hash cannot be used directly)."""
    return {fact.key: probability for fact, probability in marginals.items()}
