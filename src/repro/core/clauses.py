"""Typed first-order Horn clauses and structural equivalence.

ProbKB confines the deductive rule set H to Horn clauses whose shapes
match six structurally-equivalent classes (Section 4.2.2):

    (1)  p(x,y) <- q(x,y)
    (2)  p(x,y) <- q(y,x)
    (3)  p(x,y) <- q(z,x), r(z,y)
    (4)  p(x,y) <- q(x,z), r(z,y)
    (5)  p(x,y) <- q(z,x), r(y,z)
    (6)  p(x,y) <- q(x,z), r(y,z)

Two clauses are *structurally equivalent* (Definition 5) when they
differ only in entity/class/relation symbols; each equivalence class
becomes one MLN table M_i whose rows are the clauses' identifier
tuples (Definition 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple


class ClauseError(ValueError):
    """Raised for clauses outside the six supported shapes."""


@dataclass(frozen=True)
class Atom:
    """A binary atom ``relation(args[0], args[1])`` over variables."""

    relation: str
    args: Tuple[str, str]

    def __str__(self) -> str:
        # tolerate malformed arities: the analyzer renders PKB002 atoms
        return f"{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class HornClause:
    """A weighted, typed Horn clause ``head <- body``.

    ``var_classes`` types every variable (Remark 1: arguments are
    inherently typed).  ``weight`` follows MLN semantics; ``math.inf``
    marks a hard rule (those belong in the constraint set Ω, not H).
    """

    head: Atom
    body: Tuple[Atom, ...]
    weight: float
    var_classes: Tuple[Tuple[str, str], ...]  # sorted (variable, class)
    #: rule-learner confidence score used by rule cleaning (Section 5.3);
    #: independent from the MLN weight, as in Sherlock.
    score: float = 1.0

    @staticmethod
    def make(
        head: Atom,
        body: Sequence[Atom],
        weight: float,
        var_classes: Mapping[str, str],
        score: float = 1.0,
    ) -> "HornClause":
        return HornClause(
            head=head,
            body=tuple(body),
            weight=weight,
            var_classes=tuple(sorted(var_classes.items())),
            score=score,
        )

    @property
    def classes(self) -> Dict[str, str]:
        return dict(self.var_classes)

    @property
    def is_hard(self) -> bool:
        return math.isinf(self.weight)

    def variables(self) -> Tuple[str, ...]:
        seen = []
        for atom in (self.head, *self.body):
            for var in atom.args:
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        quantifier = " ".join(
            f"∀{var}∈{cls}" for var, cls in self.var_classes
        )
        return f"{self.weight:.2f} {quantifier}: {self.head} <- {body}"


#: Canonical variable names used by the six patterns.
HEAD_VARS = ("x", "y")
BODY_VAR = "z"

#: For each partition index, the body atoms' argument patterns after
#: canonical renaming (head is always p(x, y)).
PARTITION_BODY_PATTERNS: Dict[int, Tuple[Tuple[str, str], ...]] = {
    1: (("x", "y"),),
    2: (("y", "x"),),
    3: (("z", "x"), ("z", "y")),
    4: (("x", "z"), ("z", "y")),
    5: (("z", "x"), ("y", "z")),
    6: (("x", "z"), ("y", "z")),
}

PARTITION_INDEXES = tuple(sorted(PARTITION_BODY_PATTERNS))


def partition_patterns_text() -> str:
    """The six supported shapes, rendered for error messages and docs."""
    parts = []
    for partition, patterns in sorted(PARTITION_BODY_PATTERNS.items()):
        body = ", ".join(
            f"q{i + 1}({a}, {b})" for i, (a, b) in enumerate(patterns)
        )
        parts.append(f"M{partition}: p(x, y) <- {body}")
    return "; ".join(parts)


@dataclass(frozen=True)
class ClassifiedClause:
    """A clause mapped to its partition and canonical symbol order.

    ``relations`` is (R1, R2[, R3]) and ``classes`` is (C1, C2[, C3])
    — exactly the identifier-tuple layout of the MLN tables.
    """

    partition: int
    relations: Tuple[str, ...]
    classes: Tuple[str, ...]
    weight: float
    score: float


def classify_clause(clause: HornClause) -> ClassifiedClause:
    """Map a Horn clause onto one of the six partitions (Definition 6).

    Raises :class:`ClauseError` for shapes outside the Sherlock set.
    """
    if len(clause.head.args) != 2:
        raise ClauseError(f"head must be binary: {clause}")
    head_x, head_y = clause.head.args
    if head_x == head_y:
        raise ClauseError(f"head variables must be distinct: {clause}")
    classes = clause.classes
    for var in clause.variables():
        if var not in classes:
            raise ClauseError(f"untyped variable {var!r} in {clause}")

    renaming = {head_x: "x", head_y: "y"}
    if len(clause.body) == 1:
        patterns = _match_single(clause, renaming)
    elif len(clause.body) == 2:
        patterns = _match_double(clause, renaming)
    else:
        raise ClauseError(
            f"body must have 1 or 2 atoms, got {len(clause.body)}: {clause}"
        )
    partition, ordered_body, full_renaming = patterns

    relations = (clause.head.relation,) + tuple(a.relation for a in ordered_body)
    inverse = {canon: orig for orig, canon in full_renaming.items()}
    canon_vars = ("x", "y", "z")[: len(full_renaming)]
    class_tuple = tuple(classes[inverse[v]] for v in canon_vars)
    return ClassifiedClause(
        partition=partition,
        relations=relations,
        classes=class_tuple,
        weight=clause.weight,
        score=clause.score,
    )


def _match_single(
    clause: HornClause, renaming: Dict[str, str]
) -> Tuple[int, Tuple[Atom, ...], Dict[str, str]]:
    atom = clause.body[0]
    canon = tuple(renaming.get(arg) for arg in atom.args)
    if canon == ("x", "y"):
        return 1, (atom,), renaming
    if canon == ("y", "x"):
        return 2, (atom,), renaming
    raise ClauseError(f"single-body clause not of pattern 1/2: {clause}")


def _match_double(
    clause: HornClause, renaming: Dict[str, str]
) -> Tuple[int, Tuple[Atom, ...], Dict[str, str]]:
    body_vars = {v for atom in clause.body for v in atom.args}
    extra = body_vars - set(renaming)
    if len(extra) != 1:
        raise ClauseError(
            f"two-body clause must have exactly one join variable: {clause}"
        )
    z_var = extra.pop()
    full = dict(renaming)
    full[z_var] = "z"

    canon_atoms = [
        (atom, tuple(full.get(arg) for arg in atom.args)) for atom in clause.body
    ]
    # canonical order: the atom containing x first (q), then the y atom (r)
    x_atoms = [(a, c) for a, c in canon_atoms if "x" in c]
    y_atoms = [(a, c) for a, c in canon_atoms if "y" in c]
    if len(x_atoms) != 1 or len(y_atoms) != 1:
        raise ClauseError(f"two-body clause not of patterns 3-6: {clause}")
    (q_atom, q_canon), (r_atom, r_canon) = x_atoms[0], y_atoms[0]
    for partition, pattern in PARTITION_BODY_PATTERNS.items():
        if len(pattern) == 2 and (q_canon, r_canon) == pattern:
            return partition, (q_atom, r_atom), full
    raise ClauseError(f"two-body clause not of patterns 3-6: {clause}")


def clause_from_identifier(
    partition: int,
    relations: Sequence[str],
    classes: Sequence[str],
    weight: float,
    score: float = 1.0,
) -> HornClause:
    """Rebuild a canonical HornClause from an MLN-table identifier tuple.

    Inverse of :func:`classify_clause` up to variable renaming; used by
    tests (round-trip property) and by the Tuffy-T baseline, which needs
    explicit per-rule clauses.
    """
    body_patterns = PARTITION_BODY_PATTERNS[partition]
    expected_body = len(body_patterns)
    if len(relations) != expected_body + 1:
        raise ClauseError(
            f"partition {partition} needs {expected_body + 1} relations, "
            f"got {len(relations)}"
        )
    n_vars = 3 if expected_body == 2 else 2
    if len(classes) != n_vars:
        raise ClauseError(
            f"partition {partition} needs {n_vars} classes, got {len(classes)}"
        )
    var_names = ("x", "y", "z")[:n_vars]
    head = Atom(relations[0], ("x", "y"))
    body = tuple(
        Atom(rel, pattern)
        for rel, pattern in zip(relations[1:], body_patterns)
    )
    return HornClause.make(
        head,
        body,
        weight,
        dict(zip(var_names, classes)),
        score=score,
    )
