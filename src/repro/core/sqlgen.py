"""Generation of the batch grounding queries (Figure 3, Queries 1-i/2-i/3).

Each partition M_i yields two join queries:

* ``ground_atoms_plan(i)``   — Query 1-i: derive new facts by joining
  M_i with TΠ on the body atoms' relations, classes, and shared
  entities; *one query applies every rule in the partition*.
* ``ground_factors_plan(i)`` — Query 2-i: join the head in as well and
  emit ground factors (I1, I2, I3, w).

``apply_constraints_key_plan`` builds Query 3's violating-entity
subquery (Section 5.4).  All plans are pure logical plans; they run on
either backend and render to PostgreSQL SQL via
:func:`repro.relational.to_sql` (conformance-tested against sqlite3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..relational import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Scan,
    col,
    const,
)
from ..relational.expr import Compare, Expr, eq_const
from .backends import Backend
from .clauses import PARTITION_BODY_PATTERNS

#: the previous iteration's newly derived facts (semi-naive grounding)
DELTA_TABLE = "TDelta"

#: every fact merged during the current delta-capture window, with ids —
#: the seed relation for incremental factor grounding (repro.delta)
DELTA_FACTS_TABLE = "TDAcc"

#: class column of the MLN tables for each canonical variable
_CLASS_COLUMN = {"x": "C1", "y": "C2", "z": "C3"}
#: entity/class column pairs of a TΠ scan by argument position
_ARG_COLUMNS = (("x", "C1"), ("y", "C2"))


def _body_aliases(partition: int) -> List[str]:
    """TΠ scan aliases for the body atoms, following the paper (T for
    single-atom bodies, T2/T3 for two-atom bodies)."""
    if partition in (1, 2):
        return ["T"]
    return ["T2", "T3"]


def _head_entity_exprs(partition: int, aliases: Sequence[str]) -> Dict[str, str]:
    """Where each head variable's value comes from: var -> 'alias.col'."""
    sources: Dict[str, str] = {}
    for pattern, alias in zip(PARTITION_BODY_PATTERNS[partition], aliases):
        for pos, var in enumerate(pattern):
            if var in ("x", "y") and var not in sources:
                entity_col, _ = _ARG_COLUMNS[pos]
                sources[var] = f"{alias}.{entity_col}"
    return sources


def _shared_z(partition: int, aliases: Sequence[str]) -> Optional[Tuple[str, str]]:
    """The join-variable columns ('T2.x', 'T3.y')-style pair, if any."""
    patterns = PARTITION_BODY_PATTERNS[partition]
    if len(patterns) != 2:
        return None
    columns = []
    for pattern, alias in zip(patterns, aliases):
        pos = pattern.index("z")
        entity_col, _ = _ARG_COLUMNS[pos]
        columns.append(f"{alias}.{entity_col}")
    return (columns[0], columns[1])


def _entity_join_columns(partition: int, alias_index: int) -> List[str]:
    """Which entity columns of the given body scan participate in
    entity-equality joins — drives redistributed-view selection."""
    patterns = PARTITION_BODY_PATTERNS[partition]
    if len(patterns) != 2 or alias_index == 0:
        # first body scan joins M_i on (R, C1, C2) only
        return []
    pos = patterns[alias_index].index("z")
    return [_ARG_COLUMNS[pos][0]]


def _mln_body_join(
    partition: int,
    backend: Backend,
    mln_alias: str = "M",
    delta_scans: Optional[Sequence[int]] = None,
    mln_filter: Optional[Expr] = None,
    delta_table: str = DELTA_TABLE,
) -> Tuple[PlanNode, List[str], Dict[str, str]]:
    """Join M_i with the body TΠ scans; returns (plan, aliases, head map).

    ``delta_scans`` (semi-naive grounding) lists the body positions that
    should scan ``delta_table`` instead of full TΠ (TDelta for atom
    grounding; TDAcc, which carries ids, for factor grounding).
    ``mln_filter`` restricts the MLN table (e.g. to one rule — used by
    weight learning, which needs per-rule ground factors).
    """
    aliases = _body_aliases(partition)
    patterns = PARTITION_BODY_PATTERNS[partition]
    mln_table = f"M{partition}"
    delta_set = set(delta_scans or ())

    plan: PlanNode = Scan(mln_table, mln_alias)
    if mln_filter is not None:
        plan = Filter(plan, mln_filter)
    for index, (pattern, alias) in enumerate(zip(patterns, aliases)):
        if index in delta_set:
            scan = Scan(delta_table, alias)
        else:
            scan = backend.tpi_scan(alias, _entity_join_columns(partition, index))
        left_keys = [f"{mln_alias}.R{index + 2}"]
        right_keys = [f"{alias}.R"]
        for pos, var in enumerate(pattern):
            _, class_col = _ARG_COLUMNS[pos]
            left_keys.append(f"{mln_alias}.{_CLASS_COLUMN[var]}")
            right_keys.append(f"{alias}.{class_col}")
        if index == 1:
            shared = _shared_z(partition, aliases)
            assert shared is not None
            left_keys.append(shared[0])
            right_keys.append(shared[1])
        plan = HashJoin(plan, scan, left_keys, right_keys)
    return plan, aliases, _head_entity_exprs(partition, aliases)


def ground_atoms_plan(
    partition: int, backend: Backend, mln_alias: str = "M"
) -> PlanNode:
    """Query 1-i: derive the head facts of every rule in partition i.

    Output columns: (R, x, C1, y, C2) — id assignment and NULL weights
    are handled by :meth:`RelationalKB.insert_new_facts`.
    """
    plan, _, head = _mln_body_join(partition, backend, mln_alias)
    return Project(
        plan,
        [
            (col(f"{mln_alias}.R1"), "R"),
            (col(head["x"]), "x"),
            (col(f"{mln_alias}.C1"), "C1"),
            (col(head["y"]), "y"),
            (col(f"{mln_alias}.C2"), "C2"),
        ],
    )


def ground_atoms_delta_plans(
    partition: int, backend: Backend, mln_alias: str = "M"
) -> List[PlanNode]:
    """Semi-naive variants of Query 1-i: every new derivation must use
    at least one fact from the previous iteration's delta, so
    single-atom patterns join the delta alone and two-atom patterns get
    two variants ((Δ, T) and (T, Δ); the Δ⋈Δ overlap is deduplicated by
    the staging table's key).
    """
    body_size = len(PARTITION_BODY_PATTERNS[partition])
    variants = [(0,)] if body_size == 1 else [(0,), (1,)]
    plans = []
    for delta_scans in variants:
        plan, _, head = _mln_body_join(
            partition, backend, mln_alias, delta_scans=delta_scans
        )
        plans.append(
            Project(
                plan,
                [
                    (col(f"{mln_alias}.R1"), "R"),
                    (col(head["x"]), "x"),
                    (col(f"{mln_alias}.C1"), "C1"),
                    (col(head["y"]), "y"),
                    (col(f"{mln_alias}.C2"), "C2"),
                ],
            )
        )
    return plans


def ground_factors_plan(
    partition: int,
    backend: Backend,
    mln_alias: str = "M",
    mln_filter: Optional[Expr] = None,
) -> PlanNode:
    """Query 2-i: emit ground factors (I1, I2, I3, w) for partition i.

    Joins the rule head back against TΠ to find the head fact's id.
    Per Proposition 1 the output is duplicate-free, so factors merge
    into TΦ with bag union.
    """
    return _ground_factors_variant(partition, backend, mln_alias, mln_filter)


def _ground_factors_variant(
    partition: int,
    backend: Backend,
    mln_alias: str = "M",
    mln_filter: Optional[Expr] = None,
    delta_scans: Optional[Sequence[int]] = None,
    delta_head: bool = False,
    delta_table: str = DELTA_FACTS_TABLE,
) -> PlanNode:
    """One Query 2-i shape, with body/head occurrences of TΠ optionally
    replaced by the id-bearing delta relation (incremental factors)."""
    plan, aliases, head = _mln_body_join(
        partition,
        backend,
        mln_alias,
        delta_scans=delta_scans,
        mln_filter=mln_filter,
        delta_table=delta_table,
    )
    if delta_head:
        head_scan: PlanNode = Scan(delta_table, "T1")
    else:
        head_scan = backend.tpi_scan("T1", ["x", "y"])
    left_keys = [
        f"{mln_alias}.R1",
        f"{mln_alias}.C1",
        f"{mln_alias}.C2",
        head["x"],
        head["y"],
    ]
    right_keys = ["T1.R", "T1.C1", "T1.C2", "T1.x", "T1.y"]
    plan = HashJoin(plan, head_scan, left_keys, right_keys)

    outputs = [(col("T1.I"), "I1")]
    body_ids: List[Tuple[Expr, str]] = [
        (col(f"{alias}.I"), f"I{slot + 2}") for slot, alias in enumerate(aliases)
    ]
    outputs.extend(body_ids)
    if len(aliases) == 1:
        outputs.append((const(None), "I3"))
    outputs.append((col(f"{mln_alias}.w"), "w"))
    return Project(plan, outputs)


def ground_factors_delta_plans(
    partition: int,
    backend: Backend,
    mln_alias: str = "M",
    delta_table: str = DELTA_FACTS_TABLE,
) -> List[PlanNode]:
    """Incremental variants of Query 2-i (semi-naive factor grounding).

    TΠ and the M_i only grow on the delta path, so a factor is new iff
    at least one participating fact is new: one variant per body
    occurrence substitutes the delta relation there, and a final variant
    substitutes it for the head probe.  The variants overlap exactly
    when several participants are new; staging them through a
    unique-keyed table (TFNew) removes that overlap, and Proposition 1
    guarantees the dedup never merges two legitimate within-partition
    factors.
    """
    body_size = len(PARTITION_BODY_PATTERNS[partition])
    variants: List[Tuple[Tuple[int, ...], bool]] = [((0,), False)]
    if body_size == 2:
        variants.append(((1,), False))
    variants.append(((), True))
    return [
        _ground_factors_variant(
            partition,
            backend,
            mln_alias,
            delta_scans=delta_scans,
            delta_head=delta_head,
            delta_table=delta_table,
        )
        for delta_scans, delta_head in variants
    ]


def singleton_factors_plan(backend: Backend, table: str = "TP") -> PlanNode:
    """groundFactors(TΠ): the uncertain extracted facts (w NOT NULL)
    become singleton factors (I, NULL, NULL, w).  ``table`` lets the
    incremental path derive only the delta's singletons (TDAcc)."""
    from ..relational.expr import IsNull

    scan = Scan(table, "T")
    filtered = Filter(scan, IsNull(col("T.w"), negated=True))
    return Project(
        filtered,
        [
            (col("T.I"), "I1"),
            (const(None), "I2"),
            (const(None), "I3"),
            (col("T.w"), "w"),
        ],
    )


def apply_constraints_key_plan(functionality_type: int) -> PlanNode:
    """Query 3's subquery: entities violating functional constraints.

    For Type I the result is the violating (x, C1) pairs — subjects
    associated with more than δ objects under a functional relation;
    Type II is the mirror image on (y, C2).
    """
    if functionality_type == 1:
        entity_col, class_col = "T.x", "T.C1"
        group_by = ["T.R", "T.x", "T.C1", "T.C2"]
    elif functionality_type == 2:
        entity_col, class_col = "T.y", "T.C2"
        group_by = ["T.R", "T.y", "T.C2", "T.C1"]
    else:
        raise ValueError(f"functionality type must be 1 or 2, got {functionality_type}")

    joined = HashJoin(
        Scan("TP", "T"),
        Filter(Scan("FC", "FC"), eq_const("FC.arg", functionality_type)),
        ["T.R"],
        ["FC.R"],
    )
    aggregated = Aggregate(
        joined,
        group_by=group_by,
        aggregates=[("count", None, "n"), ("min", "FC.deg", "mindeg")],
        having=Compare(">", col("n"), col("mindeg")),
    )
    projected = Project(
        aggregated, [(col(entity_col), "x"), (col(class_col), "C1")]
    )
    return Distinct(projected)


#: columns of TΠ deleted against for each functionality type
CONSTRAINT_DELETE_COLUMNS = {1: ("x", "C1"), 2: ("y", "C2")}
