"""Class hierarchy utilities (Remark 1).

"The definition of C implies a class hierarchy: for any Ci, Cj ∈ C,
Ci is a subclass of Cj if and only if Ci ⊆ Cj."

Sherlock-style rules are typed per class *pair*, so a rule quantified
over Food does not fire on a fact typed Vegetable even when
Vegetable ⊆ Food.  :func:`broaden_facts` makes the hierarchy effective:
it adds generalized copies of each fact under every superclass
signature, so the Kale example from the paper's introduction works —
``rich_in(Kale: Vegetable, calcium)`` feeds a rule typed over Food.

Generalized copies carry no weight (they are typing artefacts, not
independent evidence), so they join rule bodies without adding
singleton factors that would distort the distribution.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .model import Fact, KnowledgeBase


def subclass_map(kb: KnowledgeBase) -> Dict[str, Set[str]]:
    """Strict ancestors of every class, transitively closed.

    Ci is an ancestor of Cj iff Cj ⊂ Ci (proper subset, per Remark 1;
    equal classes are aliases, not hierarchy).
    """
    ancestors: Dict[str, Set[str]] = {name: set() for name in kb.classes}
    names = list(kb.classes)
    for child in names:
        child_members = kb.classes[child]
        for parent in names:
            if child == parent:
                continue
            parent_members = kb.classes[parent]
            if child_members < parent_members:
                ancestors[child].add(parent)
    return ancestors


def generalizations(
    fact: Fact, ancestors: Dict[str, Set[str]]
) -> List[Fact]:
    """All superclass-typed copies of a fact (excluding itself)."""
    subject_classes = [fact.subject_class] + sorted(
        ancestors.get(fact.subject_class, ())
    )
    object_classes = [fact.object_class] + sorted(
        ancestors.get(fact.object_class, ())
    )
    copies = []
    for subject_class in subject_classes:
        for object_class in object_classes:
            if (subject_class, object_class) == (
                fact.subject_class,
                fact.object_class,
            ):
                continue
            copies.append(
                Fact(
                    relation=fact.relation,
                    subject=fact.subject,
                    subject_class=subject_class,
                    object=fact.object,
                    object_class=object_class,
                    weight=None,  # typing artefact, not fresh evidence
                )
            )
    return copies


def broaden_facts(kb: KnowledgeBase) -> KnowledgeBase:
    """A new KB whose facts are closed under class generalization.

    Only signatures some rule actually consumes are added (adding every
    superclass pair would bloat TΠ with rows no query ever touches).
    """
    ancestors = subclass_map(kb)
    wanted: Set[Tuple[str, str, str]] = set()
    for rule in kb.rules:
        classes = rule.classes
        for atom in rule.body:
            wanted.add(
                (atom.relation, classes[atom.args[0]], classes[atom.args[1]])
            )

    facts: List[Fact] = list(kb.facts)
    seen = {fact.key for fact in facts}
    for fact in kb.facts:
        for copy in generalizations(fact, ancestors):
            signature = (copy.relation, copy.subject_class, copy.object_class)
            if signature not in wanted or copy.key in seen:
                continue
            seen.add(copy.key)
            facts.append(copy)
    return KnowledgeBase(
        classes=kb.classes,
        relations=kb.relations.values(),
        facts=facts,
        rules=kb.rules,
        constraints=kb.constraints,
        validate=False,
    )
