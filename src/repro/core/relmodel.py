"""The relational model for probabilistic KBs (Section 4.2).

Maps Γ = (E, C, R, Π, H, Ω) onto database tables:

* dictionary tables ``DE``/``DC``/``DR`` encode strings as integer ids
  "to avoid string comparison during joins" (Section 4.2);
* ``TC(C, e)`` — class membership (Definition 2);
* ``TR(R, C1, C2)`` — relation signatures (Definition 3);
* ``TP(I, R, x, C1, y, C2, w)`` — the single facts table TΠ
  (Definition 4; C1/C2 are denormalized copies of TC/TR so batch rule
  application never joins them);
* ``M1..M6`` — one MLN table per structural-equivalence partition
  (Definition 6);
* ``FC(R, arg, deg)`` — functional constraints TΩ (Definition 11);
* ``TF(I1, I2, I3, w)`` — the ground factor table TΦ (Definition 7),
  bag semantics.

Fact identity (set-union semantics for TΠ) is the key (R, x, C1, y, C2).
New-fact detection and id assignment happen master-side in this class,
which keeps deduplication correct on every backend regardless of how TΠ
is physically distributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..relational import PlanNode, TableSchema, schema
from ..relational.types import Row
from .backends import Backend, MPPBackend
from .clauses import (
    PARTITION_INDEXES,
    ClassifiedClause,
    ClauseError,
    HornClause,
    classify_clause,
    partition_patterns_text,
)
from .model import Fact, KnowledgeBase

# -- table schemas (shared by all backends) -----------------------------------

TP_SCHEMA = schema("TP", "I:int", "R:int", "x:int", "C1:int", "y:int", "C2:int", "w:float")
#: staging table for each iteration's candidate facts (dedup by key)
FACT_KEY_COLUMNS = ("R", "x", "C1", "y", "C2")
TNEW_SCHEMA = schema(
    "TNew", "R:int", "x:int", "C1:int", "y:int", "C2:int",
    unique_key=FACT_KEY_COLUMNS,
)
#: graveyard of constraint-deleted fact keys — anti-joined during the
#: merge so removed errors are not simply re-derived next iteration
TDEL_SCHEMA = schema(
    "TDel", "R:int", "x:int", "C1:int", "y:int", "C2:int",
    unique_key=FACT_KEY_COLUMNS,
)
#: the facts merged in the previous iteration (semi-naive grounding)
TDELTA_SCHEMA = schema(
    "TDelta", "R:int", "x:int", "C1:int", "y:int", "C2:int",
    unique_key=FACT_KEY_COLUMNS,
)
#: staging for incrementally added evidence (weighted, unlike TNew)
TEV_SCHEMA = schema(
    "TEv", "R:int", "x:int", "C1:int", "y:int", "C2:int", "w:float",
    unique_key=FACT_KEY_COLUMNS,
)
#: full (id-bearing) copies of every fact merged while delta capture is
#: active — the seed relation for incremental factor grounding
#: (:mod:`repro.delta`); accumulates across the iterations of one flush
TDACC_SCHEMA = schema(
    "TDAcc", "I:int", "R:int", "x:int", "C1:int", "y:int", "C2:int", "w:float"
)
#: scratch for one merge statement: ids are assigned here first, then the
#: rows flow unchanged into TΠ and (when capturing) TDAcc
TDCUR_SCHEMA = schema(
    "TDCur", "I:int", "R:int", "x:int", "C1:int", "y:int", "C2:int", "w:float"
)
#: staging for one partition's incremental factors: the delta-join
#: variants overlap when several participants are new, and the unique
#: key removes exactly that overlap (within a partition Query 2-i output
#: is duplicate-free — Proposition 1 — so nothing legitimate collides)
TFNEW_SCHEMA = schema(
    "TFNew", "I1:int", "I2:int", "I3:int", "w:float",
    unique_key=("I1", "I2", "I3", "w"),
)
TC_SCHEMA = schema("TC", "C:int", "e:int")
TR_SCHEMA = schema("TR", "R:int", "C1:int", "C2:int")
FC_SCHEMA = schema("FC", "R:int", "arg:int", "deg:int")
TF_SCHEMA = schema("TF", "I1:int", "I2:int", "I3:int", "w:float")
DE_SCHEMA = schema("DE", "id:int", "name:text")
DC_SCHEMA = schema("DC", "id:int", "name:text")
DR_SCHEMA = schema("DR", "id:int", "name:text")


def mln_schema(partition: int) -> TableSchema:
    """Schema of MLN table M_i (identifier tuples + weight)."""
    if partition in (1, 2):
        return schema(
            f"M{partition}", "R1:int", "R2:int", "C1:int", "C2:int", "w:float"
        )
    return schema(
        f"M{partition}",
        "R1:int",
        "R2:int",
        "R3:int",
        "C1:int",
        "C2:int",
        "C3:int",
        "w:float",
    )


FactKey = Tuple[int, int, int, int, int]  # (R, x, C1, y, C2) as ids


@dataclass
class LoadReport:
    """What the initial bulkload stored."""

    facts: int
    rules_by_partition: Dict[int, int]
    constraints: int
    classes: int
    relations: int
    entities: int


class Dictionary:
    """A string <-> dense integer id dictionary (the DX tables)."""

    def __init__(self) -> None:
        self._id_of: Dict[str, int] = {}
        self._name_of: List[str] = []

    def id(self, name: str) -> int:
        ident = self._id_of.get(name)
        if ident is None:
            ident = len(self._name_of)
            self._id_of[name] = ident
            self._name_of.append(name)
        return ident

    def lookup(self, name: str) -> Optional[int]:
        return self._id_of.get(name)

    def name(self, ident: int) -> str:
        return self._name_of[ident]

    def __len__(self) -> int:
        return len(self._name_of)

    def rows(self) -> List[Tuple[int, str]]:
        return list(enumerate(self._name_of))


class RelationalKB:
    """A knowledge base loaded into a backend under the relational model."""

    def __init__(self, kb: KnowledgeBase, backend: Backend) -> None:
        self.kb = kb
        self.backend = backend
        self.entities = Dictionary()
        self.classes = Dictionary()
        self.relations = Dictionary()
        self._fact_keys: Set[FactKey] = set()
        self._next_fact_id = 0
        self._capture_delta = False
        self.nonempty_partitions: List[int] = []
        #: identifier tuples already stored per partition — Proposition 1
        #: requires the M_i duplicate-free, both at bulkload and across
        #: later :meth:`add_rules` batches
        self._mln_seen: Dict[int, Set[Row]] = {i: set() for i in PARTITION_INDEXES}
        self.load_report = self._load()

    def _classify(self, rule: HornClause, rule_index: int) -> ClassifiedClause:
        """Classify a rule for loading; on failure, re-raise with the
        rule named, the supported partition shapes spelled out, and a
        pointer at the pre-flight analyzer (instead of the bare
        ClauseError that used to surface from deep inside the load)."""
        try:
            return classify_clause(rule)
        except ClauseError as error:
            raise ClauseError(
                f"rule #{rule_index} cannot be loaded into the MLN "
                f"partition tables: {error}. Supported shapes (Definition "
                f"6): {partition_patterns_text()}. Run `repro analyze` "
                f"for a full pre-flight report."
            ) from error

    def _mln_row(self, classified: ClassifiedClause) -> Row:
        return (
            tuple(self.relations.id(r) for r in classified.relations)
            + tuple(self.classes.id(c) for c in classified.classes)
            + (classified.weight,)
        )

    # -- loading -----------------------------------------------------------------

    def _load(self) -> LoadReport:
        backend = self.backend
        kb = self.kb

        # dictionaries
        class_rows = [(self.classes.id(name), name) for name in sorted(kb.classes)]
        relation_rows = [
            (self.relations.id(name), name) for name in sorted(kb.relations)
        ]
        entity_rows = [
            (self.entities.id(name), name) for name in sorted(kb.entities)
        ]

        # TC / TR
        tc_rows = [
            (self.classes.id(class_name), self.entities.id(entity))
            for class_name, members in kb.classes.items()
            for entity in sorted(members)
        ]
        tr_rows = [
            (
                self.relations.id(rel.name),
                self.classes.id(rel.domain),
                self.classes.id(rel.range),
            )
            for rel in kb.relations.values()
        ]

        # TΠ
        tp_rows: List[Row] = []
        for fact in kb.facts:
            key = self.encode_fact_key(fact)
            if key in self._fact_keys:
                continue
            self._fact_keys.add(key)
            tp_rows.append((self._next_fact_id,) + key_to_row(key) + (fact.weight,))
            self._next_fact_id += 1

        # MLN tables
        mln_rows: Dict[int, List[Row]] = {i: [] for i in PARTITION_INDEXES}
        for rule_index, rule in enumerate(kb.rules):
            classified = self._classify(rule, rule_index)
            row = self._mln_row(classified)
            # Proposition 1 requires M_i duplicate-free
            if row in self._mln_seen[classified.partition]:
                continue
            self._mln_seen[classified.partition].add(row)
            mln_rows[classified.partition].append(row)

        # TΩ
        fc_rows = [
            (self.relations.id(c.relation), c.arg, c.degree)
            for c in kb.constraints
        ]

        # create + bulkload.  TΠ is distributed by its id column I (the
        # Greenplum default of "first column"): without the
        # redistributed views every batch join over TΠ must then move
        # data — exactly the contrast Section 4.4 exploits.
        backend.create_table(TP_SCHEMA, dist_keys=["I"])
        backend.create_table(TNEW_SCHEMA, dist_keys=["x"])
        backend.create_table(TDEL_SCHEMA, dist_keys=["x"])
        backend.create_table(TDELTA_SCHEMA, dist_keys=["x"])
        backend.create_table(TEV_SCHEMA, dist_keys=["x"])
        backend.create_table(TDACC_SCHEMA, dist_keys=["I"])
        backend.create_table(TDCUR_SCHEMA, dist_keys=["I"])
        backend.create_table(TFNEW_SCHEMA, dist_keys=["I1"])
        backend.create_table(TC_SCHEMA, dist_keys=["e"])
        backend.create_table(TR_SCHEMA, dist_keys=["R"])
        backend.create_table(TF_SCHEMA, dist_keys=["I1"])
        for dictionary_schema in (DE_SCHEMA, DC_SCHEMA, DR_SCHEMA):
            backend.create_table(dictionary_schema, dist_keys=["id"])
        if isinstance(backend, MPPBackend):
            # MLN and constraint tables are small: replicate them so rule
            # application never ships them between segments.
            for partition in PARTITION_INDEXES:
                backend.create_replicated_table(mln_schema(partition))
            backend.create_replicated_table(FC_SCHEMA)
        else:
            for partition in PARTITION_INDEXES:
                backend.create_table(mln_schema(partition))
            backend.create_table(FC_SCHEMA)

        backend.bulkload("DE", entity_rows)
        backend.bulkload("DC", class_rows)
        backend.bulkload("DR", relation_rows)
        backend.bulkload("TC", tc_rows)
        backend.bulkload("TR", tr_rows)
        backend.bulkload("TP", tp_rows)
        # iteration 1 of semi-naive grounding must see every base fact
        backend.bulkload("TDelta", [row[1:6] for row in tp_rows])
        backend.bulkload("FC", fc_rows)
        for partition in PARTITION_INDEXES:
            backend.bulkload(f"M{partition}", mln_rows[partition])
        self.nonempty_partitions = [
            i for i in PARTITION_INDEXES if mln_rows[i]
        ]
        if isinstance(backend, MPPBackend):
            backend.create_tpi_views()

        return LoadReport(
            facts=len(tp_rows),
            rules_by_partition={i: len(mln_rows[i]) for i in PARTITION_INDEXES},
            constraints=len(fc_rows),
            classes=len(class_rows),
            relations=len(relation_rows),
            entities=len(entity_rows),
        )

    # -- encoding ------------------------------------------------------------------

    def encode_fact_key(self, fact: Fact) -> FactKey:
        return (
            self.relations.id(fact.relation),
            self.entities.id(fact.subject),
            self.classes.id(fact.subject_class),
            self.entities.id(fact.object),
            self.classes.id(fact.object_class),
        )

    def decode_fact(self, row: Row) -> Fact:
        """Decode a full TP row (I, R, x, C1, y, C2, w) into a Fact."""
        _, rel, x, c1, y, c2, weight = row
        return Fact(
            relation=self.relations.name(rel),
            subject=self.entities.name(x),
            subject_class=self.classes.name(c1),
            object=self.entities.name(y),
            object_class=self.classes.name(c2),
            weight=weight,
        )

    # -- fact mutation --------------------------------------------------------------

    def guard_candidates(self, plan: PlanNode) -> PlanNode:
        """Wrap a candidate-facts plan (columns R,x,C1,y,C2) with the
        anti-joins that implement set union: drop facts already in TΠ
        and facts previously deleted by quality control (TDel).

        The existing-facts side goes through ``tpi_scan`` so that on a
        tuned MPP backend the NOT EXISTS probes the Txy view and stays
        collocated instead of re-shipping TΠ every iteration.
        """
        from ..relational import Scan
        from ..relational.plan import AntiJoin

        left_keys = list(FACT_KEY_COLUMNS)
        existing = self.backend.tpi_scan("TOld", ["x", "y"])
        guarded = AntiJoin(
            plan,
            existing,
            left_keys,
            [f"TOld.{c}" for c in FACT_KEY_COLUMNS],
        )
        return AntiJoin(
            guarded,
            Scan("TDel", "TGone"),
            left_keys,
            [f"TGone.{c}" for c in FACT_KEY_COLUMNS],
        )

    def stage_candidates(self, plan: PlanNode) -> int:
        """INSERT INTO TNew SELECT (guarded candidates) — one statement
        per partition; TNew's unique key dedups across partitions."""
        return self.backend.insert_from("TNew", self.guard_candidates(plan))

    def merge_staged(self) -> int:
        """TΠ ← TΠ ∪ TNew, assigning fact ids from the sequence.

        The genuinely-new rows are materialized into TDelta first (they
        are exactly what the next semi-naive iteration must join), then
        flow from there into TΠ.  Inferred facts get NULL weight until
        marginal inference fills them in (Section 4.3).
        """
        from ..relational import Scan

        self.backend.truncate("TDelta")
        self.backend.insert_from(
            "TDelta", self.guard_candidates(Scan("TNew", "N"))
        )
        if self._capture_delta:
            return self._merge_with_capture(Scan("TDelta", "D"), pad_nulls=1)
        inserted, self._next_fact_id = self.backend.insert_from_with_ids(
            "TP", Scan("TDelta", "D"), self._next_fact_id, pad_nulls=1
        )
        return inserted

    def add_evidence(self, facts: Iterable["Fact"]) -> int:
        """Incrementally add weighted evidence facts to TΠ.

        New facts (per the usual anti-join guard) keep their extraction
        weights and become the semi-naive delta, so a follow-up delta
        grounding derives exactly their consequences.  Returns the
        number of genuinely new facts.
        """
        from ..relational import Project, Scan, col

        rows: List[Row] = []
        for fact in facts:
            rows.append(self.encode_fact_key(fact) + (fact.weight,))
        self.backend.truncate("TEv")
        self.backend.insert_rows("TEv", rows)
        guarded = self.guard_candidates(Scan("TEv", "E"))
        self.backend.truncate("TDelta")
        self.backend.insert_from(
            "TDelta",
            Project(
                guarded,
                [(col(f"E.{c}"), c) for c in FACT_KEY_COLUMNS],
            ),
        )
        if self._capture_delta:
            return self._merge_with_capture(guarded, pad_nulls=0)
        inserted, self._next_fact_id = self.backend.insert_from_with_ids(
            "TP", guarded, self._next_fact_id, pad_nulls=0
        )
        return inserted

    # -- delta capture (incremental factor grounding) ------------------------------

    def begin_delta_capture(self) -> None:
        """Start accumulating every merged fact — with its id — in TDAcc.

        :class:`repro.delta.DeltaGrounder` wraps one flush's grounding in
        a capture window; at the end TDAcc holds exactly the facts the
        flush added to TΠ, which is the seed relation for the
        incremental Query 2-i variants.
        """
        self.backend.truncate("TDAcc")
        self._capture_delta = True

    def end_delta_capture(self) -> None:
        self._capture_delta = False

    def delta_capture_rows(self) -> List[Row]:
        """The captured (I, R, x, C1, y, C2, w) rows of the current window."""
        from ..relational import Scan

        return self.backend.query(Scan("TDAcc", "D")).rows

    def _merge_with_capture(self, plan: PlanNode, pad_nulls: int) -> int:
        """Merge new facts into TΠ via the TDCur scratch table so their
        id-bearing rows can also be appended to TDAcc — the plan runs
        once, keeping id assignment identical to the direct merge."""
        from ..relational import Scan

        self.backend.truncate("TDCur")
        inserted, self._next_fact_id = self.backend.insert_from_with_ids(
            "TDCur", plan, self._next_fact_id, pad_nulls=pad_nulls
        )
        self.backend.insert_from("TP", Scan("TDCur", "D"))
        self.backend.insert_from("TDAcc", Scan("TDCur", "D"))
        return inserted

    def add_rules(self, rules: Sequence[HornClause]) -> int:
        """Classify new rules and merge them into the MLN tables M1-M6.

        Identifier tuples already present (from the bulkload or an
        earlier batch) are dropped so the M_i stay duplicate-free
        (Proposition 1).  Dictionary tables gain rows for any relation
        or class name the new rules introduce.  Returns the number of
        genuinely new MLN rows stored.
        """
        relations_before = len(self.relations)
        classes_before = len(self.classes)
        staged: Dict[int, List[Row]] = {}
        for rule_index, rule in enumerate(rules):
            classified = self._classify(rule, rule_index)
            row = self._mln_row(classified)
            if row in self._mln_seen[classified.partition]:
                continue
            self._mln_seen[classified.partition].add(row)
            staged.setdefault(classified.partition, []).append(row)
        # keep DR/DC consistent with the dictionary objects: encoding the
        # new rules may have minted fresh relation/class ids
        new_relations = self.relations.rows()[relations_before:]
        if new_relations:
            self.backend.insert_rows("DR", new_relations)
        new_classes = self.classes.rows()[classes_before:]
        if new_classes:
            self.backend.insert_rows("DC", new_classes)
        inserted = 0
        for partition in sorted(staged):
            inserted += self.backend.insert_rows(
                f"M{partition}", staged[partition]
            )
            if partition not in self.nonempty_partitions:
                self.nonempty_partitions.append(partition)
        self.nonempty_partitions.sort()
        return inserted

    def insert_new_facts(self, rows: Iterable[Row]) -> int:
        """Merge literal (R, x, C1, y, C2) rows into TΠ with set
        semantics — the row-level variant of the staged merge."""
        self.backend.truncate("TNew")
        self.backend.insert_rows("TNew", [tuple(row[:5]) for row in rows])
        return self.merge_staged()

    # -- introspection ----------------------------------------------------------------

    def fact_count(self) -> int:
        return self.backend.table_size("TP")

    def factor_count(self) -> int:
        return self.backend.table_size("TF")

    def rule_count(self) -> int:
        return sum(
            self.backend.table_size(f"M{i}") for i in PARTITION_INDEXES
        )


def key_to_row(key: FactKey) -> Tuple[int, int, int, int, int]:
    return key
