"""Command-line interface for ProbKB.

Subcommands::

    python -m repro.cli generate --out kb/ --people 300 --seed 7
    python -m repro.cli stats    --kb kb/
    python -m repro.cli analyze  --kb kb/ --json --fail-on warn
    python -m repro.cli explain  --kb kb/ --backend mpp --nseg 8
    python -m repro.cli sql      --kb kb/
    python -m repro.cli ground   --kb kb/ --backend mpp --nseg 8 --out expanded/
    python -m repro.cli infer    --kb kb/ --method gibbs --top 20
    python -m repro.cli evaluate --seed 7 --theta 0.5 --constraints
    python -m repro.cli serve    --kb kb/ --port 8080 --snapshot kb.snapshot.json

``generate`` writes the synthetic ReVerb-Sherlock KB as TSV files;
``ground``/``infer`` run the expansion pipeline on any TSV KB;
``evaluate`` reruns the Section 6.2 precision protocol (it regenerates
from the seed because the oracle judge needs the ground-truth world).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analyze import AnalysisError
from .core import (
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    ProbKB,
)
from .datasets import (
    ReVerbSherlockConfig,
    WorldConfig,
    generate as generate_kb,
    load_kb,
    save_kb,
)
from .quality import QualityConfig, run_quality_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="probkb",
        description="ProbKB: knowledge expansion over probabilistic knowledge bases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate_cmd = commands.add_parser(
        "generate", help="generate a synthetic ReVerb-Sherlock KB as TSV"
    )
    generate_cmd.add_argument("--out", required=True, help="output directory")
    generate_cmd.add_argument("--people", type=int, default=300)
    generate_cmd.add_argument("--countries", type=int, default=8)
    generate_cmd.add_argument("--seed", type=int, default=0)

    stats_cmd = commands.add_parser("stats", help="print KB statistics (Table 2)")
    stats_cmd.add_argument("--kb", required=True, help="KB directory (TSV)")

    analyze_cmd = commands.add_parser(
        "analyze",
        help="static analysis of a KB program (pre-flight quality control)",
    )
    analyze_cmd.add_argument("--kb", required=True, help="KB directory (TSV)")
    analyze_cmd.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze_cmd.add_argument(
        "--no-infos",
        action="store_true",
        help="suppress informational findings (bounds, cycles)",
    )
    analyze_cmd.add_argument(
        "--fail-on",
        choices=("error", "warn"),
        default="error",
        help="exit nonzero on error findings (default) or on warnings too",
    )
    _add_environment_arguments(analyze_cmd)

    explain_cmd = commands.add_parser(
        "explain",
        help="static EXPLAIN of the grounding queries (estimates only, "
        "nothing executes)",
    )
    explain_cmd.add_argument("--kb", required=True, help="KB directory (TSV)")
    explain_cmd.add_argument(
        "--json", action="store_true", help="emit the full plan report as JSON"
    )
    explain_cmd.add_argument(
        "--verify",
        action="store_true",
        help="also run the plan verifier (PKB201-212) over every plan; "
        "exit nonzero on error findings",
    )
    _add_environment_arguments(explain_cmd)

    sql_cmd = commands.add_parser(
        "sql", help="print the grounding SQL generated for a KB"
    )
    sql_cmd.add_argument("--kb", required=True)

    ground_cmd = commands.add_parser("ground", help="run batch grounding")
    _add_pipeline_arguments(ground_cmd)
    ground_cmd.add_argument("--out", help="write the expanded KB here (TSV)")

    infer_cmd = commands.add_parser(
        "infer", help="ground + marginal inference; print the top new facts"
    )
    _add_pipeline_arguments(infer_cmd)
    infer_cmd.add_argument(
        "--engine",
        default=None,
        help="inference engine (see repro.infer.registry; default gibbs)",
    )
    infer_cmd.add_argument(
        "--method",
        choices=("gibbs", "bp"),
        default=None,
        help="deprecated alias of --engine",
    )
    infer_cmd.add_argument("--sweeps", type=int, default=500)
    infer_cmd.add_argument(
        "--infer-workers",
        type=int,
        default=0,
        help="worker processes for color-parallel Gibbs (0 = serial; "
        "marginals are bit-identical either way)",
    )
    infer_cmd.add_argument("--top", type=int, default=20)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="Section 6.2 precision protocol on a generated KB"
    )
    evaluate_cmd.add_argument("--seed", type=int, default=0)
    evaluate_cmd.add_argument("--people", type=int, default=300)
    evaluate_cmd.add_argument("--theta", type=float, default=1.0)
    evaluate_cmd.add_argument(
        "--constraints", action="store_true", help="apply semantic constraints"
    )
    evaluate_cmd.add_argument("--iterations", type=int, default=10)

    serve_cmd = commands.add_parser(
        "serve", help="ground a KB and serve it over HTTP (repro.serve)"
    )
    serve_cmd.add_argument("--kb", help="KB directory (TSV) to load and ground")
    serve_cmd.add_argument(
        "--snapshot",
        help="snapshot path: warm-start from it when present, write it "
        "after grounding and on shutdown (POST /snapshot refreshes it)",
    )
    serve_cmd.add_argument("--backend", choices=("single", "mpp"), default="single")
    serve_cmd.add_argument("--nseg", type=int, default=8)
    serve_cmd.add_argument(
        "--mpp-workers",
        type=int,
        default=0,
        help="worker processes for the MPP backend (0 = serial execution)",
    )
    serve_cmd.add_argument("--iterations", type=int, default=None)
    serve_cmd.add_argument(
        "--no-constraints", action="store_true", help="skip quality control"
    )
    serve_cmd.add_argument(
        "--analysis",
        choices=("off", "warn", "strict"),
        default="warn",
        help="static-analysis gate for loading and for ingested rules",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    serve_cmd.add_argument(
        "--materialize",
        action="store_true",
        help="run marginal inference and store TProb before serving",
    )
    serve_cmd.add_argument("--sweeps", type=int, default=200)
    serve_cmd.add_argument("--cache-size", type=int, default=256)
    serve_cmd.add_argument(
        "--cache-policy",
        choices=("lru", "lfu", "ttl"),
        default="lru",
        help="query-cache eviction policy",
    )
    serve_cmd.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="entry lifetime in seconds (required with --cache-policy ttl)",
    )
    serve_cmd.add_argument("--flush-size", type=int, default=64)
    serve_cmd.add_argument("--flush-interval", type=float, default=0.2)
    serve_cmd.add_argument("--max-queue", type=int, default=4096)
    serve_cmd.add_argument(
        "--infer-on-flush",
        action="store_true",
        help="re-materialize marginals after every ingest flush",
    )
    serve_cmd.add_argument(
        "--expansion",
        choices=("full", "delta"),
        default=None,
        help="how flushes refresh the KB: 'full' re-expansion or the "
        "incremental 'delta' path (env PROBKB_SERVE_EXPANSION)",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    # hardening flags; each defaults to None so the PROBKB_SERVE_* env
    # vars show through unless the flag is given explicitly
    serve_cmd.add_argument(
        "--auth-token",
        action="append",
        default=None,
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' (repeatable; "
        "env PROBKB_SERVE_AUTH_TOKEN, comma-separated)",
    )
    serve_cmd.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="sustained requests/second allowed per client, 0 disables "
        "(env PROBKB_SERVE_RATE_LIMIT)",
    )
    serve_cmd.add_argument(
        "--rate-burst",
        type=int,
        default=None,
        help="token-bucket burst size (env PROBKB_SERVE_RATE_BURST)",
    )
    serve_cmd.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request handler budget in seconds, 0 disables "
        "(env PROBKB_SERVE_TIMEOUT)",
    )
    serve_cmd.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        help="largest accepted request body, 0 = unlimited "
        "(env PROBKB_SERVE_MAX_BODY)",
    )
    serve_cmd.add_argument(
        "--log-json",
        action="store_true",
        default=None,
        help="one JSON log line per request/flush/error on stderr "
        "(env PROBKB_SERVE_LOG_JSON)",
    )

    devtools_cmd = commands.add_parser(
        "devtools", help="developer tooling aimed at repro's own source"
    )
    devtools_sub = devtools_cmd.add_subparsers(dest="devtools_command", required=True)
    lint_cmd = devtools_sub.add_parser(
        "lint",
        help="concurrency & determinism lint (RC001-RC009); "
        "exit 0 clean, 1 findings, 2 usage error",
    )
    lint_cmd.add_argument(
        "paths", nargs="+", help="files or directories to lint (.py)"
    )
    lint_cmd.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    return parser


def _add_pipeline_arguments(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--kb", required=True, help="KB directory (TSV)")
    cmd.add_argument("--backend", choices=("single", "mpp"), default="single")
    cmd.add_argument("--nseg", type=int, default=8)
    cmd.add_argument(
        "--mpp-workers",
        type=int,
        default=0,
        help="worker processes for the MPP backend (0 = serial execution)",
    )
    cmd.add_argument("--iterations", type=int, default=None)
    cmd.add_argument(
        "--no-constraints", action="store_true", help="skip quality control"
    )
    cmd.add_argument(
        "--semi-naive", action="store_true", help="delta (semi-naive) grounding"
    )
    cmd.add_argument(
        "--analysis",
        choices=("off", "warn", "strict"),
        default="warn",
        help="pre-flight static-analysis gate (strict refuses to ground "
        "a KB with error findings)",
    )


def _add_environment_arguments(cmd: argparse.ArgumentParser) -> None:
    """The deployment the static plans are computed *for*."""
    cmd.add_argument(
        "--backend",
        choices=("single", "mpp"),
        default="mpp",
        help="environment to plan for (default: the paper's MPP cluster)",
    )
    cmd.add_argument("--nseg", type=int, default=8)
    cmd.add_argument(
        "--policy",
        choices=("matviews", "naive"),
        default="matviews",
        help="TΠ-view policy of the planned-for MPP backend",
    )


def _plan_environment(args):
    from .analyze import PlanEnvironment

    if args.backend == "single":
        return PlanEnvironment(kind="single", num_segments=1, use_matviews=False)
    return PlanEnvironment(
        kind="mpp",
        num_segments=args.nseg,
        use_matviews=args.policy == "matviews",
    )


def _backend_config(args) -> BackendConfig:
    return BackendConfig(
        kind=args.backend,
        mpp=MPPConfig(
            num_segments=args.nseg,
            num_workers=getattr(args, "mpp_workers", 0),
        ),
    )


def _build_system(args) -> ProbKB:
    # the gate in ProbKB handles analysis; skip the loader's own pass so
    # warnings are not reported twice
    kb = load_kb(args.kb, analysis="off")
    return ProbKB(
        kb,
        backend=_backend_config(args),
        grounding=GroundingConfig(
            max_iterations=args.iterations,
            apply_constraints=not args.no_constraints,
            semi_naive=getattr(args, "semi_naive", False),
            analysis=getattr(args, "analysis", "warn"),
        ),
    )


def cmd_generate(args) -> int:
    generated = generate_kb(
        ReVerbSherlockConfig(
            world=WorldConfig(
                n_people=args.people, n_countries=args.countries, seed=args.seed
            ),
            seed=args.seed,
        )
    )
    save_kb(generated.kb, args.out)
    print(f"wrote {generated.kb} to {args.out}")
    return 0


def cmd_stats(args) -> int:
    kb = load_kb(args.kb)
    for key, value in kb.stats().items():
        print(f"# {key:12s} {value:>10,}")
    return 0


def _load_for_analysis(kb_dir: str):
    """Load a KB for analyze/explain; None (exit code 2) when unreadable."""
    from .core.model import KnowledgeBaseError

    try:
        return load_kb(kb_dir, analysis="off")
    except (OSError, KnowledgeBaseError, ValueError) as error:
        print(f"error: cannot load KB from {kb_dir!r}: {error}", file=sys.stderr)
        return None


def cmd_analyze(args) -> int:
    """Run the static analyzer.

    Exit codes: 0 = clean at the chosen gate, 1 = findings at/above the
    ``--fail-on`` severity, 2 = the KB could not be loaded/analyzed
    (see ``docs/analyze.md``).
    """
    from .analyze import analyze

    kb = _load_for_analysis(args.kb)
    if kb is None:
        return 2
    report = analyze(
        kb,
        include_infos=not args.no_infos,
        environment=_plan_environment(args),
    )
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render(include_infos=not args.no_infos))
    failed = report.has_errors or (
        args.fail_on == "warn" and bool(report.warnings)
    )
    return 1 if failed else 0


def cmd_explain(args) -> int:
    """Static EXPLAIN: estimated plan trees for every grounding query."""
    import json

    from .analyze import estimate_plans, verify_partition_plans

    kb = _load_for_analysis(args.kb)
    if kb is None:
        return 2
    environment = _plan_environment(args)
    report = estimate_plans(kb, environment)
    reports = verify_partition_plans(kb, environment) if args.verify else []
    if args.json:
        payload = report.to_dict()
        if args.verify:
            payload["verified"] = [r.to_dict() for r in reports]
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        for verification in reports:
            print(verification.render())
    return 1 if any(not r.ok for r in reports) else 0


def cmd_sql(args) -> int:
    system = ProbKB(load_kb(args.kb), backend="single")
    for name, sql in system.generated_sql().items():
        print(f"-- {name}")
        print(sql + ";")
        print()
    return 0


def cmd_ground(args) -> int:
    system = _build_system(args)
    executor = system.backend.executor_info()
    if executor["workers"]:
        print(
            f"executor: {executor['mode']} "
            f"({executor['workers']} workers, {executor['segments']} segments)"
        )
    result = system.ground(args.iterations)
    for stats in result.iterations:
        print(
            f"iteration {stats.iteration}: +{stats.new_facts} facts "
            f"(-{stats.removed_facts} removed), |TP|={stats.fact_count}, "
            f"{stats.seconds:.2f}s"
        )
    print(
        f"grounding {'converged' if result.converged else 'stopped'}: "
        f"{result.total_new_facts} new facts, {result.factors} factors, "
        f"{result.total_seconds:.2f}s modelled"
    )
    if args.out:
        from .core import KnowledgeBase

        expanded = KnowledgeBase(
            classes=system.kb.classes,
            relations=system.kb.relations.values(),
            facts=system.all_facts(),
            rules=system.kb.rules,
            constraints=system.kb.constraints,
            validate=False,
        )
        save_kb(expanded, args.out)
        print(f"expanded KB written to {args.out}")
    system.close()
    return 0


def cmd_infer(args) -> int:
    engine = args.engine
    if args.method is not None:
        if engine is None:
            print("warning: --method is deprecated; use --engine", file=sys.stderr)
            engine = args.method
        else:
            print("error: pass --engine or --method, not both", file=sys.stderr)
            return 2
    config = InferenceConfig(
        engine=engine or "gibbs",
        sweeps=args.sweeps,
        num_workers=args.infer_workers,
    )
    system = _build_system(args)
    system.ground(args.iterations)
    marginals = system.infer(config)
    info = system.inference_info(config)
    workers = info.get("num_workers", 0)
    mode = "pooled" if info.get("pooled") else "serial"
    print(
        f"engine={info.get('engine')} workers={workers} ({mode}) "
        f"colors={info.get('colors', '-')} "
        f"wall={info.get('wall_seconds', 0.0):.3f}s"
    )
    new = system.new_facts(marginals)
    new.sort(key=lambda item: -(item[1] or 0.0))
    print(f"{len(new)} inferred facts; top {min(args.top, len(new))}:")
    for fact, probability in new[: args.top]:
        print(f"  P={probability:.2f}  {fact.relation}({fact.subject}, {fact.object})")
    system.close()
    return 0


def cmd_evaluate(args) -> int:
    generated = generate_kb(
        ReVerbSherlockConfig(
            world=WorldConfig(n_people=args.people, seed=args.seed), seed=args.seed
        )
    )
    config = QualityConfig(use_constraints=args.constraints, theta=args.theta)
    outcome = run_quality_experiment(
        generated, config, max_iterations=args.iterations
    )
    print(f"config: {config.describe()}")
    for point in outcome.points:
        print(
            f"  iteration {point.iteration}: {point.new_facts:6d} new, "
            f"precision {point.precision:.2f}"
        )
    print(
        f"total: {outcome.total_new_facts} inferred, "
        f"~{outcome.estimated_correct:.0f} correct, "
        f"precision {outcome.overall_precision:.2f}"
    )
    return 0


def build_serve_service(args, logger=None, expansion="full"):
    """Build the KBService for ``serve`` (separate for testability)."""
    import os

    from .serve import IngestConfig, KBService, ServiceConfig, load_snapshot

    if args.snapshot and os.path.exists(args.snapshot):
        system = load_snapshot(args.snapshot, backend=_backend_config(args))
        print(f"warm start: {system.fact_count()} facts from {args.snapshot}")
    elif args.kb:
        kb = load_kb(args.kb, analysis="off")
        system = ProbKB(
            kb,
            backend=_backend_config(args),
            grounding=GroundingConfig(
                max_iterations=args.iterations,
                apply_constraints=not args.no_constraints,
                analysis=getattr(args, "analysis", "warn"),
            ),
        )
        result = system.ground(args.iterations)
        print(
            f"grounded {args.kb}: {system.fact_count()} facts "
            f"({result.total_new_facts} inferred)"
        )
        if args.materialize:
            stored = system.materialize_marginals(
                config=InferenceConfig(sweeps=args.sweeps)
            )
            print(f"materialized {stored} marginals ({args.sweeps} sweeps)")
        if args.snapshot:
            from .serve import save_snapshot

            save_snapshot(system, args.snapshot)
            print(f"snapshot written to {args.snapshot}")
    else:
        raise SystemExit("serve: need --kb, or --snapshot pointing at a file")

    config = ServiceConfig(
        cache_size=args.cache_size,
        cache_policy=getattr(args, "cache_policy", "lru"),
        cache_ttl=getattr(args, "cache_ttl", None),
        ingest=IngestConfig(
            max_queue=args.max_queue,
            flush_size=args.flush_size,
            flush_interval=args.flush_interval,
        ),
        infer_on_flush=args.infer_on_flush,
        inference=InferenceConfig(sweeps=args.sweeps),
        expansion=expansion,
    )
    return KBService(system, config, logger=logger)


def cmd_serve(args) -> int:
    import signal
    import threading

    from .serve import JsonLogger, ServeConfig, make_server, save_snapshot

    serve_config = ServeConfig.resolve(
        auth_tokens=tuple(args.auth_token) if args.auth_token else None,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        request_timeout=args.request_timeout,
        max_body_bytes=args.max_body_bytes,
        log_json=args.log_json,
        expansion=args.expansion,
    )
    logger = JsonLogger(enabled=serve_config.log_json)
    service = build_serve_service(
        args, logger=logger, expansion=serve_config.expansion
    )
    server = make_server(
        service,
        host=args.host,
        port=args.port,
        snapshot_path=args.snapshot,
        quiet=not args.verbose,
        config=serve_config,
        logger=logger,
    )
    host, port = server.server_address[:2]
    service.start()

    # Graceful drain: on SIGTERM/SIGINT stop admitting evidence (healthz
    # flips to "draining"), flush everything already accepted into the
    # KB, write the final snapshot, then stop the listener and exit 0.
    drain_lock = threading.Lock()
    drained = threading.Event()

    def _drain() -> None:
        with drain_lock:
            if drained.is_set():
                return
            server.draining = True
            logger.log("drain_begin", queue_depth=service.queue.depth)
            try:
                service.stop()  # stops the worker, then drains the queue
                if args.snapshot:
                    save_snapshot(service.probkb, args.snapshot)
                    logger.log("snapshot", path=args.snapshot)
            except Exception as error:  # pragma: no cover - defensive
                # _drain runs on the signal thread: an uncaught error
                # here would vanish and leave the server half-stopped
                logger.log("drain_error", error=repr(error))
            finally:
                drained.set()
                server.shutdown()

    def _on_signal(signum, frame) -> None:
        # serve_forever blocks the main thread; shutdown() must come
        # from another thread or it deadlocks waiting on its own loop
        threading.Thread(target=_drain, name="probkb-drain", daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_signal)
        except ValueError:  # not the main thread (embedded use)
            break

    print(f"serving on http://{host}:{port} (Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if not drained.is_set():
            _drain()
        server.server_close()
        if args.snapshot:
            print(f"snapshot written to {args.snapshot}")
        service.probkb.close()
    return 0


def cmd_devtools(args) -> int:
    # imported lazily: the lint framework is developer tooling and
    # should cost nothing on the serving/inference paths
    from .devtools import LintUsageError, lint_paths

    try:
        report = lint_paths(args.paths)
    except LintUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 1 if report.findings else 0


_HANDLERS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "analyze": cmd_analyze,
    "explain": cmd_explain,
    "sql": cmd_sql,
    "ground": cmd_ground,
    "infer": cmd_infer,
    "evaluate": cmd_evaluate,
    "serve": cmd_serve,
    "devtools": cmd_devtools,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        kb_dir = getattr(args, "kb", None)
        if kb_dir:
            print(
                f"(run `probkb analyze --kb {kb_dir}` for the full report, "
                f"or pass --analysis warn to proceed anyway)",
                file=sys.stderr,
            )
        return 2


if __name__ == "__main__":
    sys.exit(main())
