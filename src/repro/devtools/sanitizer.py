"""Runtime lock sanitizer: the dynamic half of the concurrency checks.

The static linter (:mod:`repro.devtools.lint`) proves what it can see
lexically; this module validates the rest at test time.  When
``PROBKB_SANITIZE=1`` is set, :func:`make_lock` hands out
:class:`SanitizedLock` objects instead of plain ``threading.Lock``.
Every *blocking* acquire is checked against a process-global
lock-order graph before it can block:

* acquiring B while holding A records the edge ``A -> B``; a later
  acquire of A while holding B (any path ``B -> ... -> A``) raises
  :class:`LockOrderInversion` *before* deadlocking, with both
  acquisition stacks' lock names in the message;
* re-acquiring a non-reentrant lock already held by the current thread
  raises immediately instead of self-deadlocking;
* :meth:`LockSanitizer.assert_held` lets guarded code (and tests)
  assert the ``# guarded by:`` contract dynamically, raising
  :class:`GuardedByViolation` when the declared lock is not held.

Non-blocking probe acquires (``acquire(False)``) skip the order checks:
``threading.Condition`` probes its lock that way in ``_is_owned`` and a
failed probe is not an ordering event.  With the environment variable
unset, :func:`make_lock` returns a plain ``threading.Lock`` and this
module costs one ``os.environ`` read per lock construction.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "enabled",
    "make_lock",
    "shadow_token",
    "get_sanitizer",
    "LockSanitizer",
    "SanitizedLock",
    "LockOrderInversion",
    "GuardedByViolation",
]

_ENV_FLAG = "PROBKB_SANITIZE"


def enabled() -> bool:
    """True when the sanitizer is switched on via ``PROBKB_SANITIZE``."""
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0", "false", "no")


class LockOrderInversion(RuntimeError):
    """Two locks were acquired in opposite orders on different paths."""


class GuardedByViolation(RuntimeError):
    """A ``# guarded by:`` contract was broken at runtime."""


class _HeldStacks(threading.local):
    """Per-thread stack of currently-held sanitized lock ids."""

    def __init__(self) -> None:
        self.stack: List[int] = []


class LockSanitizer:
    """Process-global acquisition-order graph and per-thread held stacks.

    Nodes are ``id()`` of the participating lock objects; strong
    references are retained so an id is never recycled onto a different
    lock while the graph remembers it.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: edge source id -> successor ids  # guarded by: self._mutex
        self._edges: Dict[int, Set[int]] = {}
        #: lock id -> display name  # guarded by: self._mutex
        self._names: Dict[int, str] = {}
        #: lock id -> the lock itself (pins ids)  # guarded by: self._mutex
        self._refs: Dict[int, Any] = {}
        self._held = _HeldStacks()

    # -- bookkeeping ---------------------------------------------------------

    def reset(self) -> None:
        """Forget all recorded edges (test isolation helper)."""
        with self._mutex:
            self._edges.clear()
            self._names.clear()
            self._refs.clear()
        self._held.stack = []

    def _register(self, obj: Any, name: str) -> int:
        node = id(obj)
        self._names.setdefault(node, name)
        self._refs.setdefault(node, obj)
        return node

    # holds: self._mutex
    def _reachable(self, start: int, goal: int) -> bool:
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for successor in self._edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False

    def _describe(self, node: int) -> str:
        return self._names.get(node, f"<lock {node:#x}>")

    # -- the checks ----------------------------------------------------------

    def check_acquire(self, obj: Any, name: str) -> None:
        """Validate acquiring ``obj`` now; raise rather than deadlock."""
        node = id(obj)
        held = self._held.stack
        if node in held:
            raise LockOrderInversion(
                f"re-acquiring non-reentrant lock {name!r} already held by "
                f"this thread (held: {self._held_names()}) — this would "
                "self-deadlock"
            )
        if not held:
            with self._mutex:
                self._register(obj, name)
            return
        with self._mutex:
            self._register(obj, name)
            for holder in held:
                if self._reachable(node, holder):
                    raise LockOrderInversion(
                        f"lock-order inversion: acquiring {name!r} while "
                        f"holding {self._describe(holder)!r}, but the "
                        f"recorded order is {name!r} before "
                        f"{self._describe(holder)!r} (held here: "
                        f"{self._held_names()})"
                    )
            for holder in held:
                self._edges.setdefault(holder, set()).add(node)

    def note_acquired(self, obj: Any, name: str) -> None:
        """Record a successful acquisition (no checks — see check_acquire)."""
        with self._mutex:
            self._register(obj, name)
        self._held.stack.append(id(obj))

    def note_released(self, obj: Any) -> None:
        node = id(obj)
        stack = self._held.stack
        if node in stack:
            # remove the innermost occurrence; out-of-order release of a
            # non-innermost lock is legal for plain mutexes
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == node:
                    del stack[index]
                    break

    def acquired(self, obj: Any, name: str) -> None:
        """check_acquire + note_acquired in one step (shadow tokens)."""
        self.check_acquire(obj, name)
        self.note_acquired(obj, name)

    # -- introspection -------------------------------------------------------

    def held(self, obj: Any) -> bool:
        return id(obj) in self._held.stack

    def _held_names(self) -> str:
        names = [self._describe(node) for node in self._held.stack]
        return "[" + ", ".join(names) + "]"

    def assert_held(self, obj: Any, owner: str = "") -> None:
        """Raise :class:`GuardedByViolation` unless this thread holds obj."""
        if not self.held(obj):
            name = getattr(obj, "name", None)
            if not isinstance(name, str) or not name:
                with self._mutex:
                    name = self._describe(id(obj))
            what = f" of {owner}" if owner else ""
            raise GuardedByViolation(
                f"guarded-by violation{what}: {name!r} is not held by the "
                f"current thread (held: {self._held_names()})"
            )

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """Snapshot of the recorded order graph, by lock name."""
        with self._mutex:
            return {
                self._describe(source): tuple(
                    sorted(self._describe(target) for target in targets)
                )
                for source, targets in sorted(self._edges.items())
            }


_SANITIZER = LockSanitizer()


def get_sanitizer() -> LockSanitizer:
    """The process-global sanitizer instance."""
    return _SANITIZER


class SanitizedLock:
    """``threading.Lock`` work-alike that reports to the sanitizer.

    Compatible with ``threading.Condition`` (which falls back to probing
    ``acquire(False)`` when the lock type exposes no ``_is_owned``).
    """

    def __init__(self, name: str = "lock") -> None:
        self._inner = threading.Lock()
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            _SANITIZER.check_acquire(self, self._name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _SANITIZER.note_acquired(self, self._name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        _SANITIZER.note_released(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<SanitizedLock {self._name!r} {state}>"


def make_lock(name: str = "lock") -> Any:
    """A mutex: sanitized when ``PROBKB_SANITIZE=1``, plain otherwise."""
    if enabled():
        return SanitizedLock(name)
    return threading.Lock()


class _ShadowToken:
    """Stand-in node for a composite lock (e.g. RWLock) in the graph."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"<shadow {self.name!r}>"


def shadow_token(name: str) -> Optional[_ShadowToken]:
    """Order-graph token for a composite lock, or None when disabled.

    Callers note ``get_sanitizer().acquired(token, token.name)`` after
    their internal bookkeeping lock is released and
    ``note_released(token)`` before re-taking it, so the token never
    creates a false edge against the internal lock.
    """
    if enabled():
        return _ShadowToken(name)
    return None
