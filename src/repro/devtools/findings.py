"""Typed lint findings: the concurrency linter's output vocabulary.

Mirror of :mod:`repro.analyze.findings`, but aimed at repro's *own*
source instead of KB programs: every defect class the concurrency &
determinism linter detects has a stable ``RC``-prefixed code with a
fixed default severity, so the CI gate, suppression comments, and
humans reading a report all key on the same identifiers.  The registry
below is the single source of truth; ``docs/devtools.md`` renders it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)

#: code -> (default severity, one-line title).  Codes are append-only:
#: once published a code never changes meaning or disappears.
RC_CODES: Dict[str, Tuple[str, str]] = {
    "RC001": (ERROR, "field declared '# guarded by: <lock>' mutated outside "
                     "a 'with <lock>:' block"),
    "RC002": (ERROR, "lock-order inversion: cycle in the static "
                     "lock-acquisition graph"),
    "RC003": (ERROR, "nondeterminism inside an inference/grounding kernel "
                     "(time.*, unseeded random, id())"),
    "RC004": (WARNING, "blocking .get()/.join() without a timeout inside a "
                       "thread loop"),
    "RC005": (ERROR, "thread target has no Exception handler: an uncaught "
                     "error kills the thread silently"),
    "RC006": (WARNING, "wall-clock time.time() used in duration arithmetic "
                       "(use time.monotonic())"),
    "RC007": (ERROR, "unknown code in a '# lint: disable=' comment"),
    "RC008": (WARNING, "unused suppression: '# lint: disable=' matched no "
                       "finding"),
    "RC009": (ERROR, "direct PhysicalNode construction outside the MPP "
                     "planners (plans must come from a planner so the "
                     "verifier sees them)"),
}

#: suppression-hygiene codes are never themselves suppressible — a
#: disable comment silencing the disable checker would be circular
UNSUPPRESSIBLE = frozenset({"RC007", "RC008"})


@dataclass(frozen=True)
class LintFinding:
    """One defect at one source location."""

    code: str
    message: str
    path: str
    line: int
    severity: str = ""

    def __post_init__(self) -> None:
        if self.code not in RC_CODES:
            raise ValueError(f"unknown finding code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", RC_CODES[self.code][0])
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return RC_CODES[self.code][1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.severity} {self.message}"


@dataclass(frozen=True)
class LintReport:
    """Everything one :func:`repro.devtools.lint_paths` run found."""

    findings: Tuple[LintFinding, ...] = ()
    files_scanned: int = 0

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def _with_severity(self, severity: str) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[LintFinding]:
        return self._with_severity(ERROR)

    @property
    def warnings(self) -> List[LintFinding]:
        return self._with_severity(WARNING)

    def by_code(self, code: str) -> List[LintFinding]:
        return [f for f in self.findings if f.code == code]

    @property
    def codes(self) -> List[str]:
        return sorted({f.code for f in self.findings})

    def summary(self) -> str:
        return (
            f"{len(self.errors)} errors, {len(self.warnings)} warnings "
            f"across {self.files_scanned} files"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "files_scanned": self.files_scanned,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)


class LintUsageError(ValueError):
    """A lint invocation that cannot run (bad path, unreadable file)."""
