"""Developer tooling aimed at repro's own source code.

``repro.analyze`` inspects KB programs; this package inspects *us*:
an AST-based concurrency & determinism linter with stable ``RCnnn``
finding codes (:mod:`repro.devtools.lint`) and an opt-in runtime lock
sanitizer (:mod:`repro.devtools.sanitizer`).  CLI entry point:
``repro devtools lint``.
"""

from .findings import (
    ERROR,
    RC_CODES,
    SEVERITIES,
    UNSUPPRESSIBLE,
    WARNING,
    LintFinding,
    LintReport,
    LintUsageError,
)
from .lint import KERNEL_PATTERNS, lint_paths, lint_source
from .sanitizer import (
    GuardedByViolation,
    LockOrderInversion,
    LockSanitizer,
    SanitizedLock,
    enabled,
    get_sanitizer,
    make_lock,
    shadow_token,
)

__all__ = [
    "ERROR",
    "WARNING",
    "SEVERITIES",
    "RC_CODES",
    "UNSUPPRESSIBLE",
    "LintFinding",
    "LintReport",
    "LintUsageError",
    "KERNEL_PATTERNS",
    "lint_paths",
    "lint_source",
    "enabled",
    "make_lock",
    "shadow_token",
    "get_sanitizer",
    "LockSanitizer",
    "SanitizedLock",
    "LockOrderInversion",
    "GuardedByViolation",
]
