"""PKB-Lint: AST-based concurrency & determinism lint over repro's source.

The paper's central guarantee is that parallel execution changes speed,
never answers.  The code keeps that guarantee through conventions — a
field is mutated only under its lock, locks are always taken in one
order, inference kernels never consult wall clocks or unseeded RNGs.
This module machine-checks those conventions and emits stable ``RCnnn``
findings (:mod:`repro.devtools.findings`).

Annotations the linter understands (ordinary comments, so the code runs
unchanged without the linter):

``# guarded by: <lock expr>``
    On a field's initial assignment in ``__init__``: every later
    mutation of that field must sit inside ``with <lock expr>:`` (or a
    context manager derived from it, e.g. ``with self.lock.write_locked():``
    for a field guarded by ``self.lock``).  Violations are **RC001**.

``# holds: <lock expr>``
    On (or just under) a ``def`` line: callers are required to hold the
    lock, so the whole body counts as guarded — the static analogue of
    clang's ``REQUIRES()`` thread-safety annotation.

``# lint: disable=RC001,RC003``
    Suppress the listed codes for findings *on that line*.  Unknown
    codes are **RC007**; suppressions that silence nothing are
    **RC008** (both are themselves unsuppressible).

Scope notes: the analysis is lexical and intentionally shallow — it
resolves ``self.method()`` calls, ``self.attr.method()`` through
constructor assignments, and same-module function calls when building
the lock-acquisition graph (RC002), but it does not model aliasing,
inheritance, or callables stored in attributes.  The runtime sanitizer
(:mod:`repro.devtools.sanitizer`) covers the dynamic remainder.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .findings import (
    RC_CODES,
    UNSUPPRESSIBLE,
    LintFinding,
    LintReport,
    LintUsageError,
)

__all__ = ["lint_paths", "lint_source", "KERNEL_PATTERNS"]

#: path fragments marking deterministic inference/grounding kernels:
#: files where RC003 forbids wall clocks, unseeded RNGs, and id()
KERNEL_PATTERNS: Tuple[str, ...] = ("/infer/", "/delta/", "mpp/rowops.py")

#: the only files allowed to construct PhysicalNode directly (RC009):
#: the adaptive executor and the static planner.  Everything else must
#: obtain physical plans from a planner so the plan verifier
#: (repro.mpp.verify) gets to see them.
PHYSICAL_PLANNER_FILES: Tuple[str, ...] = (
    "mpp/static_planner.py",
    "mpp/cluster.py",
)

#: method calls that mutate their receiver in place (RC001)
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "pop", "popitem", "clear", "update",
        "add", "discard", "remove", "setdefault", "sort", "reverse",
        "move_to_end",
    }
)

#: constructor names whose result is treated as a lock object (RC002)
LOCK_FACTORIES = frozenset(
    {
        "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
        "RWLock", "SanitizedLock", "make_lock",
    }
)

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,]+)")
_GUARDED_RE = re.compile(r"#\s*guarded by:\s*([^#]+)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([^#]+)")

#: a lock's identity in the acquisition graph: (owner class | module, attr)
LockId = Tuple[str, str]
#: an unresolved call site: ("self", m) | ("attr", x, m) | ("name", f)
CallDesc = Tuple[str, ...]
#: a function's identity: (module stem, class name | "", function name)
FuncKey = Tuple[str, str, str]


def _normalize_expr(text: str) -> str:
    """Canonical spelling of an annotation/lock expression."""
    try:
        return ast.unparse(ast.parse(text.strip(), mode="eval").body)
    except SyntaxError:
        return text.strip()


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_name(func: ast.AST) -> str:
    """Last path component of a call target (``a.b.C(...)`` -> ``C``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_module_call(node: ast.Call, module: str) -> Optional[str]:
    """``<module>.<attr>(...)`` -> attr name, else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == module
    ):
        return func.attr
    return None


@dataclass
class _Suppression:
    line: int
    codes: List[str]
    unknown: List[str]
    used: Set[str] = field(default_factory=set)


@dataclass
class _FuncInfo:
    """What one function contributes to the cross-file analyses."""

    key: FuncKey
    line: int
    holds: Set[str] = field(default_factory=set)
    #: (lock, line, locks held lexically at the acquisition)
    acquisitions: List[Tuple[LockId, int, Tuple[LockId, ...]]] = field(
        default_factory=list
    )
    #: (call descriptor, line, locks held lexically at the call)
    calls: List[Tuple[CallDesc, int, Tuple[LockId, ...]]] = field(
        default_factory=list
    )
    catches_exceptions: bool = False


@dataclass
class _ClassInfo:
    name: str
    module: str
    #: attributes assigned a lock-factory call in this class
    lock_attrs: Set[str] = field(default_factory=set)
    #: guarded field -> (normalized lock expr, declaration line)
    guarded: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: attribute -> constructor class name (``self.x = QueryCache(...)``)
    attr_types: Dict[str, str] = field(default_factory=dict)


class _FileContext:
    """Parsed source plus everything extracted from its comments."""

    def __init__(self, display_path: str, text: str) -> None:
        self.path = display_path
        self.text = text
        try:
            self.tree = ast.parse(text)
        except SyntaxError as error:
            raise LintUsageError(f"{display_path}: {error}") from None
        self.module = Path(display_path).stem
        self.comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:
            pass
        self.suppressions: Dict[int, _Suppression] = {}
        for line, comment in self.comments.items():
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            codes: List[str] = []
            unknown: List[str] = []
            for token_text in match.group(1).split(","):
                token_text = token_text.strip()
                if not token_text:
                    continue
                if token_text in RC_CODES:
                    codes.append(token_text)
                else:
                    unknown.append(token_text)
            self.suppressions[line] = _Suppression(line, codes, unknown)
        #: module-or-local names assigned a lock-factory call
        self.lock_names: Set[str] = set()
        self.classes: Dict[str, _ClassInfo] = {}
        #: every function in the file by name (nested included; last wins)
        self.functions_by_name: Dict[str, _FuncInfo] = {}
        self.is_kernel = self._kernel_path(display_path)

    @staticmethod
    def _kernel_path(display_path: str) -> bool:
        posix = "/" + str(display_path).replace(os.sep, "/").lstrip("/")
        return any(pattern in posix for pattern in KERNEL_PATTERNS)

    def guard_comment(self, line: int) -> Optional[str]:
        comment = self.comments.get(line)
        if comment is None:
            return None
        match = _GUARDED_RE.search(comment)
        if match is None:
            return None
        return _normalize_expr(match.group(1))

    def holds_for(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Set[str]:
        """``# holds:`` annotations on, just above, or just inside the def."""
        first_body_line = node.body[0].lineno if node.body else node.lineno
        holds: Set[str] = set()
        for line in range(node.lineno - 1, first_body_line + 1):
            comment = self.comments.get(line)
            if comment is None:
                continue
            match = _HOLDS_RE.search(comment)
            if match is None:
                continue
            for part in match.group(1).split(","):
                if part.strip():
                    holds.add(_normalize_expr(part))
        return holds


# ------------------------------------------------------------------ pre-scan


def _prescan(ctx: _FileContext) -> None:
    """Collect class metadata and lock names before the checking walk."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            info = _ClassInfo(name=node.name, module=ctx.module)
            ctx.classes[node.name] = info
            for sub in ast.walk(node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    targets, value = [sub.target], sub.value
                else:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if isinstance(value, ast.Call):
                        ctor = _call_name(value.func)
                        if ctor in LOCK_FACTORIES:
                            info.lock_attrs.add(attr)
                        elif ctor and ctor[0].isupper():
                            info.attr_types[attr] = ctor
                    guard = ctx.guard_comment(sub.lineno)
                    if guard is not None:
                        info.guarded[attr] = (guard, sub.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value if isinstance(node, ast.AnnAssign) else node.value
            if isinstance(value, ast.Call) and _call_name(value.func) in LOCK_FACTORIES:
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        ctx.lock_names.add(target.id)


# ------------------------------------------------------------------ the walk


class _Walker:
    """Single checking pass over one file, with lexical context stacks."""

    def __init__(self, ctx: _FileContext) -> None:
        self.ctx = ctx
        self.findings: List[LintFinding] = []
        #: RC005 candidates: (target descriptor, line, enclosing class)
        self.thread_targets: List[Tuple[CallDesc, int, str]] = []
        self.functions: Dict[FuncKey, _FuncInfo] = {}
        self._class_stack: List[str] = []
        self._func_stack: List[_FuncInfo] = []
        #: normalized with-expressions currently held (lexical)
        self._with_exprs: List[str] = []
        #: subset of the above resolved to known lock identities
        self._with_locks: List[LockId] = []
        self._while_depth = 0

    # -- helpers -------------------------------------------------------------

    def _emit(self, code: str, line: int, message: str) -> None:
        self.findings.append(
            LintFinding(code=code, message=message, path=self.ctx.path, line=line)
        )

    def _current_class(self) -> str:
        return self._class_stack[-1] if self._class_stack else ""

    def _resolve_lock(self, expr: ast.expr) -> Optional[LockId]:
        """Map a with-expression onto a lock identity, if it names one."""
        target = expr
        if isinstance(target, ast.Call):
            target = target.func
        # self.X or self.X.method
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Attribute):
            attr = _self_attr(target.value)
        if attr is not None:
            cls = self._current_class()
            info = self.ctx.classes.get(cls)
            if info is not None and attr in info.lock_attrs:
                return (cls, attr)
            return None
        if isinstance(target, ast.Name) and target.id in self.ctx.lock_names:
            return (self.ctx.module, target.id)
        return None

    def _held_locks(self) -> Tuple[LockId, ...]:
        held = list(self._with_locks)
        if self._func_stack:
            cls = self._current_class()
            info = self.ctx.classes.get(cls)
            for text in self._func_stack[-1].holds:
                attr = text.rsplit(".", 1)[-1]
                if info is not None and attr in info.lock_attrs:
                    held.append((cls, attr))
        return tuple(held)

    def _guard_satisfied(self, guard: str) -> bool:
        for expr in self._with_exprs:
            if expr == guard or expr.startswith(guard + "."):
                return True
        if self._func_stack and guard in self._func_stack[-1].holds:
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def walk(self) -> None:
        for node in self.ctx.tree.body:
            self._visit(node)
        self._resolve_thread_targets()

    def _visit(self, node: ast.AST) -> None:
        method = getattr(self, "_visit_" + type(node).__name__, None)
        if method is not None:
            method(node)
        else:
            self._generic(node)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        saved_exprs, saved_locks = self._with_exprs, self._with_locks
        self._with_exprs, self._with_locks = [], []
        try:
            self._generic(node)
        finally:
            self._with_exprs, self._with_locks = saved_exprs, saved_locks
            self._class_stack.pop()

    def _visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def _visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        key: FuncKey = (self.ctx.module, self._current_class(), node.name)
        info = _FuncInfo(key=key, line=node.lineno, holds=self.ctx.holds_for(node))
        self.functions[key] = info
        self.ctx.functions_by_name[node.name] = info
        self._func_stack.append(info)
        saved_exprs, saved_locks = self._with_exprs, self._with_locks
        saved_while = self._while_depth
        self._with_exprs, self._with_locks = [], []
        self._while_depth = 0
        try:
            self._generic(node)
        finally:
            self._with_exprs, self._with_locks = saved_exprs, saved_locks
            self._while_depth = saved_while
            self._func_stack.pop()

    def _visit_With(self, node: ast.With) -> None:
        pushed_exprs = 0
        pushed_locks = 0
        for item in node.items:
            text = _normalize_expr(ast.unparse(item.context_expr))
            self._with_exprs.append(text)
            pushed_exprs += 1
            lock = self._resolve_lock(item.context_expr)
            if lock is not None:
                if self._func_stack:
                    self._func_stack[-1].acquisitions.append(
                        (lock, item.context_expr.lineno, self._held_locks())
                    )
                self._with_locks.append(lock)
                pushed_locks += 1
            self._visit(item.context_expr)
        for stmt in node.body:
            self._visit(stmt)
        del self._with_exprs[len(self._with_exprs) - pushed_exprs :]
        if pushed_locks:
            del self._with_locks[len(self._with_locks) - pushed_locks :]

    def _visit_While(self, node: ast.While) -> None:
        self._while_depth += 1
        try:
            self._generic(node)
        finally:
            self._while_depth -= 1

    def _visit_Try(self, node: ast.Try) -> None:
        if self._func_stack and any(
            self._handler_catches_exceptions(handler) for handler in node.handlers
        ):
            self._func_stack[-1].catches_exceptions = True
        self._generic(node)

    @staticmethod
    def _handler_catches_exceptions(handler: ast.ExceptHandler) -> bool:
        kind = handler.type
        if kind is None:
            return True
        names: List[ast.expr] = (
            list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
        )
        return any(
            isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
            for name in names
        )

    # -- statements that can mutate guarded fields ---------------------------

    def _visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutation_target(target, node.lineno)
        self._generic(node)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_mutation_target(node.target, node.lineno)
        self._generic(node)

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node.target, node.lineno)
        self._generic(node)

    def _visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_mutation_target(target, node.lineno)
        self._generic(node)

    def _check_mutation_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_mutation_target(element, line)
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            self._check_mutation_target(target.value, line)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._check_guarded_mutation(attr, line)

    def _check_guarded_mutation(self, attr: str, line: int) -> None:
        cls = self._current_class()
        info = self.ctx.classes.get(cls)
        if info is None or attr not in info.guarded:
            return
        guard, decl_line = info.guarded[attr]
        if line == decl_line:
            return
        if self._func_stack and self._func_stack[-1].key[2] == "__init__":
            return  # construction happens before the object is shared
        if self._guard_satisfied(guard):
            return
        self._emit(
            "RC001",
            line,
            f"self.{attr} is declared '# guarded by: {guard}' but is "
            f"mutated outside 'with {guard}:'",
        )

    # -- calls ---------------------------------------------------------------

    def _visit_Call(self, node: ast.Call) -> None:
        self._check_rc003(node)
        self._check_rc004(node)
        self._check_rc006_call_args(node)
        self._check_rc009(node)
        self._record_thread_target(node)
        func = node.func
        # guarded-field mutation through a mutating method call
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._check_guarded_mutation(attr, node.lineno)
        # record the call for lock-graph closure
        if self._func_stack:
            desc = self._call_desc(func)
            if desc is not None:
                self._func_stack[-1].calls.append(
                    (desc, node.lineno, self._held_locks())
                )
        self._generic(node)

    @staticmethod
    def _call_desc(func: ast.AST) -> Optional[CallDesc]:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func.value)
            if attr is not None:
                return ("attr", attr, func.attr)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return ("self", func.attr)
        return None

    def _check_rc003(self, node: ast.Call) -> None:
        if not self.ctx.is_kernel:
            return
        time_attr = _is_module_call(node, "time")
        if time_attr is not None:
            self._emit(
                "RC003",
                node.lineno,
                f"time.{time_attr}() inside a deterministic kernel — results "
                "must be a pure function of the seed",
            )
            return
        random_attr = _is_module_call(node, "random")
        if random_attr is not None:
            if random_attr == "Random" and (node.args or node.keywords):
                return  # explicitly seeded stream
            self._emit(
                "RC003",
                node.lineno,
                f"random.{random_attr}() inside a deterministic kernel — use "
                "a seeded random.Random or the counter-based draw streams",
            )
            return
        if isinstance(node.func, ast.Name) and node.func.id == "id":
            self._emit(
                "RC003",
                node.lineno,
                "id() inside a deterministic kernel — id-keyed ordering "
                "varies across processes and runs",
            )
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._emit(
                    "RC003",
                    keyword.value.lineno,
                    "key=id inside a deterministic kernel — id-keyed "
                    "ordering varies across processes and runs",
                )

    def _check_rc009(self, node: ast.Call) -> None:
        if _call_name(node.func) != "PhysicalNode":
            return
        posix = "/" + str(self.ctx.path).replace(os.sep, "/").lstrip("/")
        if any(posix.endswith(allowed) for allowed in PHYSICAL_PLANNER_FILES):
            return
        self._emit(
            "RC009",
            node.lineno,
            "PhysicalNode constructed outside the MPP planners "
            f"({', '.join(PHYSICAL_PLANNER_FILES)}): physical plans must "
            "come from a planner so the plan verifier sees them",
        )

    def _check_rc004(self, node: ast.Call) -> None:
        if self._while_depth == 0 or not self._func_stack:
            return
        if node.args or node.keywords:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("get", "join"):
            self._emit(
                "RC004",
                node.lineno,
                f".{func.attr}() with no timeout inside a thread loop can "
                "block shutdown forever — pass a timeout or document the "
                "wakeup path",
            )

    def _check_rc006_call_args(self, node: ast.Call) -> None:
        # time.time() used directly inside arithmetic shows up via
        # _visit_BinOp/_visit_Compare; nothing extra needed here.
        return

    def _record_thread_target(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name != "Thread":
            return
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            desc = self._call_desc(keyword.value)
            if desc is None and isinstance(keyword.value, ast.Name):
                desc = ("name", keyword.value.id)
            if desc is not None:
                self.thread_targets.append(
                    (desc, node.lineno, self._current_class())
                )

    def _resolve_thread_targets(self) -> None:
        for desc, line, _cls in self.thread_targets:
            target_name = desc[-1]
            info = self.ctx.functions_by_name.get(target_name)
            if info is None:
                continue  # lambda / imported target: not analyzable
            if not info.catches_exceptions:
                self._emit(
                    "RC005",
                    line,
                    f"thread target {target_name}() has no except "
                    "Exception handler — an uncaught error kills the "
                    "thread silently and strands its queue",
                )

    # -- RC006: wall-clock duration arithmetic -------------------------------

    @staticmethod
    def _is_time_time(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and _is_module_call(node, "time") == "time"

    def _visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)) and (
            self._is_time_time(node.left) or self._is_time_time(node.right)
        ):
            self._emit(
                "RC006",
                node.lineno,
                "time.time() in duration arithmetic — wall clocks jump "
                "(NTP, DST); use time.monotonic() for elapsed time",
            )
        self._generic(node)

    def _visit_Compare(self, node: ast.Compare) -> None:
        if self._is_time_time(node.left) or any(
            self._is_time_time(comparator) for comparator in node.comparators
        ):
            self._emit(
                "RC006",
                node.lineno,
                "time.time() in a deadline comparison — wall clocks jump "
                "(NTP, DST); use time.monotonic() for deadlines",
            )
        self._generic(node)


# ---------------------------------------------------------- lock-order graph


def _lock_graph_findings(
    contexts: Sequence[_FileContext],
    walkers: Sequence[_Walker],
) -> List[LintFinding]:
    """RC002: build the global acquisition graph and flag cycles."""
    functions: Dict[FuncKey, _FuncInfo] = {}
    for walker in walkers:
        functions.update(walker.functions)
    class_modules: Dict[str, _ClassInfo] = {}
    for ctx in contexts:
        for name, info in ctx.classes.items():
            class_modules.setdefault(name, info)

    def resolve_call(key: FuncKey, desc: CallDesc) -> Optional[FuncKey]:
        module, cls, _name = key
        if desc[0] == "self" and cls:
            candidate = (module, cls, desc[1])
            return candidate if candidate in functions else None
        if desc[0] == "attr" and cls:
            owner = class_modules.get(cls)
            if owner is None:
                return None
            target_cls = owner.attr_types.get(desc[1])
            if target_cls is None:
                return None
            target_info = class_modules.get(target_cls)
            if target_info is None:
                return None
            candidate = (target_info.module, target_cls, desc[2])
            return candidate if candidate in functions else None
        if desc[0] == "name":
            candidate = (module, "", desc[1])
            return candidate if candidate in functions else None
        return None

    # transitive closure of "locks this function may acquire"
    closure: Dict[FuncKey, Set[LockId]] = {
        key: {lock for lock, _line, _held in info.acquisitions}
        for key, info in functions.items()
    }
    changed = True
    while changed:
        changed = False
        for key, info in functions.items():
            acquired = closure[key]
            before = len(acquired)
            for desc, _line, _held in info.calls:
                callee = resolve_call(key, desc)
                if callee is not None:
                    acquired |= closure[callee]
            if len(acquired) != before:
                changed = True

    #: edge (held -> acquired) -> first recorded site
    edges: Dict[Tuple[LockId, LockId], Tuple[str, int]] = {}

    def add_edge(held: LockId, acquired: LockId, path: str, line: int) -> None:
        if held == acquired:
            return  # re-entry is RC001/sanitizer territory, not ordering
        edges.setdefault((held, acquired), (path, line))

    path_of = {
        key: walker.ctx.path
        for walker in walkers
        for key in walker.functions
    }
    for key, info in functions.items():
        source = path_of.get(key, "")
        for lock, line, held in info.acquisitions:
            for holder in held:
                add_edge(holder, lock, source, line)
        for desc, line, held in info.calls:
            if not held:
                continue
            callee = resolve_call(key, desc)
            if callee is None:
                continue
            for lock in closure[callee]:
                for holder in held:
                    add_edge(holder, lock, source, line)

    # cycle detection over the lock graph (iterative DFS, deterministic)
    graph: Dict[LockId, List[LockId]] = {}
    for (held, acquired) in edges:
        graph.setdefault(held, []).append(acquired)
    for successors in graph.values():
        successors.sort()

    findings: List[LintFinding] = []
    reported: Set[Tuple[LockId, ...]] = set()
    visiting: Dict[LockId, int] = {}

    def dfs(start: LockId) -> None:
        stack: List[Tuple[LockId, int]] = [(start, 0)]
        order: List[LockId] = []
        while stack:
            node, index = stack[-1]
            if index == 0:
                visiting[node] = 1
                order.append(node)
            successors = graph.get(node, [])
            if index < len(successors):
                stack[-1] = (node, index + 1)
                nxt = successors[index]
                state = visiting.get(nxt, 0)
                if state == 1:
                    cycle = order[order.index(nxt) :] + [nxt]
                    canonical = tuple(sorted(set(cycle)))
                    if canonical not in reported:
                        reported.add(canonical)
                        findings.append(_cycle_finding(cycle, edges))
                elif state == 0:
                    stack.append((nxt, 0))
            else:
                visiting[node] = 2
                stack.pop()
                order.pop()

    for node in sorted(graph):
        if visiting.get(node, 0) == 0:
            dfs(node)
    return findings


def _cycle_finding(
    cycle: List[LockId],
    edges: Dict[Tuple[LockId, LockId], Tuple[str, int]],
) -> LintFinding:
    names = " -> ".join(".".join(lock) for lock in cycle)
    sites = []
    for held, acquired in zip(cycle, cycle[1:]):
        site = edges.get((held, acquired))
        if site is not None:
            sites.append(f"{site[0]}:{site[1]}")
    first = edges.get((cycle[0], cycle[1]), ("", 0))
    return LintFinding(
        code="RC002",
        message=(
            f"lock-order inversion: {names} (acquisition sites: "
            f"{', '.join(sites)}) — pick one global order and stick to it"
        ),
        path=first[0],
        line=first[1],
    )


# ----------------------------------------------------------------- driver


def _collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintUsageError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    if not files:
        raise LintUsageError("nothing to lint: no .py files under the given paths")
    return files


def _lint_contexts(contexts: List[_FileContext]) -> LintReport:
    walkers: List[_Walker] = []
    for ctx in contexts:
        _prescan(ctx)
    for ctx in contexts:
        walker = _Walker(ctx)
        walker.walk()
        walkers.append(walker)
    raw: List[LintFinding] = []
    for walker in walkers:
        raw.extend(walker.findings)
    raw.extend(_lock_graph_findings(contexts, walkers))

    by_path = {ctx.path: ctx for ctx in contexts}
    kept: List[LintFinding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppression = ctx.suppressions.get(finding.line) if ctx else None
        if (
            suppression is not None
            and finding.code in suppression.codes
            and finding.code not in UNSUPPRESSIBLE
        ):
            suppression.used.add(finding.code)
            continue
        kept.append(finding)
    for ctx in contexts:
        for suppression in ctx.suppressions.values():
            for token_text in suppression.unknown:
                kept.append(
                    LintFinding(
                        code="RC007",
                        message=(
                            f"unknown code {token_text!r} in suppression "
                            "comment (known codes: RC001..RC009)"
                        ),
                        path=ctx.path,
                        line=suppression.line,
                    )
                )
            for code in suppression.codes:
                if code not in suppression.used:
                    kept.append(
                        LintFinding(
                            code="RC008",
                            message=(
                                f"suppression for {code} matched no finding "
                                "on this line — remove it"
                            ),
                            path=ctx.path,
                            line=suppression.line,
                        )
                    )
    kept.sort(key=lambda f: (f.path, f.line, f.code))
    return LintReport(findings=tuple(kept), files_scanned=len(contexts))


def lint_paths(paths: Sequence[Union[str, Path]]) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    contexts: List[_FileContext] = []
    for path in _collect_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintUsageError(f"cannot read {path}: {error}") from None
        contexts.append(_FileContext(str(path), text))
    return _lint_contexts(contexts)


def lint_source(text: str, path: str = "<string>") -> LintReport:
    """Lint one in-memory source blob (single-file RC002 scope)."""
    return _lint_contexts([_FileContext(path, text)])
