"""A SQL parser for the dialect ProbKB emits.

The paper presents its grounding algorithm *as SQL* (Figure 3), so the
reproduction should be able to take those statements as text and run
them.  This module parses the SELECT subset that `sqltext.to_sql`
renders — multi-table FROM lists with equi-join WHERE clauses, literal
filters, IS [NOT] NULL, OR groups, NOT EXISTS guards, GROUP BY /
HAVING with aggregates, DISTINCT, UNION ALL — into logical plans for
either engine.  Round-trip property: for every plan p we generate,
``parse_sql(to_sql(p))`` executes to the same result.

Deliberately not a full SQL implementation; unsupported constructs
raise :class:`SqlParseError` with the offending token.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .expr import Col, Compare, Const, Expr, IsNull, Or, conj
from .plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from .types import Value


class SqlParseError(ValueError):
    """Unparseable or unsupported SQL."""


# -- tokenizer -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
      | (?P<op><>|<=|>=|=|<|>)
      | (?P<punct>[(),*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AND",
    "OR", "NOT", "EXISTS", "IS", "NULL", "AS", "UNION", "ALL", "COUNT",
    "MIN", "MAX", "SUM", "LIMIT", "ORDER", "ASC", "DESC", "NULLS", "FIRST",
    "LAST",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}"


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    text = sql.strip().rstrip(";")
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlParseError(f"cannot tokenize at: {text[position:position + 20]!r}")
        position = match.end()
        if match.group("name") is not None:
            word = match.group("name")
            if word.upper() in _KEYWORDS and "." not in word:
                tokens.append(_Token("kw", word.upper()))
            else:
                tokens.append(_Token("name", word))
        elif match.group("string") is not None:
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw))
        elif match.group("number") is not None:
            tokens.append(_Token("number", match.group("number")))
        elif match.group("op") is not None:
            tokens.append(_Token("op", match.group("op")))
        else:
            tokens.append(_Token("punct", match.group("punct")))
    return tokens


# -- parser ---------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # token plumbing ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of statement")
        self.position += 1
        return token

    def accept_kw(self, *keywords: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "kw" and token.text in keywords:
            self.position += 1
            return True
        return False

    def expect_kw(self, keyword: str) -> None:
        if not self.accept_kw(keyword):
            raise SqlParseError(f"expected {keyword} at {self.peek()!r}")

    def expect_punct(self, punct: str) -> None:
        token = self.advance()
        if token.kind != "punct" or token.text != punct:
            raise SqlParseError(f"expected {punct!r} at {token!r}")

    def at_punct(self, punct: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "punct" and token.text == punct

    # grammar ------------------------------------------------------------------

    def parse_statement(self) -> "_SelectSpec":
        spec = self.parse_select()
        while self.accept_kw("UNION"):
            self.expect_kw("ALL")
            spec.union_with.append(self.parse_select())
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            spec.order_by = self._parse_order_list()
        if self.accept_kw("LIMIT"):
            spec.limit = int(self.advance().text)
        if self.peek() is not None:
            raise SqlParseError(f"trailing tokens at {self.peek()!r}")
        return spec

    def _parse_order_list(self) -> List[Tuple[str, bool]]:
        keys = [self._parse_order_key()]
        while self.at_punct(","):
            self.advance()
            keys.append(self._parse_order_key())
        return keys

    def _parse_order_key(self) -> Tuple[str, bool]:
        name = self.advance().text
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        if self.accept_kw("NULLS"):
            # the engine pins NULLS FIRST in both directions; accept the
            # dialect we emit, reject orderings we cannot honour
            if not self.accept_kw("FIRST"):
                self.expect_kw("LAST")
                raise SqlParseError(
                    "NULLS LAST is not supported (the engine sorts "
                    "NULLs first in both directions)"
                )
        return (name, descending)

    def parse_select(self) -> "_SelectSpec":
        self.expect_kw("SELECT")
        spec = _SelectSpec()
        spec.distinct = self.accept_kw("DISTINCT")
        spec.select_items = self._parse_select_list()
        self.expect_kw("FROM")
        spec.tables = self._parse_from_list()
        if self.accept_kw("WHERE"):
            spec.where = self._parse_conjunction()
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            spec.group_by = self._parse_name_list()
        if self.accept_kw("HAVING"):
            spec.having = self._parse_predicate()
        return spec

    def _parse_select_list(self) -> List["_SelectItem"]:
        if self.at_punct("*"):
            self.advance()
            return [_SelectItem(star=True)]
        items = [self._parse_select_item()]
        while self.at_punct(","):
            self.advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> "_SelectItem":
        item = _SelectItem(expression=self._parse_scalar())
        if self.accept_kw("AS"):
            item.alias = self.advance().text
        return item

    def _parse_scalar(self) -> Union[Expr, "_AggCall"]:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end in expression")
        if token.kind == "kw" and token.text in ("COUNT", "MIN", "MAX", "SUM"):
            return self._parse_aggregate()
        if token.kind == "kw" and token.text == "NULL":
            self.advance()
            return Const(None)
        if token.kind == "string":
            self.advance()
            return Const(token.text)
        if token.kind == "number":
            self.advance()
            return Const(_number(token.text))
        if token.kind == "name":
            self.advance()
            return Col(token.text)
        raise SqlParseError(f"unexpected token in expression: {token!r}")

    def _parse_aggregate(self) -> "_AggCall":
        func = self.advance().text  # COUNT/MIN/MAX/SUM
        self.expect_punct("(")
        distinct = self.accept_kw("DISTINCT")
        if self.at_punct("*"):
            self.advance()
            column = None
        else:
            column = self.advance().text
        self.expect_punct(")")
        if func == "COUNT":
            name = "count_distinct" if distinct else "count"
        else:
            if distinct:
                raise SqlParseError(f"DISTINCT unsupported for {func}")
            name = func.lower()
        return _AggCall(name, column)

    def _parse_from_list(self) -> List[Tuple[str, str]]:
        tables = [self._parse_table_ref()]
        while self.at_punct(","):
            self.advance()
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> Tuple[str, str]:
        table = self.advance()
        if table.kind != "name":
            raise SqlParseError(f"expected table name at {table!r}")
        alias = table.text
        nxt = self.peek()
        if nxt is not None and nxt.kind == "name":
            alias = self.advance().text
        return table.text, alias

    def _parse_name_list(self) -> List[str]:
        names = [self.advance().text]
        while self.at_punct(","):
            self.advance()
            names.append(self.advance().text)
        return names

    def _parse_conjunction(self) -> List["_Predicate"]:
        predicates = [self._parse_predicate()]
        while self.accept_kw("AND"):
            predicates.append(self._parse_predicate())
        return predicates

    def _parse_predicate(self) -> "_Predicate":
        if self.accept_kw("NOT"):
            self.expect_kw("EXISTS")
            return self._parse_not_exists()
        if self.at_punct("("):
            return self._parse_or_group()
        left = self._parse_scalar()
        token = self.peek()
        if token is not None and token.kind == "kw" and token.text == "IS":
            self.advance()
            negated = self.accept_kw("NOT")
            self.expect_kw("NULL")
            if not isinstance(left, Expr):
                raise SqlParseError("IS NULL requires a scalar expression")
            return _Predicate(expr=IsNull(left, negated=negated))
        op_token = self.advance()
        if op_token.kind != "op":
            raise SqlParseError(f"expected comparison at {op_token!r}")
        right = self._parse_scalar()
        # aggregate calls only become expressions in HAVING rewriting
        expr = None
        if isinstance(left, Expr) and isinstance(right, Expr):
            expr = Compare(op_token.text, left, right)
        return _Predicate(expr=expr, raw=(left, op_token.text, right))

    def _parse_or_group(self) -> "_Predicate":
        self.expect_punct("(")
        branches = [self._parse_predicate()]
        while self.accept_kw("OR"):
            branches.append(self._parse_predicate())
        self.expect_punct(")")
        if len(branches) == 1:
            return branches[0]
        return _Predicate(expr=Or(*[b.to_expr() for b in branches]))

    def _parse_not_exists(self) -> "_Predicate":
        self.expect_punct("(")
        self.expect_kw("SELECT")
        self.advance()  # the constant 1 (or any scalar)
        self.expect_kw("FROM")
        table, alias = self._parse_table_ref()
        self.expect_kw("WHERE")
        conditions = self._parse_conjunction()
        self.expect_punct(")")
        return _Predicate(anti=(_AntiSpec(table, alias, conditions)))


class _AggCall:
    __slots__ = ("func", "column")

    def __init__(self, func: str, column: Optional[str]) -> None:
        self.func = func
        self.column = column


class _SelectItem:
    __slots__ = ("expression", "alias", "star")

    def __init__(
        self,
        expression: Optional[Union[Expr, "_AggCall"]] = None,
        alias: Optional[str] = None,
        star: bool = False,
    ) -> None:
        self.expression = expression
        self.alias = alias
        self.star = star


class _AntiSpec:
    __slots__ = ("table", "alias", "conditions")

    def __init__(
        self,
        table: str,
        alias: str,
        conditions: List[Tuple[Any, str, Any]],
    ) -> None:
        self.table = table
        self.alias = alias
        self.conditions = conditions


class _Predicate:
    """One WHERE conjunct: a plain expression, a raw comparison (kept
    for join-condition extraction), or a NOT EXISTS spec."""

    __slots__ = ("expr", "raw", "anti")

    def __init__(
        self,
        expr: Optional[Expr] = None,
        raw: Optional[Tuple[Any, str, Any]] = None,
        anti: Optional[_AntiSpec] = None,
    ) -> None:
        self.expr = expr
        self.raw = raw
        self.anti = anti

    def to_expr(self) -> Expr:
        if self.expr is None:
            raise SqlParseError("NOT EXISTS not allowed inside OR")
        return self.expr

    def is_column_equality(self) -> bool:
        return (
            self.raw is not None
            and self.raw[1] == "="
            and isinstance(self.raw[0], Col)
            and isinstance(self.raw[2], Col)
        )


class _SelectSpec:
    def __init__(self) -> None:
        self.distinct = False
        self.select_items: List[_SelectItem] = []
        self.tables: List[Tuple[str, str]] = []
        self.where: List[_Predicate] = []
        self.group_by: List[str] = []
        self.having: Optional[_Predicate] = None
        self.union_with: List["_SelectSpec"] = []
        self.order_by: List[Tuple[str, bool]] = []
        self.limit: Optional[int] = None


# -- plan construction ---------------------------------------------------------------


def parse_sql(sql: str) -> PlanNode:
    """Parse a SELECT statement into a logical plan."""
    spec = _Parser(_tokenize(sql)).parse_statement()
    plan = _build_select(spec)
    if spec.union_with:
        plans = [plan] + [_build_select(other) for other in spec.union_with]
        plan = UnionAll(plans)
    if spec.order_by:
        plan = Sort(plan, spec.order_by)
    if spec.limit is not None:
        plan = Limit(plan, spec.limit)
    return plan


def _build_select(spec: _SelectSpec) -> PlanNode:
    alias_of: Dict[str, str] = {}
    for table, alias in spec.tables:
        if alias in alias_of:
            raise SqlParseError(f"duplicate alias {alias!r}")
        alias_of[alias] = table

    joins = [p for p in spec.where if p.is_column_equality() and _spans_two_aliases(p, alias_of)]
    antis = [p for p in spec.where if p.anti is not None]
    filters = [p for p in spec.where if p not in joins and p.anti is None]

    plan = _build_join_tree(spec.tables, joins)
    if filters:
        plan = Filter(plan, conj(*[p.to_expr() for p in filters]))
    for predicate in antis:
        plan = _apply_anti(plan, predicate.anti)

    if spec.group_by or _has_aggregates(spec):
        plan = _apply_aggregate(spec, plan)
    else:
        plan = _apply_projection(spec, plan)
    if spec.distinct:
        plan = Distinct(plan)
    return plan


def _spans_two_aliases(predicate: _Predicate, alias_of: Dict[str, str]) -> bool:
    left, _, right = predicate.raw
    left_alias = left.name.split(".")[0] if "." in left.name else None
    right_alias = right.name.split(".")[0] if "." in right.name else None
    return (
        left_alias in alias_of
        and right_alias in alias_of
        and left_alias != right_alias
    )


def _build_join_tree(
    tables: Sequence[Tuple[str, str]], joins: List[_Predicate]
) -> PlanNode:
    """Left-deep join tree in FROM order, attaching every usable
    equality condition when its second side becomes available."""
    remaining = list(joins)
    first_table, first_alias = tables[0]
    plan: PlanNode = Scan(first_table, first_alias)
    joined = {first_alias}
    for table, alias in tables[1:]:
        left_keys: List[str] = []
        right_keys: List[str] = []
        still_remaining = []
        for predicate in remaining:
            left, _, right = predicate.raw
            la, ra = left.name.split(".")[0], right.name.split(".")[0]
            if la in joined and ra == alias:
                left_keys.append(left.name)
                right_keys.append(right.name)
            elif ra in joined and la == alias:
                left_keys.append(right.name)
                right_keys.append(left.name)
            else:
                still_remaining.append(predicate)
        remaining = still_remaining
        if not left_keys:
            raise SqlParseError(
                f"no join condition connects table alias {alias!r} "
                "(cross products unsupported)"
            )
        plan = HashJoin(plan, Scan(table, alias), left_keys, right_keys)
        joined.add(alias)
    if remaining:
        plan = Filter(plan, conj(*[p.to_expr() for p in remaining]))
    return plan


def _apply_anti(plan: PlanNode, anti: _AntiSpec) -> PlanNode:
    left_keys: List[str] = []
    right_keys: List[str] = []
    extra: List[Expr] = []
    for predicate in anti.conditions:
        if predicate.raw is None:
            raise SqlParseError("unsupported predicate inside NOT EXISTS")
        left, op, right = predicate.raw
        if op != "=":
            raise SqlParseError("NOT EXISTS supports equality conditions only")
        left_is_inner = isinstance(left, Col) and left.name.startswith(anti.alias + ".")
        right_is_inner = isinstance(right, Col) and right.name.startswith(anti.alias + ".")
        if left_is_inner and right_is_inner:
            raise SqlParseError("inner-only conditions unsupported in NOT EXISTS")
        if left_is_inner and isinstance(right, Col):
            right_keys.append(left.name)
            left_keys.append(right.name)
        elif right_is_inner and isinstance(left, Col):
            right_keys.append(right.name)
            left_keys.append(left.name)
        elif left_is_inner and isinstance(right, Const):
            extra.append(Compare("=", left, right))
        elif right_is_inner and isinstance(left, Const):
            extra.append(Compare("=", right, left))
        else:
            raise SqlParseError("NOT EXISTS condition must involve the inner table")
    right_plan: PlanNode = Scan(anti.table, anti.alias)
    if extra:
        right_plan = Filter(right_plan, conj(*extra))
    if not left_keys:
        raise SqlParseError("NOT EXISTS needs at least one correlated equality")
    return AntiJoin(plan, right_plan, left_keys, right_keys)


def _has_aggregates(spec: _SelectSpec) -> bool:
    return any(isinstance(item.expression, _AggCall) for item in spec.select_items)


def _apply_aggregate(spec: _SelectSpec, plan: PlanNode) -> PlanNode:
    aggregates: List[Tuple[str, Optional[str], str]] = []
    outputs: List[Tuple[Expr, str]] = []
    counter = 0

    def register(call: _AggCall, alias: Optional[str]) -> str:
        nonlocal counter
        for func, column, name in aggregates:
            if func == call.func and column == call.column:
                return name
        name = alias or f"agg_{counter}"
        counter += 1
        aggregates.append((call.func, call.column, name))
        return name

    for item in spec.select_items:
        if item.star:
            raise SqlParseError("SELECT * with GROUP BY unsupported")
        if isinstance(item.expression, _AggCall):
            name = register(item.expression, item.alias)
            outputs.append((Col(name), item.alias or name))
        else:
            expression = item.expression
            name = item.alias or (
                expression.name if isinstance(expression, Col) else None
            )
            if name is None:
                raise SqlParseError("non-column select item needs AS in GROUP BY")
            outputs.append((expression, name))

    having_expr: Optional[Expr] = None
    if spec.having is not None:
        having_expr = _rewrite_having(spec.having, register)

    aggregate = Aggregate(
        plan, group_by=spec.group_by, aggregates=aggregates, having=having_expr
    )
    return Project(aggregate, outputs)


def _rewrite_having(
    predicate: _Predicate, register: Callable[["_AggCall", Optional[str]], str]
) -> Expr:
    if predicate.raw is None:
        if predicate.expr is not None:
            return predicate.expr
        raise SqlParseError("unsupported HAVING predicate")
    left, op, right = predicate.raw
    return Compare(op, _having_operand(left, register), _having_operand(right, register))


def _having_operand(
    operand: Any, register: Callable[["_AggCall", Optional[str]], str]
) -> Expr:
    if isinstance(operand, _AggCall):
        return Col(register(operand, None))
    return _as_expr(operand)


def _apply_projection(spec: _SelectSpec, plan: PlanNode) -> PlanNode:
    if len(spec.select_items) == 1 and spec.select_items[0].star:
        return plan
    outputs: List[Tuple[Expr, str]] = []
    for item in spec.select_items:
        if item.star:
            raise SqlParseError("mixing * with other select items is unsupported")
        expression = item.expression
        if isinstance(expression, _AggCall):
            raise SqlParseError("aggregate without GROUP BY context")
        name = item.alias or (
            expression.name if isinstance(expression, Col) else f"col_{len(outputs)}"
        )
        outputs.append((expression, name))
    return Project(plan, outputs)


def _as_expr(value: Any) -> Expr:
    if isinstance(value, Expr):
        return value
    raise SqlParseError(f"expected scalar expression, got {value!r}")


def _number(text: str) -> Value:
    return float(text) if "." in text else int(text)
