"""In-memory table storage with optional unique-key deduplication and
hash indexes.

A :class:`Table` stores rows as tuples.  When the schema declares a
``unique_key``, inserts use set semantics on that key: a row whose key
already exists is dropped.  This is how ProbKB's fact table avoids
re-deriving known facts across grounding iterations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .schema import TableSchema
from .types import ExecutionError, Row, Value, ensure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columnar import ColumnBatch


class Table:
    """An in-memory relation."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: List[Row] = []
        self._key_positions: Optional[Tuple[int, ...]] = None
        self._key_set: Optional[Set[Row]] = None
        if schema.unique_key is not None:
            self._key_positions = schema.positions(schema.unique_key)
            self._key_set = set()
        # lazily built hash indexes: column positions -> key -> row ids
        self._indexes: Dict[Tuple[int, ...], Dict[Row, List[int]]] = {}
        # lazily built columnar view of the rows (see column_batch)
        self._batch: Optional["ColumnBatch"] = None

    # -- basic properties ------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def _key_of(self, row: Row) -> Row:
        assert self._key_positions is not None
        return tuple(row[pos] for pos in self._key_positions)

    # -- mutation ----------------------------------------------------------

    def insert(self, rows: Iterable[Row], validate: bool = True) -> int:
        """Insert rows; returns the number actually stored.

        With a unique key, duplicate-keyed rows are dropped (first writer
        wins), including duplicates within ``rows`` itself.

        The insert is atomic under validation failure: the whole batch
        is validated before any row is stored, so a bad row midway
        through ``rows`` leaves the table untouched.
        """
        staged = [tuple(row) for row in rows]
        if validate:
            for row in staged:
                self.schema.validate_row(row)
        inserted = 0
        append = self.rows.append
        if self._key_set is None:
            for row in staged:
                append(row)
            inserted = len(staged)
        else:
            key_set = self._key_set
            for row in staged:
                key = self._key_of(row)
                if key in key_set:
                    continue
                key_set.add(key)
                append(row)
                inserted += 1
        if inserted:
            self._invalidate_derived()
        return inserted

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching ``predicate``; returns the number removed."""
        kept = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(kept)
        if removed:
            self.rows = kept
            self._rebuild_key_set()
            self._invalidate_derived()
        return removed

    def delete_in(self, column_names: Sequence[str], keys: Set[Row]) -> int:
        """Delete rows whose projection on ``column_names`` is in ``keys``.

        This implements ``DELETE FROM t WHERE (c1, ..., cn) IN (...)`` —
        the shape of ProbKB's constraint-application Query 3.
        """
        positions = self.schema.positions(column_names)
        return self.delete_where(
            lambda row: tuple(row[pos] for pos in positions) in keys
        )

    def truncate(self) -> None:
        self.rows = []
        if self._key_set is not None:
            self._key_set = set()
        self._invalidate_derived()

    def _invalidate_derived(self) -> None:
        """Drop caches derived from the rows (hash indexes, batch)."""
        self._indexes.clear()
        self._batch = None

    def _rebuild_key_set(self) -> None:
        if self._key_positions is None:
            return
        self._key_set = {self._key_of(row) for row in self.rows}
        if len(self._key_set) != len(self.rows):
            raise ExecutionError(
                f"unique key violated in table {self.name!r} after delete"
            )

    # -- lookup ------------------------------------------------------------

    def contains_key(self, key: Row) -> bool:
        """True if a row with this unique key exists (requires unique key)."""
        ensure(
            self._key_set is not None,
            ExecutionError,
            f"table {self.name!r} has no unique key",
        )
        return key in self._key_set  # type: ignore[operator]

    def index_on(self, column_names: Sequence[str]) -> Dict[Row, List[int]]:
        """Return (building if necessary) a hash index on the given columns.

        Maps each key tuple to the list of row ids having that key.
        Indexes are invalidated by any mutation.
        """
        positions = self.schema.positions(column_names)
        index = self._indexes.get(positions)
        if index is None:
            index = defaultdict(list)
            for row_id, row in enumerate(self.rows):
                index[tuple(row[pos] for pos in positions)].append(row_id)
            index = dict(index)
            self._indexes[positions] = index
        return index

    def column_batch(self) -> "ColumnBatch":
        """The rows in columnar form, cached until the next mutation.

        The batch (and its column lists) must be treated as immutable —
        the columnar executor shares the lists between scans instead of
        copying the table per statement.
        """
        if self._batch is None:
            from .columnar import ColumnBatch

            self._batch = ColumnBatch.from_rows(
                self.schema.column_names, self.rows
            )
        return self._batch

    def project(self, column_names: Sequence[str]) -> List[Row]:
        positions = self.schema.positions(column_names)
        return [tuple(row[pos] for pos in positions) for row in self.rows]

    def column(self, column_name: str) -> List[Value]:
        pos = self.schema.position(column_name)
        return [row[pos] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name}, {len(self.rows)} rows)"
