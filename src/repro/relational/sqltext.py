"""Render logical plans to SQL text.

ProbKB's contribution is a *SQL-based* grounding algorithm, so the
reproduction must be able to show — and validate — the actual SQL.  This
module renders the SPJA (select/project/join/aggregate) plans produced by
``repro.core.sqlgen`` into PostgreSQL-compatible SQL strings.  The same
strings run unmodified under stdlib sqlite3, which the conformance tests
use to cross-check our executor's results against a real RDBMS.

Only the plan shapes ProbKB emits are supported; arbitrary plans may be
rejected with :class:`~repro.relational.types.PlanError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .expr import And, Col, Compare, Expr, IsNull, Not, Or
from .plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
)
from .types import PlanError, ensure, sql_literal


def to_sql(plan: PlanNode) -> str:
    """Render a plan as a SQL SELECT statement."""
    return _render(plan)


def _render(plan: PlanNode) -> str:
    if isinstance(plan, UnionAll):
        parts = [_render(child) for child in plan.children]
        return "\nUNION ALL\n".join(parts)
    if isinstance(plan, Limit):
        return _render(plan.child) + f"\nLIMIT {plan.limit}"
    if isinstance(plan, Sort):
        # NULLs sort first in both directions in our engine; sqlite's
        # default for DESC is NULLS LAST, so pin it explicitly.
        keys = ", ".join(
            f"{name} DESC NULLS FIRST" if desc else name
            for name, desc in plan.keys
        )
        return _render(plan.child) + f"\nORDER BY {keys}"
    select = _Select()
    select.absorb(plan)
    return select.render()


class _Select:
    """Accumulates one SELECT block from a plan subtree."""

    def __init__(self) -> None:
        self.outputs: Optional[List[Tuple[str, str]]] = None  # (sql, name)
        self.distinct = False
        self.from_items: List[str] = []  # "table alias"
        self.join_conditions: List[str] = []
        self.filters: List[str] = []
        self.group_by: List[str] = []
        self.aggregates: List[Tuple[str, Optional[str], str]] = []
        self.having_expr: Optional[Expr] = None

    # -- absorption of plan nodes ------------------------------------------

    def absorb(self, plan: PlanNode) -> None:
        if isinstance(plan, Project):
            ensure(self.outputs is None, PlanError, "nested projections unsupported")
            self.outputs = [(expr.to_sql(), name) for expr, name in plan.outputs]
            self.absorb(plan.child)
        elif isinstance(plan, Distinct):
            self.distinct = True
            self.absorb(plan.child)
        elif isinstance(plan, Aggregate):
            ensure(not self.aggregates, PlanError, "nested aggregates unsupported")
            self.group_by = list(plan.group_by)
            self.aggregates = list(plan.aggregates)
            self.having_expr = plan.having
            self.absorb(plan.child)
        elif isinstance(plan, Filter):
            self.filters.append(plan.predicate.to_sql())
            self.absorb(plan.child)
        elif isinstance(plan, HashJoin):
            self.absorb(plan.left)
            self.absorb(plan.right)
            for left_key, right_key in zip(plan.left_keys, plan.right_keys):
                self.join_conditions.append(f"{left_key} = {right_key}")
            if plan.residual is not None:
                self.join_conditions.append(plan.residual.to_sql())
        elif isinstance(plan, AntiJoin):
            self.absorb(plan.left)
            self.filters.append(_not_exists_sql(plan))
        elif isinstance(plan, Scan):
            if plan.alias != plan.table_name:
                self.from_items.append(f"{plan.table_name} {plan.alias}")
            else:
                self.from_items.append(plan.table_name)
        elif isinstance(plan, Values):
            rows_sql = ", ".join(
                "(" + ", ".join(sql_literal(v) for v in row) + ")"
                for row in plan.rows
            )
            cols = ", ".join(c.split(".")[-1] for c in plan.output_columns)
            self.from_items.append(f"(VALUES {rows_sql}) AS v({cols})")
        else:
            raise PlanError(f"cannot render {type(plan).__name__} to SQL")

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        select_list = self._select_list()
        ensure(bool(self.from_items), PlanError, "SELECT without FROM")
        sql = ["SELECT " + ("DISTINCT " if self.distinct else "") + select_list]
        sql.append("FROM " + ", ".join(self.from_items))
        where = self.join_conditions + self.filters
        if where:
            sql.append("WHERE " + "\n  AND ".join(where))
        if self.group_by or self.aggregates:
            if self.group_by:
                sql.append("GROUP BY " + ", ".join(self.group_by))
        if self.having_expr is not None:
            # HAVING must use the aggregate expressions themselves;
            # the plan's predicate references their output aliases
            rewritten = _inline_aggregates(self.having_expr, self._agg_aliases())
            sql.append("HAVING " + rewritten.to_sql())
        return "\n".join(sql)

    def _agg_aliases(self) -> dict:
        return {
            name: _agg_sql(func, column)
            for func, column, name in self.aggregates
        }

    def _select_list(self) -> str:
        if self.outputs is not None:
            # a projection above the aggregate narrows the select list
            aliases = self._agg_aliases()
            return ", ".join(
                aliases.get(sql, sql) if sql == name
                else f"{aliases.get(sql, sql)} AS {_unqualify(name)}"
                for sql, name in self.outputs
            )
        if self.aggregates:
            items = list(self.group_by)
            for func, column, name in self.aggregates:
                items.append(f"{_agg_sql(func, column)} AS {name}")
            return ", ".join(items)
        return "*"


def _agg_sql(func: str, column: Optional[str]) -> str:
    if func == "count":
        return f"COUNT({column})" if column else "COUNT(*)"
    if func == "count_distinct":
        ensure(column is not None, PlanError, "COUNT(DISTINCT) needs a column")
        return f"COUNT(DISTINCT {column})"
    ensure(column is not None, PlanError, f"{func} needs a column")
    return f"{func.upper()}({column})"


def _unqualify(name: str) -> str:
    """Output names must be bare identifiers in SQL AS clauses."""
    return name.split(".")[-1]


class _Raw(Expr):
    """A pre-rendered SQL fragment (used when inlining aggregates)."""

    def __init__(self, text: str) -> None:
        self.text = text

    def to_sql(self) -> str:
        return self.text

    def referenced_columns(self) -> List[str]:  # pragma: no cover - render only
        return []


def _inline_aggregates(expr: Expr, aliases: dict) -> Expr:
    """Rewrite an expression, replacing references to aggregate output
    aliases with the aggregate expressions themselves."""
    if isinstance(expr, Col):
        if expr.name in aliases:
            return _Raw(aliases[expr.name])
        return expr
    if isinstance(expr, Compare):
        return Compare(
            expr.op,
            _inline_aggregates(expr.left, aliases),
            _inline_aggregates(expr.right, aliases),
        )
    if isinstance(expr, And):
        return And(*[_inline_aggregates(op, aliases) for op in expr.operands])
    if isinstance(expr, Or):
        return Or(*[_inline_aggregates(op, aliases) for op in expr.operands])
    if isinstance(expr, Not):
        return Not(_inline_aggregates(expr.operand, aliases))
    if isinstance(expr, IsNull):
        return IsNull(_inline_aggregates(expr.operand, aliases), expr.negated)
    return expr


def _not_exists_sql(plan: AntiJoin) -> str:
    """Render an anti-join whose right side is a (filtered) table scan
    as a correlated NOT EXISTS predicate."""
    right = plan.right
    extra = []
    if isinstance(right, Filter):
        extra.append(right.predicate.to_sql())
        right = right.child
    ensure(
        isinstance(right, Scan),
        PlanError,
        "anti-join SQL rendering requires a scan on the right side",
    )
    alias = f"anti_{right.alias}"
    conditions = [
        f"{alias}.{_unqualify(rk)} = {lk}"
        for lk, rk in zip(plan.left_keys, plan.right_keys)
    ] + [cond.replace(f"{right.alias}.", f"{alias}.") for cond in extra]
    return (
        f"NOT EXISTS (SELECT 1 FROM {right.table_name} {alias} "
        f"WHERE {' AND '.join(conditions)})"
    )
