"""Value and row types shared by the relational engine.

The engine stores rows as plain Python tuples.  Column values are limited
to the small set of scalar types the ProbKB relational model needs:
integers (identifiers, dictionary-encoded symbols), floats (weights),
strings (symbolic debugging tables), and NULL (``None``).
"""

from __future__ import annotations

from typing import Tuple, Union

Value = Union[int, float, str, None]
Row = Tuple[Value, ...]

#: Type tags accepted by :class:`repro.relational.schema.Column`.
INT = "int"
FLOAT = "float"
TEXT = "text"

_PYTHON_TYPES = {
    INT: (int,),
    # bool is excluded from int on purpose; weights may be ints too.
    FLOAT: (int, float),
    TEXT: (str,),
}

VALID_TYPES = frozenset(_PYTHON_TYPES)


def check_value(value: Value, type_tag: str) -> bool:
    """Return True if ``value`` is acceptable for a column of ``type_tag``.

    NULL (``None``) is always acceptable; nullability constraints are the
    caller's concern.
    """
    if value is None:
        return True
    if isinstance(value, bool):
        return False
    return isinstance(value, _PYTHON_TYPES[type_tag])


def sql_literal(value: Value) -> str:
    """Render a value as a SQL literal (PostgreSQL/SQLite compatible)."""
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


class RelationalError(Exception):
    """Base class for all errors raised by the relational engine."""


class SchemaError(RelationalError):
    """Schema definition or column resolution failure."""


class ExecutionError(RelationalError):
    """Runtime failure while executing a plan."""


class PlanError(RelationalError):
    """Structurally invalid logical plan."""


def ensure(condition: bool, exc: type, message: str) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)
