"""Single-node, set-oriented plan executor.

Materializing, hash-join based executor.  All work is charged to the
database's :class:`~repro.relational.cost.CostClock`; see that module for
why cost-model time (rather than raw wall-clock) drives the benchmark
comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .cost import CostClock
from .expr import resolve_column
from .plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    walk,
)
from .types import ExecutionError, Row, Value


class Result:
    """A materialized query result."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: List[str], rows: List[Row]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def sorted_rows(self) -> List[Row]:
        """Rows in a canonical order (NULLs first), for comparisons."""
        return sorted(self.rows, key=_null_safe_key)

    def column(self, name: str) -> List[Value]:
        pos = resolve_column(name, self.columns)
        return [row[pos] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Result({self.columns}, {len(self.rows)} rows)"


def _null_safe_key(row: Row) -> Tuple:
    return tuple((value is not None, value) for value in row)


class Executor:
    """Evaluates logical plans against a table catalog (row-at-a-time).

    The vectorized twin lives in
    :mod:`repro.relational.columnar_exec`; both produce bit-identical
    results and clock charges, and :func:`~repro.relational.columnar_exec.make_executor`
    selects between them.
    """

    engine_name = "rows"

    def __init__(self, tables: Mapping[str, object], clock: CostClock) -> None:
        # ``tables``: mapping name -> Table; kept duck-typed so the MPP
        # segment executor can reuse this class with its own catalogs.
        self._tables = tables
        self._clock = clock

    # -- public API --------------------------------------------------------

    def bind(self, plan: PlanNode) -> None:
        """Resolve every Scan against the catalog (fills output columns)."""
        for node in walk(plan):
            if isinstance(node, Scan):
                table = self._tables.get(node.table_name)
                if table is None:
                    raise ExecutionError(f"unknown table {node.table_name!r}")
                node.set_table_columns(table.schema.column_names)

    def run(self, plan: PlanNode) -> Result:
        self.bind(plan)
        columns, rows = self._eval(plan)
        return Result(columns, rows)

    # -- evaluation --------------------------------------------------------

    def _eval(self, plan: PlanNode) -> Tuple[List[str], List[Row]]:
        if isinstance(plan, Scan):
            return self._eval_scan(plan)
        if isinstance(plan, Values):
            return plan.output_columns, list(plan.rows)
        if isinstance(plan, Filter):
            return self._eval_filter(plan)
        if isinstance(plan, Project):
            return self._eval_project(plan)
        if isinstance(plan, HashJoin):
            return self._eval_join(plan)
        if isinstance(plan, AntiJoin):
            return self._eval_anti_join(plan)
        if isinstance(plan, Distinct):
            return self._eval_distinct(plan)
        if isinstance(plan, Aggregate):
            return self._eval_aggregate(plan)
        if isinstance(plan, UnionAll):
            return self._eval_union(plan)
        if isinstance(plan, Sort):
            return self._eval_sort(plan)
        if isinstance(plan, Limit):
            if plan.limit < 0:
                # a negative limit would silently slice from the end
                raise ExecutionError(
                    f"Limit must be non-negative, got {plan.limit}"
                )
            columns, rows = self._eval(plan.child)
            return columns, rows[: plan.limit]
        raise ExecutionError(f"unsupported plan node {type(plan).__name__}")

    def _eval_scan(self, plan: Scan) -> Tuple[List[str], List[Row]]:
        table = self._tables[plan.table_name]
        self._clock.rows_scanned += len(table)
        return plan.output_columns, list(table.rows)

    def _eval_filter(self, plan: Filter) -> Tuple[List[str], List[Row]]:
        columns, rows = self._eval(plan.child)
        predicate = plan.predicate.bind(columns)
        kept = [row for row in rows if predicate(row)]
        self._clock.rows_probed += len(rows)
        self._clock.rows_output += len(kept)
        return columns, kept

    def _eval_project(self, plan: Project) -> Tuple[List[str], List[Row]]:
        columns, rows = self._eval(plan.child)
        evaluators = [expr.bind(columns) for expr, _ in plan.outputs]
        out_columns = plan.output_columns
        out_rows = [tuple(fn(row) for fn in evaluators) for row in rows]
        self._clock.rows_output += len(out_rows)
        return out_columns, out_rows

    def _eval_join(self, plan: HashJoin) -> Tuple[List[str], List[Row]]:
        left_columns, left_rows = self._eval(plan.left)
        right_columns, right_rows = self._eval(plan.right)
        out_columns = left_columns + right_columns

        # Build on the smaller side.
        build_left = len(left_rows) <= len(right_rows)
        if build_left:
            build_cols, build_rows = left_columns, left_rows
            probe_cols, probe_rows = right_columns, right_rows
            build_keys, probe_keys = plan.left_keys, plan.right_keys
        else:
            build_cols, build_rows = right_columns, right_rows
            probe_cols, probe_rows = left_columns, left_rows
            build_keys, probe_keys = plan.right_keys, plan.left_keys

        build_pos = [resolve_column(k, build_cols) for k in build_keys]
        probe_pos = [resolve_column(k, probe_cols) for k in probe_keys]

        hash_table: Dict[Tuple, List[Row]] = defaultdict(list)
        for row in build_rows:
            key = tuple(row[pos] for pos in build_pos)
            if None in key:
                continue  # SQL semantics: NULL keys never join
            hash_table[key].append(row)
        self._clock.rows_built += len(build_rows)

        out_rows: List[Row] = []
        append = out_rows.append
        for row in probe_rows:
            key = tuple(row[pos] for pos in probe_pos)
            matches = hash_table.get(key)
            if not matches:
                continue
            for match in matches:
                if build_left:
                    append(match + row)
                else:
                    append(row + match)
        self._clock.rows_probed += len(probe_rows)
        self._clock.rows_output += len(out_rows)

        if plan.residual is not None:
            predicate = plan.residual.bind(out_columns)
            out_rows = [row for row in out_rows if predicate(row)]
        return out_columns, out_rows

    def _eval_anti_join(self, plan: AntiJoin) -> Tuple[List[str], List[Row]]:
        left_columns, left_rows = self._eval(plan.left)
        right_columns, right_rows = self._eval(plan.right)
        right_pos = [resolve_column(k, right_columns) for k in plan.right_keys]
        existing = {
            tuple(row[pos] for pos in right_pos) for row in right_rows
        }
        self._clock.rows_built += len(right_rows)
        left_pos = [resolve_column(k, left_columns) for k in plan.left_keys]
        out_rows = [
            row
            for row in left_rows
            if tuple(row[pos] for pos in left_pos) not in existing
        ]
        self._clock.rows_probed += len(left_rows)
        self._clock.rows_output += len(out_rows)
        return left_columns, out_rows

    def _eval_distinct(self, plan: Distinct) -> Tuple[List[str], List[Row]]:
        columns, rows = self._eval(plan.child)
        seen = set()
        out_rows = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out_rows.append(row)
        self._clock.rows_probed += len(rows)
        self._clock.rows_output += len(out_rows)
        return columns, out_rows

    def _eval_aggregate(self, plan: Aggregate) -> Tuple[List[str], List[Row]]:
        columns, rows = self._eval(plan.child)
        group_pos = [resolve_column(c, columns) for c in plan.group_by]
        agg_pos: List[Optional[int]] = [
            resolve_column(c, columns) if c is not None else None
            for _, c, _ in plan.aggregates
        ]

        groups: Dict[Tuple, List[Row]] = defaultdict(list)
        for row in rows:
            groups[tuple(row[pos] for pos in group_pos)].append(row)
        if not plan.group_by and not groups:
            groups[()] = []  # global aggregate over empty input

        out_columns = plan.output_columns
        out_rows: List[Row] = []
        for key, members in groups.items():
            aggregated: List[Value] = []
            for (func, _, _), pos in zip(plan.aggregates, agg_pos):
                aggregated.append(_aggregate(func, pos, members))
            out_rows.append(key + tuple(aggregated))
        self._clock.rows_probed += len(rows)
        self._clock.rows_output += len(out_rows)

        if plan.having is not None:
            predicate = plan.having.bind(out_columns)
            out_rows = [row for row in out_rows if predicate(row)]
        return out_columns, out_rows

    def _eval_sort(self, plan: Sort) -> Tuple[List[str], List[Row]]:
        columns, rows = self._eval(plan.child)
        positions = [
            (resolve_column(name, columns), descending)
            for name, descending in plan.keys
        ]
        # stable multi-key sort: apply keys right-to-left.  NULLs sort
        # first in BOTH directions (the descending key flips the NULL
        # test so the reverse pass cannot push NULLs to the end).
        ordered = list(rows)
        for pos, descending in reversed(positions):
            if descending:
                ordered.sort(
                    key=lambda row: (row[pos] is None, row[pos]),
                    reverse=True,
                )
            else:
                ordered.sort(
                    key=lambda row: (row[pos] is not None, row[pos]),
                )
        self._clock.rows_probed += len(ordered)
        self._clock.rows_output += len(ordered)
        return columns, ordered

    def _eval_union(self, plan: UnionAll) -> Tuple[List[str], List[Row]]:
        out_columns = plan.output_columns
        out_rows: List[Row] = []
        for child in plan.children:
            _, rows = self._eval(child)
            out_rows.extend(rows)
        self._clock.rows_output += len(out_rows)
        return out_columns, out_rows


def _aggregate(func: str, pos: Optional[int], members: Sequence[Row]) -> Value:
    if func == "count":
        if pos is None:
            return len(members)
        return sum(1 for row in members if row[pos] is not None)
    if pos is None:
        raise ExecutionError(f"aggregate {func!r} requires a column")
    values = [row[pos] for row in members if row[pos] is not None]
    if func == "count_distinct":
        return len(set(values))
    if not values:
        return None
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "sum":
        return sum(values)
    raise ExecutionError(f"unknown aggregate {func!r}")
