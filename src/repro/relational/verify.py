"""PlanCheck: static verifier for logical query plans.

The grounding engine is "just SQL" pushed through a relational
executor; bag/set mix-ups or mis-bound columns there produce plausible
but wrong factor tables, not crashes.  This module is the machine-checked
definition of what a *well-formed* logical plan is: output columns are
derivable bottom-up, every expression binds only to in-scope columns,
join keys agree in arity and (when schemas are known) in type, and the
bag/set discipline around ``Distinct``/``UnionAll``/``Sort``/``Limit``
holds.  Findings carry stable ``PKB201``-``PKB208`` codes; the physical
(MPP) layer adds ``PKB209``-``PKB212`` in :mod:`repro.mpp.verify`.

The verifier is deliberately pure: it never binds scans, touches
clocks, or mutates the plan, so running it cannot change what a plan
computes — grounding results are bit-identical with the
``PROBKB_VERIFY_PLANS`` gate on or off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .expr import Col, Const, Expr, resolve_column
from .plan import (
    AGG_FUNCS,
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
)
from .types import ExecutionError, PlanError

__all__ = [
    "LOGICAL_CODES",
    "PlanFinding",
    "PlanVerificationError",
    "VerificationReport",
    "verify_plan",
    "verify_plans_enabled",
]

ERROR = "error"
WARNING = "warning"

#: code -> (default severity, one-line title).  Codes are append-only:
#: once published a code never changes meaning or disappears.  The
#: physical-plan codes PKB209-PKB212 live in ``repro.mpp.verify``; both
#: tables are folded into ``repro.analyze.findings.CODES``.
LOGICAL_CODES: Dict[str, Tuple[str, str]] = {
    "PKB201": (ERROR, "scan is unbound and its table is unknown to the "
                      "verifier"),
    "PKB202": (ERROR, "duplicate qualified column name in an operator's "
                      "output"),
    "PKB203": (ERROR, "expression or key references a column that is not "
                      "in scope (or is ambiguous)"),
    "PKB204": (ERROR, "join/anti-join key lists differ in arity"),
    "PKB205": (ERROR, "join key columns disagree on declared type"),
    "PKB206": (ERROR, "UnionAll children are shape-incompatible "
                      "(arity error; column-name drift warns)"),
    "PKB207": (ERROR, "Aggregate group-key/output inconsistency"),
    "PKB208": (WARNING, "bag/set or ordering discipline violation "
                        "(redundant Distinct, Limit without Sort, "
                        "negative Limit — the last is an error)"),
}

_SEVERITIES = (ERROR, WARNING)

#: values of ``PROBKB_VERIFY_PLANS`` that switch the runtime gate on
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def verify_plans_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the runtime verify gate: explicit override, else env var."""
    if override is not None:
        return bool(override)
    return os.environ.get("PROBKB_VERIFY_PLANS", "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class PlanFinding:
    """One verifier defect at one node of a plan tree.

    ``path`` addresses the node: ``root`` is the tree root and each
    ``.N`` segment descends into the N-th child (0-based), so the right
    input of a join under the root is ``root.1``.
    """

    code: str
    path: str
    message: str
    severity: str = ""
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.severity:
            raise ValueError(f"finding {self.code} needs a severity")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        return f"{self.path}: {self.code} {self.severity} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "message": self.message,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class VerificationReport:
    """Everything one :func:`verify_plan` run found."""

    plan_name: str
    findings: Tuple[PlanFinding, ...] = ()

    @property
    def errors(self) -> List[PlanFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[PlanFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def codes(self) -> List[str]:
        return sorted({f.code for f in self.findings})

    def render(self) -> str:
        lines = [f"verify {self.plan_name}: " + (
            "clean" if not self.findings
            else f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan_name,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def raise_if_errors(self) -> None:
        if not self.ok:
            raise PlanVerificationError(self)


class PlanVerificationError(PlanError, ExecutionError):
    """A plan failed verification with error-severity findings.

    Also an :class:`ExecutionError`: a plan the verifier rejects is a
    plan the executor would reject, so ``except ExecutionError``
    handlers behave identically with the runtime gate on or off —
    the gate only moves the failure before execution."""

    def __init__(self, report: VerificationReport) -> None:
        self.report = report
        super().__init__(report.render())


class _Scope:
    """Derived output shape of one plan node.

    ``columns`` is None when the node's shape could not be derived (a
    finding was already emitted); checks depending on it are skipped to
    avoid cascading noise.  ``types`` maps a column name to its declared
    type wherever the schema made one derivable — absent means unknown,
    and type checks only fire when both sides are known.
    """

    __slots__ = ("columns", "types")

    def __init__(
        self,
        columns: Optional[List[str]],
        types: Optional[Dict[str, str]] = None,
    ) -> None:
        self.columns = columns
        self.types = types or {}


_UNKNOWN = _Scope(None)

_CONST_TYPES = {int: "int", float: "float", str: "text", bool: "int"}


class _Checker:
    def __init__(self, tables: Optional[Mapping[str, Any]]) -> None:
        self.tables = tables or {}
        self.findings: List[PlanFinding] = []

    # -- plumbing ------------------------------------------------------------

    def emit(
        self,
        code: str,
        path: str,
        message: str,
        severity: str = "",
        **details: Any,
    ) -> None:
        self.findings.append(
            PlanFinding(
                code=code,
                path=path,
                message=message,
                severity=severity or LOGICAL_CODES[code][0],
                details=details,
            )
        )

    def _schema_of(self, table_name: str) -> Optional[Any]:
        entry = self.tables.get(table_name)
        if entry is None:
            return None
        # entry may be a Table (has .schema) or a TableSchema itself
        return getattr(entry, "schema", entry)

    def _check_duplicates(self, columns: Sequence[str], path: str, op: str) -> None:
        seen: Dict[str, int] = {}
        for name in columns:
            seen[name] = seen.get(name, 0) + 1
        duplicates = sorted(name for name, count in seen.items() if count > 1)
        if duplicates:
            self.emit(
                "PKB202",
                path,
                f"{op}: duplicate output columns [{', '.join(duplicates)}]",
                operator=op,
                duplicates=duplicates,
            )

    def _resolve(
        self, name: str, scope: _Scope, path: str, op: str, role: str
    ) -> Optional[str]:
        """Resolve ``name`` to its qualified column in ``scope``; emit
        PKB203 and return None on failure."""
        if scope.columns is None:
            return None
        try:
            return scope.columns[resolve_column(name, scope.columns)]
        except PlanError as error:
            self.emit(
                "PKB203",
                path,
                f"{op}: {role} {error}",
                operator=op,
                column=name,
                scope=list(scope.columns),
            )
            return None

    def _resolve_expr(self, expr: Expr, scope: _Scope, path: str, op: str) -> None:
        for name in expr.referenced_columns():
            self._resolve(name, scope, path, op, "expression")

    # -- dispatch ------------------------------------------------------------

    def check(self, node: PlanNode, path: str) -> _Scope:
        if isinstance(node, Scan):
            return self._check_scan(node, path)
        if isinstance(node, Values):
            return self._check_values(node, path)
        if isinstance(node, Filter):
            return self._check_filter(node, path)
        if isinstance(node, Project):
            return self._check_project(node, path)
        if isinstance(node, HashJoin):
            return self._check_join(node, path, anti=False)
        if isinstance(node, AntiJoin):
            return self._check_join(node, path, anti=True)
        if isinstance(node, Distinct):
            return self._check_distinct(node, path)
        if isinstance(node, Aggregate):
            return self._check_aggregate(node, path)
        if isinstance(node, UnionAll):
            return self._check_union(node, path)
        if isinstance(node, Sort):
            return self._check_sort(node, path)
        if isinstance(node, Limit):
            return self._check_limit(node, path)
        # an unknown operator class: treat as opaque pass-through
        scopes = [self.check(child, f"{path}.{i}")
                  for i, child in enumerate(node.children)]
        return scopes[0] if scopes else _UNKNOWN

    # -- leaves --------------------------------------------------------------

    def _check_scan(self, node: Scan, path: str) -> _Scope:
        schema = self._schema_of(node.table_name)
        bound = getattr(node, "_columns", None)
        if bound is not None:
            columns = list(bound)
        elif schema is not None:
            columns = [f"{node.alias}.{c.name}" for c in schema.columns]
        else:
            known = "" if not self.tables else (
                f" (known tables: {', '.join(sorted(self.tables))})"
            )
            self.emit(
                "PKB201",
                path,
                f"Seq Scan on {node.table_name}: scan is not bound and "
                f"{node.table_name!r} is not a known table{known}",
                table=node.table_name,
                alias=node.alias,
            )
            return _UNKNOWN
        types: Dict[str, str] = {}
        if schema is not None:
            for column in schema.columns:
                types[f"{node.alias}.{column.name}"] = column.type
        self._check_duplicates(columns, path, "Seq Scan")
        return _Scope(columns, types)

    def _check_values(self, node: Values, path: str) -> _Scope:
        columns = node.output_columns
        self._check_duplicates(columns, path, "Values")
        types: Dict[str, str] = {}
        if node.rows:
            for index, name in enumerate(columns):
                value = node.rows[0][index]
                inferred = _CONST_TYPES.get(type(value))
                if inferred is not None:
                    types[name] = inferred
        return _Scope(columns, types)

    # -- unary ---------------------------------------------------------------

    def _check_filter(self, node: Filter, path: str) -> _Scope:
        scope = self.check(node.child, f"{path}.0")
        self._resolve_expr(node.predicate, scope, path, "Filter")
        return scope

    def _check_project(self, node: Project, path: str) -> _Scope:
        child = self.check(node.child, f"{path}.0")
        types: Dict[str, str] = {}
        for expr, name in node.outputs:
            self._resolve_expr(expr, child, path, "Project")
            if isinstance(expr, Col) and child.columns is not None:
                try:
                    resolved = child.columns[
                        resolve_column(expr.name, child.columns)
                    ]
                except PlanError:
                    resolved = None
                if resolved is not None and resolved in child.types:
                    types[name] = child.types[resolved]
            elif isinstance(expr, Const):
                inferred = _CONST_TYPES.get(type(expr.value))
                if inferred is not None:
                    types[name] = inferred
        columns = [name for _, name in node.outputs]
        self._check_duplicates(columns, path, "Project")
        return _Scope(columns, types)

    def _check_distinct(self, node: Distinct, path: str) -> _Scope:
        scope = self.check(node.child, f"{path}.0")
        if isinstance(node.child, (Distinct, Aggregate)):
            self.emit(
                "PKB208",
                path,
                f"Distinct over {node.child.__class__.__name__}: the input "
                "is already duplicate-free, the dedup is redundant",
                operator="Distinct",
                child=node.child.__class__.__name__,
            )
        return scope

    def _check_sort(self, node: Sort, path: str) -> _Scope:
        scope = self.check(node.child, f"{path}.0")
        for name, _desc in node.keys:
            self._resolve(name, scope, path, "Sort", "key")
        return scope

    def _check_limit(self, node: Limit, path: str) -> _Scope:
        scope = self.check(node.child, f"{path}.0")
        if node.limit < 0:
            # Python slicing would quietly turn rows[:-n] into "drop the
            # last n rows"; the executor rejects this, and so do we.
            self.emit(
                "PKB208",
                path,
                f"Limit {node.limit}: negative limits are rejected (a "
                "negative Python slice would keep all but the last "
                f"{-node.limit} rows instead of failing)",
                severity=ERROR,
                operator="Limit",
                limit=node.limit,
            )
        if not isinstance(node.child, Sort):
            self.emit(
                "PKB208",
                path,
                f"Limit {node.limit} over "
                f"{node.child.__class__.__name__}: without a Sort child the "
                "kept prefix is an arbitrary subset of the input bag",
                operator="Limit",
                child=node.child.__class__.__name__,
            )
        return scope

    # -- joins ---------------------------------------------------------------

    def _check_join(self, node: PlanNode, path: str, anti: bool) -> _Scope:
        op = "Hash Anti Join" if anti else "Hash Join"
        left = self.check(node.left, f"{path}.0")
        right = self.check(node.right, f"{path}.1")
        left_keys, right_keys = node.left_keys, node.right_keys
        if len(left_keys) != len(right_keys):
            self.emit(
                "PKB204",
                path,
                f"{op}: {len(left_keys)} left keys "
                f"[{', '.join(left_keys)}] vs {len(right_keys)} right keys "
                f"[{', '.join(right_keys)}]",
                operator=op,
                left_keys=list(left_keys),
                right_keys=list(right_keys),
            )
        for lk, rk in zip(left_keys, right_keys):
            lcol = self._resolve(lk, left, path, op, "left key")
            rcol = self._resolve(rk, right, path, op, "right key")
            if lcol is not None and rcol is not None:
                ltype = left.types.get(lcol)
                rtype = right.types.get(rcol)
                if ltype is not None and rtype is not None and ltype != rtype:
                    self.emit(
                        "PKB205",
                        path,
                        f"{op}: key {lcol} is {ltype} but {rcol} is {rtype}",
                        operator=op,
                        left_key=lcol,
                        right_key=rcol,
                        left_type=ltype,
                        right_type=rtype,
                    )
        if anti:
            return left
        residual = getattr(node, "residual", None)
        if left.columns is None or right.columns is None:
            if residual is not None and left.columns is not None:
                self._resolve_expr(residual, left, path, op)
            return _UNKNOWN
        columns = list(left.columns) + list(right.columns)
        self._check_duplicates(columns, path, op)
        types = dict(left.types)
        types.update(right.types)
        combined = _Scope(columns, types)
        if residual is not None:
            self._resolve_expr(residual, combined, path, op)
        return combined

    # -- aggregate -----------------------------------------------------------

    def _check_aggregate(self, node: Aggregate, path: str) -> _Scope:
        child = self.check(node.child, f"{path}.0")
        op = "Aggregate"
        types: Dict[str, str] = {}
        for key in node.group_by:
            resolved = self._resolve(key, child, path, op, "group key")
            if resolved is not None and resolved in child.types:
                types[key] = child.types[resolved]
        names: List[str] = list(node.group_by)
        for func, input_col, name in node.aggregates:
            if func not in AGG_FUNCS:
                self.emit(
                    "PKB207",
                    path,
                    f"{op}: unknown aggregate function {func!r} "
                    f"(supported: {', '.join(sorted(AGG_FUNCS))})",
                    operator=op,
                    function=func,
                )
            resolved = None
            if input_col is not None:
                resolved = self._resolve(input_col, child, path, op, "input")
            if func in ("count", "count_distinct"):
                types[name] = "int"
            elif resolved is not None and resolved in child.types:
                types[name] = child.types[resolved]
            names.append(name)
        seen: Dict[str, int] = {}
        for name in names:
            seen[name] = seen.get(name, 0) + 1
        collisions = sorted(n for n, c in seen.items() if c > 1)
        if collisions:
            self.emit(
                "PKB207",
                path,
                f"{op}: output name collision between group keys and "
                f"aggregates [{', '.join(collisions)}]",
                operator=op,
                duplicates=collisions,
            )
        output = _Scope(names, types)
        if node.having is not None:
            # HAVING binds against the *aggregate output* (group keys and
            # aggregate names), not the child scope
            if output.columns is not None:
                for name in node.having.referenced_columns():
                    try:
                        resolve_column(name, output.columns)
                    except PlanError as error:
                        self.emit(
                            "PKB207",
                            path,
                            f"{op}: having {error} (having binds against "
                            "the aggregate output columns "
                            f"[{', '.join(output.columns)}])",
                            operator=op,
                            column=name,
                            scope=list(output.columns),
                        )
        return output

    # -- union ---------------------------------------------------------------

    def _check_union(self, node: UnionAll, path: str) -> _Scope:
        scopes = [
            self.check(child, f"{path}.{i}")
            for i, child in enumerate(node.children)
        ]
        first = scopes[0]
        if first.columns is None:
            return _UNKNOWN
        for index, scope in enumerate(scopes[1:], start=1):
            if scope.columns is None:
                continue
            if len(scope.columns) != len(first.columns):
                self.emit(
                    "PKB206",
                    path,
                    f"UnionAll: child {index} has {len(scope.columns)} "
                    f"columns [{', '.join(scope.columns)}], expected "
                    f"{len(first.columns)} [{', '.join(first.columns)}]",
                    child=index,
                    expected=list(first.columns),
                    actual=list(scope.columns),
                )
                continue
            drifted = [
                (a, b)
                for a, b in zip(first.columns, scope.columns)
                if _suffix(a) != _suffix(b)
            ]
            if drifted:
                pairs = ", ".join(f"{a} vs {b}" for a, b in drifted)
                self.emit(
                    "PKB206",
                    path,
                    f"UnionAll: child {index} column names drift from "
                    f"child 0 ({pairs}); the union keeps child 0's names",
                    severity=WARNING,
                    child=index,
                    expected=list(first.columns),
                    actual=list(scope.columns),
                )
        return first


def _suffix(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def verify_plan(
    plan: PlanNode,
    tables: Optional[Mapping[str, Any]] = None,
    name: str = "plan",
) -> VerificationReport:
    """Statically verify a logical plan tree.

    ``tables`` optionally maps a table name to its ``Table`` or
    ``TableSchema``; when given, unbound scans resolve against it and
    join keys are type-checked.  Without it the verifier still checks
    everything derivable from the plan alone (bound scans, scoping,
    arity, bag/set discipline).  The plan is never mutated.
    """
    checker = _Checker(tables)
    checker.check(plan, "root")
    return VerificationReport(plan_name=name, findings=tuple(checker.findings))
