"""Scalar expressions used in plan predicates and projections.

Expressions reference columns *by name* against the output schema of the
plan node they are attached to.  Before execution they are bound to
column positions (:meth:`Expr.bind`), producing a fast evaluator closure.

SQL NULL semantics are followed for comparisons: any comparison with NULL
is false (we use two-valued logic with NULL comparisons collapsing to
false, which is what the ProbKB queries rely on).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Sequence

from .types import PlanError, Row, Value, ensure, sql_literal

BoundEvaluator = Callable[[Row], Value]


class Expr:
    """Base expression node."""

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        """Return a row -> value evaluator for the given output columns."""
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        """All column names this expression reads."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render as a SQL expression string."""
        raise NotImplementedError

    # Convenience builders so predicates read naturally in sqlgen code.
    def eq(self, other: "Expr") -> "Compare":
        return Compare("=", self, other)

    def ne(self, other: "Expr") -> "Compare":
        return Compare("<>", self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_sql()})"


class Col(Expr):
    """A reference to an output column by (possibly qualified) name."""

    def __init__(self, name: str) -> None:
        ensure(bool(name), PlanError, "column reference must be non-empty")
        self.name = name

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        pos = resolve_column(self.name, columns)
        return lambda row: row[pos]

    def referenced_columns(self) -> List[str]:
        return [self.name]

    def to_sql(self) -> str:
        return self.name


class Const(Expr):
    """A literal value."""

    def __init__(self, value: Value) -> None:
        self.value = value

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        value = self.value
        return lambda row: value

    def referenced_columns(self) -> List[str]:
        return []

    def to_sql(self) -> str:
        return sql_literal(self.value)


_COMPARE_OPS: Dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Compare(Expr):
    """Binary comparison with SQL NULL semantics (NULL compares false)."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        ensure(op in _COMPARE_OPS, PlanError, f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        lhs = self.left.bind(columns)
        rhs = self.right.bind(columns)
        fn = _COMPARE_OPS[self.op]

        def evaluate(row: Row) -> bool:
            left_value = lhs(row)
            right_value = rhs(row)
            if left_value is None or right_value is None:
                return False
            return fn(left_value, right_value)

        return evaluate

    def referenced_columns(self) -> List[str]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


class IsNull(Expr):
    def __init__(self, operand: Expr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        inner = self.operand.bind(columns)
        if self.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"


class And(Expr):
    def __init__(self, *operands: Expr) -> None:
        ensure(len(operands) >= 1, PlanError, "AND needs at least one operand")
        self.operands = list(operands)

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        bound = [op.bind(columns) for op in self.operands]
        return lambda row: all(fn(row) for fn in bound)

    def referenced_columns(self) -> List[str]:
        return [c for op in self.operands for c in op.referenced_columns()]

    def to_sql(self) -> str:
        return " AND ".join(op.to_sql() for op in self.operands)


class Or(Expr):
    def __init__(self, *operands: Expr) -> None:
        ensure(len(operands) >= 1, PlanError, "OR needs at least one operand")
        self.operands = list(operands)

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        bound = [op.bind(columns) for op in self.operands]
        return lambda row: any(fn(row) for fn in bound)

    def referenced_columns(self) -> List[str]:
        return [c for op in self.operands for c in op.referenced_columns()]

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"


class Not(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def bind(self, columns: Sequence[str]) -> BoundEvaluator:
        inner = self.operand.bind(columns)
        return lambda row: not inner(row)

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


def resolve_column(name: str, columns: Sequence[str]) -> int:
    """Resolve a column reference against an output column list.

    Matching rules (in priority order):
      1. exact match on the full (possibly qualified) name;
      2. unique match on the unqualified suffix — ``x`` matches ``T2.x``
         only if exactly one output column has suffix ``.x``.
    """
    try:
        return list(columns).index(name)
    except ValueError:
        pass
    if "." not in name:
        suffix = "." + name
        matches = [pos for pos, col in enumerate(columns) if col.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise PlanError(f"ambiguous column {name!r} among {list(columns)}")
    raise PlanError(f"cannot resolve column {name!r} among {list(columns)}")


def col(name: str) -> Col:
    return Col(name)


def const(value: Value) -> Const:
    return Const(value)


def eq(left: str, right: str) -> Compare:
    """Equality between two columns — the workhorse of batch-rule joins."""
    return Compare("=", Col(left), Col(right))


def eq_const(column_name: str, value: Value) -> Compare:
    return Compare("=", Col(column_name), Const(value))


def conj(*operands: Expr) -> Expr:
    """AND together operands, collapsing the single-operand case."""
    if len(operands) == 1:
        return operands[0]
    return And(*operands)
