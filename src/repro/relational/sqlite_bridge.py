"""Conformance bridge to stdlib sqlite3.

Loads the contents of a :class:`~repro.relational.database.Database` into
a sqlite3 database and runs SQL text there.  Tests use this to verify
that our executor and the SQL renderer agree with a real RDBMS on the
exact queries ProbKB generates.  By default the mirror lives in memory;
given a ``path`` it persists to disk — the serving layer's sqlite
snapshot export (``repro.serve.snapshot.export_sqlite``) rides on that.
"""

from __future__ import annotations

import sqlite3
from typing import Any, List, Optional

from .database import Database
from .executor import _null_safe_key
from .types import FLOAT, INT, Row, TEXT

_SQLITE_TYPES = {INT: "INTEGER", FLOAT: "REAL", TEXT: "TEXT"}


class SqliteMirror:
    """A sqlite3 copy of a Database's tables (in memory, or on disk)."""

    def __init__(
        self,
        db: Database,
        tables: Optional[List[str]] = None,
        path: Optional[str] = None,
    ) -> None:
        self.path = path
        self.conn = sqlite3.connect(path if path is not None else ":memory:")
        names = tables if tables is not None else list(db.tables)
        for name in names:
            self._load_table(db, name)

    def _load_table(self, db: Database, name: str) -> None:
        table = db.table(name)
        columns = ", ".join(
            f"{col.name} {_SQLITE_TYPES[col.type]}" for col in table.schema.columns
        )
        self.conn.execute(f"CREATE TABLE {name} ({columns})")
        placeholders = ", ".join("?" for _ in table.schema.columns)
        self.conn.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", table.rows
        )
        self.conn.commit()

    def run(self, sql: str) -> List[Row]:
        cursor = self.conn.execute(sql)
        return [tuple(row) for row in cursor.fetchall()]

    def run_sorted(self, sql: str) -> List[Row]:
        return sorted(self.run(sql), key=_null_safe_key)

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "SqliteMirror":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
