"""Logical query plans.

Plans are trees of :class:`PlanNode`.  Every node knows its output column
names (qualified like ``T2.x`` after aliased scans and joins), which is
what expressions bind against.  The same plan can be executed by the
single-node executor, compiled into an MPP plan with motion operators,
or rendered to SQL text for the sqlite conformance tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .expr import Expr
from .types import PlanError, Row, ensure


class PlanNode:
    """Base class of all logical plan operators."""

    @property
    def output_columns(self) -> List[str]:
        raise NotImplementedError

    @property
    def children(self) -> List["PlanNode"]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line operator description for EXPLAIN output."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Render the plan tree as indented text (EXPLAIN-style)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.describe()}>"


class Scan(PlanNode):
    """Scan a stored table under an alias; output columns ``alias.col``."""

    def __init__(self, table_name: str, alias: Optional[str] = None) -> None:
        self.table_name = table_name
        self.alias = alias or table_name
        self._columns: Optional[List[str]] = None  # filled by binder

    def set_table_columns(self, column_names: Sequence[str]) -> None:
        self._columns = [f"{self.alias}.{name}" for name in column_names]

    @property
    def output_columns(self) -> List[str]:
        ensure(
            self._columns is not None,
            PlanError,
            f"scan of {self.table_name!r} not bound to a database",
        )
        return list(self._columns)  # type: ignore[arg-type]

    @property
    def children(self) -> List[PlanNode]:
        return []

    def describe(self) -> str:
        if self.alias != self.table_name:
            return f"Seq Scan on {self.table_name} {self.alias}"
        return f"Seq Scan on {self.table_name}"


class Values(PlanNode):
    """Inline literal rows (used in tests and small utilities)."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Row]) -> None:
        ensure(len(columns) > 0, PlanError, "Values needs columns")
        self._columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        for index, row in enumerate(self.rows):
            ensure(
                len(row) == len(self._columns),
                PlanError,
                f"Values: row {index} has {len(row)} values for "
                f"{len(self._columns)} columns [{', '.join(self._columns)}]",
            )

    @property
    def output_columns(self) -> List[str]:
        return list(self._columns)

    @property
    def children(self) -> List[PlanNode]:
        return []

    def describe(self) -> str:
        return f"Values ({len(self.rows)} rows)"


class Filter(PlanNode):
    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def output_columns(self) -> List[str]:
        return self.child.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter: {self.predicate.to_sql()}"


class Project(PlanNode):
    """Projection with renaming: list of (expression, output name)."""

    def __init__(self, child: PlanNode, outputs: Sequence[Tuple[Expr, str]]) -> None:
        ensure(len(outputs) > 0, PlanError, "projection needs outputs")
        self.child = child
        self.outputs = list(outputs)

    @property
    def output_columns(self) -> List[str]:
        return [name for _, name in self.outputs]

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        items = ", ".join(f"{expr.to_sql()} AS {name}" for expr, name in self.outputs)
        return f"Project: {items}"


class HashJoin(PlanNode):
    """Equi-join on named key columns; extra non-equi predicates allowed.

    Output columns are the left columns followed by the right columns,
    keeping their qualified names.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expr] = None,
    ) -> None:
        ensure(
            len(left_keys) == len(right_keys),
            PlanError,
            f"Hash Join: {len(left_keys)} left keys "
            f"[{', '.join(left_keys)}] vs {len(right_keys)} right keys "
            f"[{', '.join(right_keys)}]",
        )
        ensure(len(left_keys) > 0, PlanError, "hash join needs at least one key")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    @property
    def output_columns(self) -> List[str]:
        return self.left.output_columns + self.right.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        conds = " AND ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual is not None:
            conds += f" AND {self.residual.to_sql()}"
        return f"Hash Join: {conds}"


class AntiJoin(PlanNode):
    """Left rows with NO key match on the right (NOT EXISTS).

    The grounding merge uses this to keep set-union semantics inside
    the database: candidate facts anti-joined against TΠ (and the
    graveyard of constraint-deleted facts) yield only genuinely new
    rows.  Output columns are the left columns only.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        ensure(
            len(left_keys) == len(right_keys),
            PlanError,
            f"Hash Anti Join: {len(left_keys)} left keys "
            f"[{', '.join(left_keys)}] vs {len(right_keys)} right keys "
            f"[{', '.join(right_keys)}]",
        )
        ensure(len(left_keys) > 0, PlanError, "anti-join needs at least one key")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    @property
    def output_columns(self) -> List[str]:
        return self.left.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        conds = " AND ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"Hash Anti Join: {conds}"


class Distinct(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child

    @property
    def output_columns(self) -> List[str]:
        return self.child.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"


#: Aggregate function names supported by :class:`Aggregate`.
AGG_FUNCS = frozenset({"count", "count_distinct", "min", "max", "sum"})


class Aggregate(PlanNode):
    """GROUP BY with aggregates and optional HAVING.

    ``aggregates`` is a list of (func, input column or None for COUNT(*),
    output name).  Output columns are the group-by columns followed by the
    aggregate outputs.  With an empty ``group_by`` a single global row is
    produced.
    """

    def __init__(
        self,
        child: PlanNode,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        having: Optional[Expr] = None,
    ) -> None:
        for func, _, _ in aggregates:
            ensure(func in AGG_FUNCS, PlanError, f"unknown aggregate {func!r}")
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.having = having

    @property
    def output_columns(self) -> List[str]:
        return list(self.group_by) + [name for _, _, name in self.aggregates]

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(
            f"{func}({col or '*'}) AS {name}" for func, col, name in self.aggregates
        )
        desc = f"Aggregate: group by [{', '.join(self.group_by)}] -> {aggs}"
        if self.having is not None:
            desc += f" having {self.having.to_sql()}"
        return desc


class UnionAll(PlanNode):
    """Bag union; children must have identical arity."""

    def __init__(self, children: Sequence[PlanNode]) -> None:
        ensure(len(children) >= 1, PlanError, "union needs children")
        expected = children[0].output_columns
        for index, child in enumerate(children[1:], start=1):
            actual = child.output_columns
            ensure(
                len(actual) == len(expected),
                PlanError,
                f"UnionAll: child {index} has {len(actual)} columns "
                f"[{', '.join(actual)}], expected {len(expected)} "
                f"[{', '.join(expected)}]",
            )
        self._children = list(children)

    @property
    def output_columns(self) -> List[str]:
        return self._children[0].output_columns

    @property
    def children(self) -> List[PlanNode]:
        return list(self._children)

    def describe(self) -> str:
        return f"Append ({len(self._children)} children)"


class Sort(PlanNode):
    """ORDER BY: (column, descending) pairs; NULLs sort first."""

    def __init__(
        self, child: PlanNode, keys: Sequence[Tuple[str, bool]]
    ) -> None:
        ensure(len(keys) > 0, PlanError, "sort needs at least one key")
        self.child = child
        self.keys = [(name, bool(desc)) for name, desc in keys]

    @property
    def output_columns(self) -> List[str]:
        return self.child.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        parts = ", ".join(
            f"{name} {'DESC' if desc else 'ASC'}" for name, desc in self.keys
        )
        return f"Sort: {parts}"


class Limit(PlanNode):
    def __init__(self, child: PlanNode, limit: int) -> None:
        ensure(limit >= 0, PlanError, "limit must be non-negative")
        self.child = child
        self.limit = limit

    @property
    def output_columns(self) -> List[str]:
        return self.child.output_columns

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit {self.limit}"


def walk(plan: PlanNode) -> Iterator[PlanNode]:
    """Yield every node of the plan tree (pre-order)."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def scans_of(plan: PlanNode) -> List[Scan]:
    return [node for node in walk(plan) if isinstance(node, Scan)]
