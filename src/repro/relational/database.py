"""Single-node database: a catalog of tables plus an executor and clock.

This is the stand-in for PostgreSQL in the reproduction.  It supports the
operations ProbKB's grounding and quality-control algorithms need:

* DDL: ``create_table`` (with optional unique key for set semantics);
* queries: ``query(plan)``;
* DML: ``insert_rows``, ``insert_from(plan)`` (INSERT ... SELECT),
  ``delete_in`` (DELETE ... WHERE (cols) IN (subquery));
* materialized views: stored copies refreshed from a defining plan.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .columnar import resolve_executor
from .columnar_exec import make_executor
from .cost import CostClock
from .executor import Executor, Result
from .plan import PlanNode
from .schema import TableSchema
from .table import Table
from .types import ExecutionError, Row, ensure
from .verify import verify_plan, verify_plans_enabled


class Database:
    """An in-memory single-node relational database."""

    def __init__(
        self,
        name: str = "db",
        verify_plans: Optional[bool] = None,
        executor: Optional[str] = None,
    ) -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.clock = CostClock()
        #: which plan-execution engine runs queries ("columnar"|"rows");
        #: None defers to the PROBKB_EXECUTOR env var, default columnar
        self.executor_name = resolve_executor(executor)
        self._matview_defs: Dict[str, PlanNode] = {}
        #: debug gate: statically verify every distinct plan once before
        #: it executes (None defers to the PROBKB_VERIFY_PLANS env var)
        self.verify_plans = verify_plans_enabled(verify_plans)
        self._verified_plans: "weakref.WeakSet[PlanNode]" = weakref.WeakSet()

    def _maybe_verify(self, plan: PlanNode) -> None:
        """Verify a plan once before its first execution (debug gate).

        The verifier is pure (it never binds scans or touches the
        clock), so results are bit-identical with the gate on or off;
        error-severity findings raise ``PlanVerificationError``,
        warnings are ignored at runtime."""
        if not self.verify_plans or plan in self._verified_plans:
            return
        verify_plan(plan, tables=self.tables, name="logical plan") \
            .raise_if_errors()
        self._verified_plans.add(plan)

    def _executor(self) -> Executor:
        return make_executor(self.tables, self.clock, self.executor_name)

    # -- DDL ---------------------------------------------------------------

    def create_table(self, table_schema: TableSchema, replace: bool = False) -> Table:
        if table_schema.name in self.tables and not replace:
            raise ExecutionError(f"table {table_schema.name!r} already exists")
        table = Table(table_schema)
        self.tables[table_schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)
        self._matview_defs.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise ExecutionError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    # -- queries -------------------------------------------------------------

    def query(self, plan: PlanNode) -> Result:
        """Execute a read-only plan; charges one statement of overhead."""
        self._maybe_verify(plan)
        self.clock.charge_query()
        return self._executor().run(plan)

    def execute_sql(self, sql: str) -> Result:
        """Parse and execute a SELECT statement (the dialect to_sql emits)."""
        from .sqlparse import parse_sql

        return self.query(parse_sql(sql))

    @property
    def elapsed_seconds(self) -> float:
        """Modelled elapsed time (same API as :class:`MPPDatabase`)."""
        return self.clock.seconds

    # -- DML -----------------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Row]) -> int:
        """Plain INSERT; charged as one statement."""
        self.clock.charge_query()
        table = self.table(table_name)
        inserted = table.insert(rows)
        self.clock.rows_inserted += inserted
        return inserted

    def bulkload(self, table_name: str, rows: Iterable[Row]) -> int:
        """COPY-style load: one statement regardless of row count."""
        return self.insert_rows(table_name, rows)

    def insert_from(self, table_name: str, plan: PlanNode) -> int:
        """INSERT INTO table SELECT ... — one statement."""
        self._maybe_verify(plan)
        self.clock.charge_query()
        result = self._executor().run(plan)
        table = self.table(table_name)
        ensure(
            len(result.columns) == len(table.schema),
            ExecutionError,
            f"insert arity mismatch into {table_name!r}: "
            f"{len(result.columns)} != {len(table.schema)}",
        )
        inserted = table.insert(result.rows)
        self.clock.rows_inserted += inserted
        return inserted

    def insert_from_with_ids(
        self,
        table_name: str,
        plan: PlanNode,
        next_id: int,
        pad_nulls: int = 0,
    ) -> Tuple[int, int]:
        """INSERT ... SELECT with a leading sequence column.

        Each result row is stored as ``(id, *row, NULL * pad_nulls)``
        with ids drawn from a sequence starting at ``next_id``.  Returns
        (rows inserted, next sequence value).  This is how grounding
        merges new facts into TΠ without round-tripping them through
        the client.
        """
        self._maybe_verify(plan)
        self.clock.charge_query()
        result = self._executor().run(plan)
        table = self.table(table_name)
        padding: Row = (None,) * pad_nulls
        rows = [
            (next_id + offset,) + row + padding
            for offset, row in enumerate(result.rows)
        ]
        inserted = table.insert(rows)
        self.clock.rows_inserted += inserted
        return inserted, next_id + len(rows)

    def delete_in(
        self,
        table_name: str,
        column_names: Sequence[str],
        key_plan: PlanNode,
    ) -> int:
        """DELETE FROM table WHERE (cols) IN (SELECT ... ) — one statement."""
        self._maybe_verify(key_plan)
        self.clock.charge_query()
        result = self._executor().run(key_plan)
        keys: Set[Row] = set(result.rows)
        table = self.table(table_name)
        removed = table.delete_in(column_names, keys)
        self.clock.rows_output += removed
        return removed

    def truncate(self, table_name: str) -> None:
        self.clock.charge_query()
        self.table(table_name).truncate()

    # -- materialized views ----------------------------------------------------

    def create_matview(
        self,
        name: str,
        plan: PlanNode,
        table_schema: TableSchema,
    ) -> Table:
        """Create a materialized view: a stored table + its defining plan."""
        table = self.create_table(table_schema, replace=True)
        self._matview_defs[name] = plan
        self.refresh_matview(name)
        return table

    def refresh_matview(self, name: str) -> int:
        plan = self._matview_defs.get(name)
        ensure(plan is not None, ExecutionError, f"{name!r} is not a matview")
        self._maybe_verify(plan)  # type: ignore[arg-type]
        self.clock.charge_query()
        result = self._executor().run(plan)  # type: ignore[arg-type]
        table = self.table(name)
        table.truncate()
        inserted = table.insert(result.rows, validate=False)
        self.clock.rows_inserted += inserted
        return inserted

    @property
    def matviews(self) -> List[str]:
        return list(self._matview_defs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name}, tables={list(self.tables)})"
