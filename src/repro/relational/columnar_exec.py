"""Columnar plan executor: the vectorized twin of :class:`Executor`.

Evaluates the same logical plan trees as the row engine, but carries
:class:`~repro.relational.columnar.ColumnBatch` values between
operators and dispatches the hot loops to the kernels in
:mod:`repro.relational.columnar`.  Results are bit-identical to the
row engine — same rows, same order — and every operator charges the
:class:`~repro.relational.cost.CostClock` the exact counters the row
engine charges for the same plan, so ``repro explain`` cost summaries
and the modelled benchmark timings are engine-independent.

:func:`make_executor` is the selection point used by
:class:`~repro.relational.database.Database` and the backends:
``"columnar"`` (default) or ``"rows"``, resolved from an explicit
config, the ``PROBKB_EXECUTOR`` env var, or the default.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from .columnar import (
    ColumnBatch,
    aggregate_column,
    anti_join_indices,
    distinct_indices,
    filter_batch_indices,
    gather_column,
    join_indices,
    predicate_mask,
    resolve_executor,
    sort_indices,
)
from .cost import CostClock
from .executor import Executor, Result
from .expr import Col, Const, Expr, resolve_column
from .plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
)
from .types import ExecutionError, Row, Value


class ColumnarExecutor(Executor):
    """Evaluates logical plans over columnar batches."""

    engine_name = "columnar"

    def run(self, plan: PlanNode) -> Result:
        self.bind(plan)
        batch = self._eval_batch(plan)
        return Result(batch.columns, batch.to_rows())

    def _eval(self, plan: PlanNode) -> Tuple[List[str], List[Row]]:
        batch = self._eval_batch(plan)
        return batch.columns, batch.to_rows()

    # -- evaluation --------------------------------------------------------

    def _eval_batch(self, plan: PlanNode) -> ColumnBatch:
        if isinstance(plan, Scan):
            return self._batch_scan(plan)
        if isinstance(plan, Values):
            return ColumnBatch.from_rows(plan.output_columns, plan.rows)
        if isinstance(plan, Filter):
            return self._batch_filter(plan)
        if isinstance(plan, Project):
            return self._batch_project(plan)
        if isinstance(plan, HashJoin):
            return self._batch_join(plan)
        if isinstance(plan, AntiJoin):
            return self._batch_anti_join(plan)
        if isinstance(plan, Distinct):
            return self._batch_distinct(plan)
        if isinstance(plan, Aggregate):
            return self._batch_aggregate(plan)
        if isinstance(plan, UnionAll):
            return self._batch_union(plan)
        if isinstance(plan, Sort):
            return self._batch_sort(plan)
        if isinstance(plan, Limit):
            if plan.limit < 0:
                raise ExecutionError(
                    f"Limit must be non-negative, got {plan.limit}"
                )
            child = self._eval_batch(plan.child)
            return child.head(plan.limit)
        raise ExecutionError(f"unsupported plan node {type(plan).__name__}")

    def _batch_scan(self, plan: Scan) -> ColumnBatch:
        table = self._tables[plan.table_name]
        self._clock.rows_scanned += len(table)
        return table.column_batch().rename(plan.output_columns)

    def _batch_filter(self, plan: Filter) -> ColumnBatch:
        child = self._eval_batch(plan.child)
        bound = plan.predicate.bind(child.columns)
        kept_idx = filter_batch_indices(plan.predicate, bound, child)
        kept = child.gather(kept_idx)
        self._clock.rows_probed += child.nrows
        self._clock.rows_output += kept.nrows
        return kept

    def _batch_project(self, plan: Project) -> ColumnBatch:
        child = self._eval_batch(plan.child)
        cols: List[List[Value]] = []
        rows: Optional[List[Row]] = None  # lazily zipped for opaque exprs
        for expr, _name in plan.outputs:
            if isinstance(expr, Col):
                pos = resolve_column(expr.name, child.columns)
                cols.append(child.cols[pos])  # shared, never mutated
            elif isinstance(expr, Const):
                cols.append([expr.value] * child.nrows)
            else:
                if rows is None:
                    rows = child.to_rows()
                evaluate = expr.bind(child.columns)
                cols.append([evaluate(row) for row in rows])
        self._clock.rows_output += child.nrows
        return ColumnBatch(plan.output_columns, cols, child.nrows)

    def _batch_join(self, plan: HashJoin) -> ColumnBatch:
        left = self._eval_batch(plan.left)
        right = self._eval_batch(plan.right)
        out_columns = left.columns + right.columns
        lpos = [resolve_column(k, left.columns) for k in plan.left_keys]
        rpos = [resolve_column(k, right.columns) for k in plan.right_keys]
        lidx, ridx, built, probed = join_indices(left, right, lpos, rpos)
        out_cols = [gather_column(col, lidx) for col in left.cols]
        out_cols += [gather_column(col, ridx) for col in right.cols]
        out = ColumnBatch(out_columns, out_cols)
        self._clock.rows_built += built
        self._clock.rows_probed += probed
        self._clock.rows_output += out.nrows
        if plan.residual is not None:
            out = self._apply_predicate(plan.residual, out)
        return out

    def _batch_anti_join(self, plan: AntiJoin) -> ColumnBatch:
        left = self._eval_batch(plan.left)
        right = self._eval_batch(plan.right)
        lpos = [resolve_column(k, left.columns) for k in plan.left_keys]
        rpos = [resolve_column(k, right.columns) for k in plan.right_keys]
        kept_idx = anti_join_indices(left, right, lpos, rpos)
        kept = left.gather(kept_idx)
        self._clock.rows_built += right.nrows
        self._clock.rows_probed += left.nrows
        self._clock.rows_output += kept.nrows
        return kept

    def _batch_distinct(self, plan: Distinct) -> ColumnBatch:
        child = self._eval_batch(plan.child)
        deduped = child.gather(distinct_indices(child))
        self._clock.rows_probed += child.nrows
        self._clock.rows_output += deduped.nrows
        return deduped

    def _batch_aggregate(self, plan: Aggregate) -> ColumnBatch:
        from .columnar import group_indices

        child = self._eval_batch(plan.child)
        group_pos = [resolve_column(c, child.columns) for c in plan.group_by]
        agg_cols: List[Optional[List[Value]]] = [
            child.cols[resolve_column(c, child.columns)] if c is not None else None
            for _, c, _ in plan.aggregates
        ]
        groups = group_indices(child, group_pos)
        width = len(plan.group_by) + len(plan.aggregates)
        out_cols: List[List[Value]] = [[] for _ in range(width)]
        for key, indices in groups.items():
            for pos, value in enumerate(key):
                out_cols[pos].append(value)
            for offset, ((func, _, _), col) in enumerate(
                zip(plan.aggregates, agg_cols)
            ):
                out_cols[len(key) + offset].append(
                    aggregate_column(func, col, indices)
                )
        out = ColumnBatch(plan.output_columns, out_cols, len(groups))
        self._clock.rows_probed += child.nrows
        self._clock.rows_output += out.nrows
        if plan.having is not None:
            out = self._apply_predicate(plan.having, out)
        return out

    def _batch_union(self, plan: UnionAll) -> ColumnBatch:
        children = [self._eval_batch(child) for child in plan.children]
        out_columns = plan.output_columns
        width = len(out_columns)
        out_cols: List[List[Value]] = [[] for _ in range(width)]
        total = 0
        for child in children:
            for pos in range(width):
                out_cols[pos].extend(child.cols[pos])
            total += child.nrows
        self._clock.rows_output += total
        return ColumnBatch(out_columns, out_cols, total)

    def _batch_sort(self, plan: Sort) -> ColumnBatch:
        child = self._eval_batch(plan.child)
        keys = [
            (resolve_column(name, child.columns), descending)
            for name, descending in plan.keys
        ]
        ordered = child.gather(sort_indices(child, keys))
        self._clock.rows_probed += ordered.nrows
        self._clock.rows_output += ordered.nrows
        return ordered

    # -- helpers -----------------------------------------------------------

    def _apply_predicate(self, expr: Expr, batch: ColumnBatch) -> ColumnBatch:
        """Filter without clock charges (residual/having semantics)."""
        mask = predicate_mask(expr, batch)
        if mask is not None:
            from .columnar import get_numpy

            np = get_numpy()
            return batch.gather(np.nonzero(mask)[0])
        bound = expr.bind(batch.columns)
        kept = [i for i, row in enumerate(zip(*batch.cols)) if bound(row)]
        return batch.gather(kept)


#: engine name -> executor class
_ENGINES = {"rows": Executor, "columnar": ColumnarExecutor}


def make_executor(
    tables: Mapping[str, object],
    clock: CostClock,
    engine: Optional[str] = None,
) -> Executor:
    """Build the selected executor (override > ``PROBKB_EXECUTOR`` > columnar)."""
    return _ENGINES[resolve_executor(engine)](tables, clock)
