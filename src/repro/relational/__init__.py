"""A from-scratch single-node relational engine (the PostgreSQL stand-in).

Public surface::

    from repro.relational import (
        Database, TableSchema, Column, schema,
        Scan, Filter, Project, HashJoin, Aggregate, Distinct, UnionAll,
        col, const, eq, eq_const, conj, to_sql, SqliteMirror,
    )
"""

from .columnar import (
    EXECUTOR_ENGINES,
    ColumnBatch,
    numpy_enabled,
    resolve_executor,
)
from .columnar_exec import ColumnarExecutor, make_executor
from .cost import CostClock
from .database import Database
from .executor import Executor, Result
from .expr import (
    And,
    Col,
    Compare,
    Const,
    Expr,
    IsNull,
    Not,
    Or,
    col,
    conj,
    const,
    eq,
    eq_const,
)
from .plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
)
from .schema import Column, TableSchema, schema
from .sqlite_bridge import SqliteMirror
from .sqlparse import SqlParseError, parse_sql
from .sqltext import to_sql
from .table import Table
from .types import (
    FLOAT,
    INT,
    TEXT,
    ExecutionError,
    PlanError,
    RelationalError,
    Row,
    SchemaError,
    Value,
)

__all__ = [
    "And",
    "Aggregate",
    "AntiJoin",
    "Col",
    "Column",
    "ColumnBatch",
    "ColumnarExecutor",
    "Compare",
    "Const",
    "CostClock",
    "Database",
    "Distinct",
    "EXECUTOR_ENGINES",
    "ExecutionError",
    "Executor",
    "Expr",
    "FLOAT",
    "Filter",
    "HashJoin",
    "INT",
    "IsNull",
    "Limit",
    "Not",
    "Or",
    "PlanError",
    "PlanNode",
    "Project",
    "RelationalError",
    "Result",
    "Row",
    "Scan",
    "SchemaError",
    "Sort",
    "SqlParseError",
    "SqliteMirror",
    "TEXT",
    "Table",
    "TableSchema",
    "UnionAll",
    "Value",
    "Values",
    "col",
    "conj",
    "const",
    "eq",
    "eq_const",
    "make_executor",
    "numpy_enabled",
    "parse_sql",
    "resolve_executor",
    "schema",
    "to_sql",
]
