"""A from-scratch single-node relational engine (the PostgreSQL stand-in).

Public surface::

    from repro.relational import (
        Database, TableSchema, Column, schema,
        Scan, Filter, Project, HashJoin, Aggregate, Distinct, UnionAll,
        col, const, eq, eq_const, conj, to_sql, SqliteMirror,
    )
"""

from .cost import CostClock
from .database import Database
from .executor import Result
from .expr import (
    And,
    Col,
    Compare,
    Const,
    Expr,
    IsNull,
    Not,
    Or,
    col,
    conj,
    const,
    eq,
    eq_const,
)
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    UnionAll,
    Values,
)
from .schema import Column, TableSchema, schema
from .sqlite_bridge import SqliteMirror
from .sqlparse import SqlParseError, parse_sql
from .sqltext import to_sql
from .table import Table
from .types import (
    FLOAT,
    INT,
    TEXT,
    ExecutionError,
    PlanError,
    RelationalError,
    Row,
    SchemaError,
    Value,
)

__all__ = [
    "And",
    "Aggregate",
    "Col",
    "Column",
    "Compare",
    "Const",
    "CostClock",
    "Database",
    "Distinct",
    "ExecutionError",
    "Expr",
    "FLOAT",
    "Filter",
    "HashJoin",
    "INT",
    "IsNull",
    "Limit",
    "Not",
    "Or",
    "PlanError",
    "PlanNode",
    "Project",
    "RelationalError",
    "Result",
    "Row",
    "Scan",
    "SchemaError",
    "SqlParseError",
    "SqliteMirror",
    "TEXT",
    "Table",
    "TableSchema",
    "UnionAll",
    "Value",
    "Values",
    "col",
    "conj",
    "const",
    "eq",
    "eq_const",
    "parse_sql",
    "schema",
    "to_sql",
]
