"""Per-relation statistics for static plan analysis (the ANALYZE stand-in).

A real optimizer plans from catalog statistics gathered by ``ANALYZE``:
row counts, per-column distinct counts, and most-common-value skew.  This
module provides the same three ingredients for the static plan estimator
(:mod:`repro.mpp.static_planner`):

* :class:`ColumnStats` — distinct count, NULL fraction, and the fraction
  of non-NULL rows held by the most common value (skew).
* :class:`TableStats` — row count plus per-column stats.
* :class:`StatisticsCatalog` — named tables with their stats and their
  MPP distribution (:class:`TableDistribution`), the static analogue of
  Greenplum's ``gp_distribution_policy`` catalog.

Statistics can be collected from raw rows (:func:`table_stats`), from a
single-node :class:`~repro.relational.database.Database`
(:func:`collect_database_statistics`), or synthesized directly from a
knowledge base before any table exists (:mod:`repro.analyze.plans`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .types import ExecutionError, Row, Value, ensure


@dataclass(frozen=True)
class ColumnStats:
    """ANALYZE-style statistics of one column."""

    #: number of distinct non-NULL values
    distinct: int
    #: fraction of rows that are NULL
    null_fraction: float = 0.0
    #: share of non-NULL rows held by the most common value (1/distinct
    #: for a uniform column; near 1.0 for a heavily skewed one)
    mcv_fraction: float = 0.0


@dataclass(frozen=True)
class TableStats:
    """Row count and per-column statistics of one relation."""

    rows: int
    column_names: Tuple[str, ...]
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        """Stats for a column, defaulting to the pessimistic assumption
        that every row is distinct when the column was never analyzed."""
        found = self.columns.get(name)
        if found is not None:
            return found
        return ColumnStats(
            distinct=self.rows,
            null_fraction=0.0,
            mcv_fraction=1.0 / self.rows if self.rows else 0.0,
        )


@dataclass(frozen=True)
class TableDistribution:
    """How a stored table is spread across MPP segments."""

    kind: str  # "hash" | "replicated" | "random"
    columns: Optional[Tuple[str, ...]] = None

    @staticmethod
    def hash_on(columns: Iterable[str]) -> "TableDistribution":
        return TableDistribution("hash", tuple(columns))

    @staticmethod
    def replicated() -> "TableDistribution":
        return TableDistribution("replicated")

    @staticmethod
    def random() -> "TableDistribution":
        return TableDistribution("random")


#: Distribution of every single-node table (one segment holds everything).
SINGLE_NODE_DIST = TableDistribution.random()


def column_stats(values: Sequence[Value]) -> ColumnStats:
    """Compute :class:`ColumnStats` over one column's values."""
    total = len(values)
    if total == 0:
        return ColumnStats(distinct=0)
    non_null = [value for value in values if value is not None]
    if not non_null:
        return ColumnStats(distinct=0, null_fraction=1.0)
    counts = Counter(non_null)
    most_common = counts.most_common(1)[0][1]
    return ColumnStats(
        distinct=len(counts),
        null_fraction=(total - len(non_null)) / total,
        mcv_fraction=most_common / len(non_null),
    )


def table_stats(column_names: Sequence[str], rows: Sequence[Row]) -> TableStats:
    """Compute full-table statistics from raw rows (an exact ANALYZE)."""
    names = tuple(column_names)
    per_column: Dict[str, ColumnStats] = {}
    for pos, name in enumerate(names):
        per_column[name] = column_stats([row[pos] for row in rows])
    return TableStats(rows=len(rows), column_names=names, columns=per_column)


class StatisticsCatalog:
    """Named table statistics plus each table's MPP distribution."""

    def __init__(self, num_segments: int = 1) -> None:
        ensure(num_segments >= 1, ExecutionError, "need at least one segment")
        self.num_segments = num_segments
        self._tables: Dict[str, TableStats] = {}
        self._distributions: Dict[str, TableDistribution] = {}

    def add(
        self,
        name: str,
        stats: TableStats,
        distribution: TableDistribution = SINGLE_NODE_DIST,
    ) -> None:
        self._tables[name] = stats
        self._distributions[name] = distribution

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def stats(self, name: str) -> TableStats:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(f"no statistics for table {name!r}") from None

    def distribution(self, name: str) -> TableDistribution:
        try:
            return self._distributions[name]
        except KeyError:
            raise ExecutionError(f"no distribution for table {name!r}") from None


def collect_database_statistics(
    db: object,
    table_names: Optional[Iterable[str]] = None,
) -> StatisticsCatalog:
    """ANALYZE a single-node :class:`~repro.relational.database.Database`.

    The MPP equivalent (which also records distributions) lives in
    :func:`repro.mpp.static_planner.collect_mpp_statistics`.
    """
    tables: Mapping[str, object] = getattr(db, "tables")
    catalog = StatisticsCatalog(num_segments=1)
    names = list(table_names) if table_names is not None else list(tables)
    for name in names:
        table = tables[name]
        table_schema = getattr(table, "schema")
        rows: Sequence[Row] = getattr(table, "rows")
        catalog.add(name, table_stats(table_schema.column_names, rows))
    return catalog
