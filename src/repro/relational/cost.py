"""Deterministic cost model for the relational and MPP engines.

Cross-system comparisons in the paper (Tuffy-T vs ProbKB vs ProbKB-p)
depend on effects a single Python process cannot reproduce with raw
wall-clock alone — most importantly per-query overhead (planning,
client/server round trips) and cross-segment shipping in the MPP setting.
Every executor therefore charges its work to a :class:`CostClock` whose
``seconds`` property converts row-operation counters into a deterministic,
machine-independent time estimate.  Real wall-clock is tracked separately
by the benchmark harness.

The constants were calibrated so that the single-node engine's modelled
time is of the same order as its real wall-clock on this codebase, and so
that the per-query overhead matches the ~10-20 ms/query client round trip
implied by the paper's Tuffy measurements (30,912 queries/iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Fixed cost per executed statement: parse/plan/optimize + round trip.
QUERY_OVERHEAD_S = 0.012
#: Cost to scan one stored row.
ROW_SCAN_S = 2.5e-7
#: Cost to build one hash-table entry on the join build side.
ROW_BUILD_S = 4.0e-7
#: Cost to probe the hash table with one row.
ROW_PROBE_S = 3.0e-7
#: Cost to emit one output/intermediate row.
ROW_OUTPUT_S = 3.0e-7
#: Cost to insert one row into a stored table (includes dedup check).
ROW_INSERT_S = 5.0e-7
#: Cost to ship one row between MPP segments (redistribute motion).
#: The interconnect dominates MPP query cost (paper Fig. 4: an 8.06s
#: broadcast vs a 1.02s hash join), hence ~13x the probe cost.
ROW_SHIP_S = 4.0e-6
#: Cost to ship one row to *every* segment (broadcast motion), per copy.
ROW_BROADCAST_S = 4.0e-6


@dataclass
class CostClock:
    """Accumulates row-operation counts and converts them to seconds."""

    queries: int = 0
    rows_scanned: int = 0
    rows_built: int = 0
    rows_probed: int = 0
    rows_output: int = 0
    rows_inserted: int = 0
    rows_shipped: int = 0
    rows_broadcast: int = 0
    #: extra seconds charged directly (e.g. modelled motion setup)
    extra_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return (
            self.queries * QUERY_OVERHEAD_S
            + self.rows_scanned * ROW_SCAN_S
            + self.rows_built * ROW_BUILD_S
            + self.rows_probed * ROW_PROBE_S
            + self.rows_output * ROW_OUTPUT_S
            + self.rows_inserted * ROW_INSERT_S
            + self.rows_shipped * ROW_SHIP_S
            + self.rows_broadcast * ROW_BROADCAST_S
            + self.extra_seconds
        )

    def charge_query(self, count: int = 1) -> None:
        self.queries += count

    def merge(self, other: "CostClock") -> None:
        """Add another clock's counters into this one."""
        self.queries += other.queries
        self.rows_scanned += other.rows_scanned
        self.rows_built += other.rows_built
        self.rows_probed += other.rows_probed
        self.rows_output += other.rows_output
        self.rows_inserted += other.rows_inserted
        self.rows_shipped += other.rows_shipped
        self.rows_broadcast += other.rows_broadcast
        self.extra_seconds += other.extra_seconds

    def snapshot(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "rows_scanned": self.rows_scanned,
            "rows_built": self.rows_built,
            "rows_probed": self.rows_probed,
            "rows_output": self.rows_output,
            "rows_inserted": self.rows_inserted,
            "rows_shipped": self.rows_shipped,
            "rows_broadcast": self.rows_broadcast,
            "seconds": self.seconds,
        }

    def reset(self) -> None:
        self.queries = 0
        self.rows_scanned = 0
        self.rows_built = 0
        self.rows_probed = 0
        self.rows_output = 0
        self.rows_inserted = 0
        self.rows_shipped = 0
        self.rows_broadcast = 0
        self.extra_seconds = 0.0

    def copy(self) -> "CostClock":
        clone = CostClock()
        clone.merge(self)
        return clone

    def delta_since(self, earlier: "CostClock") -> "CostClock":
        """Return a clock holding the difference ``self - earlier``."""
        delta = CostClock(
            queries=self.queries - earlier.queries,
            rows_scanned=self.rows_scanned - earlier.rows_scanned,
            rows_built=self.rows_built - earlier.rows_built,
            rows_probed=self.rows_probed - earlier.rows_probed,
            rows_output=self.rows_output - earlier.rows_output,
            rows_inserted=self.rows_inserted - earlier.rows_inserted,
            rows_shipped=self.rows_shipped - earlier.rows_shipped,
            rows_broadcast=self.rows_broadcast - earlier.rows_broadcast,
            extra_seconds=self.extra_seconds - earlier.extra_seconds,
        )
        return delta
