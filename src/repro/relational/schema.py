"""Table schemas for the relational engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .types import VALID_TYPES, Row, SchemaError, check_value, ensure


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str

    def __post_init__(self) -> None:
        ensure(bool(self.name), SchemaError, "column name must be non-empty")
        ensure(
            self.type in VALID_TYPES,
            SchemaError,
            f"unknown column type {self.type!r} for column {self.name!r}",
        )


class TableSchema:
    """An ordered collection of columns with optional uniqueness key.

    ``unique_key`` names the columns whose combination must be unique in the
    table; inserts silently drop rows that duplicate an existing key (set
    semantics), mirroring how ProbKB's `TΠ` deduplicates inferred facts.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        unique_key: Optional[Sequence[str]] = None,
    ) -> None:
        ensure(bool(name), SchemaError, "table name must be non-empty")
        ensure(len(columns) > 0, SchemaError, f"table {name!r} has no columns")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for pos, col in enumerate(self.columns):
            ensure(
                col.name not in self._index,
                SchemaError,
                f"duplicate column {col.name!r} in table {name!r}",
            )
            self._index[col.name] = pos
        self.unique_key: Optional[Tuple[str, ...]] = None
        if unique_key is not None:
            key = tuple(unique_key)
            for col_name in key:
                ensure(
                    col_name in self._index,
                    SchemaError,
                    f"unique key column {col_name!r} not in table {name!r}",
                )
            self.unique_key = key

    # -- column access -------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def position(self, column_name: str) -> int:
        """Return the 0-based position of ``column_name``."""
        try:
            return self._index[column_name]
        except KeyError:
            raise SchemaError(
                f"no column {column_name!r} in table {self.name!r} "
                f"(has {self.column_names})"
            ) from None

    def positions(self, column_names: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.position(name) for name in column_names)

    def has_column(self, column_name: str) -> bool:
        return column_name in self._index

    def __len__(self) -> int:
        return len(self.columns)

    # -- validation ----------------------------------------------------

    def validate_row(self, row: Row) -> None:
        """Raise :class:`SchemaError` if ``row`` does not fit this schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self.columns)} "
                f"for table {self.name!r}"
            )
        for value, col in zip(row, self.columns):
            if not check_value(value, col.type):
                raise SchemaError(
                    f"value {value!r} invalid for column "
                    f"{self.name}.{col.name} of type {col.type}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.type}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


def schema(name: str, *cols: str, unique_key: Optional[Sequence[str]] = None) -> TableSchema:
    """Shorthand constructor: ``schema('t', 'a:int', 'b:text')``."""
    columns = []
    for spec in cols:
        col_name, _, col_type = spec.partition(":")
        ensure(bool(col_type), SchemaError, f"column spec {spec!r} missing type")
        columns.append(Column(col_name, col_type))
    return TableSchema(name, columns, unique_key=unique_key)
