"""Columnar batches and vectorized kernels for the relational engine.

The row-at-a-time executor spends most of its time building Python
tuples and probing dicts one row at a time.  Grounding is dominated by
a handful of relational operators over integer key columns (Section 4
of the paper pushes grounding into exactly these operators), so this
module re-implements them over :class:`ColumnBatch` — one array per
column — with two interchangeable kernel backends:

* a **numpy fast path**: multi-column integer keys are encoded into a
  single ``int64`` code array and joins/anti-joins/distinct run as
  ``argsort``/``searchsorted``/``unique``/``isin`` over the codes;
* a **pure-Python fallback** with identical semantics (dict/set row
  loops over zipped key columns), used when numpy is unavailable,
  disabled via ``PROBKB_NO_NUMPY``, or when a column is not losslessly
  int64-convertible (NULLs, strings, floats, huge ints).

Both paths produce the *same rows in the same order* as the row engine
and charge the *same* :class:`~repro.relational.cost.CostClock`
counters, so engine choice can never change results or modelled cost —
only wall-clock.  Engine selection is resolved by
:func:`resolve_executor` from an explicit override, the
``PROBKB_EXECUTOR`` env var, or the default (``"columnar"``).
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .expr import And, Col, Compare, Const, Expr, IsNull, Not, Or
from .types import ExecutionError, Row, Value

__all__ = [
    "EXECUTOR_ENGINES",
    "ColumnBatch",
    "get_numpy",
    "numpy_enabled",
    "resolve_executor",
]

#: Supported relational execution engines.
EXECUTOR_ENGINES = ("columnar", "rows")

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Largest combined key range the int64 encoding may cover; above this
#: the multi-column Horner encoding could overflow and we fall back.
_MAX_CODE_RANGE = 2 ** 62

_np_module: Any = None
_np_import_failed = False


def get_numpy() -> Any:
    """The numpy module, or None (not importable or ``PROBKB_NO_NUMPY``).

    The env var is consulted on every call so tests (and the no-numpy
    CI lane) can flip it without re-importing the engine.
    """
    global _np_module, _np_import_failed
    if os.environ.get("PROBKB_NO_NUMPY", "").strip().lower() in _TRUTHY:
        return None
    if _np_module is None and not _np_import_failed:
        try:
            import numpy

            _np_module = numpy
        except ImportError:  # pragma: no cover - exercised by the CI lane
            _np_import_failed = True
    return _np_module


def numpy_enabled() -> bool:
    """True when the columnar kernels may use their numpy fast paths."""
    return get_numpy() is not None


def resolve_executor(override: Optional[str] = None) -> str:
    """Resolve the engine name: explicit override > env var > columnar."""
    if override is None:
        override = os.environ.get("PROBKB_EXECUTOR", "").strip().lower() or None
    if override is None:
        return "columnar"
    if override not in EXECUTOR_ENGINES:
        raise ValueError(
            f"unknown executor {override!r} (use one of {EXECUTOR_ENGINES})"
        )
    return override


#: Sentinel in the per-batch numpy cache: "tried, not convertible".
_NOT_CONVERTIBLE = False

IndexSeq = Union[Sequence[int], Any]  # list of ints or np.ndarray


class ColumnBatch:
    """A materialized relation stored one list per column.

    ``cols[i][j]`` is column ``i`` of row ``j``.  Column lists are
    treated as immutable once a batch is built — kernels always
    allocate fresh lists — so batches may share columns (projection of
    a column is a reference, not a copy) and :class:`~.table.Table` can
    cache one batch per table.

    Numpy views of individual columns are derived lazily and cached:
    ``_np_cache[pos]`` holds the raw ``np.asarray`` result, or
    ``False`` when the column is not cleanly array-convertible.
    """

    __slots__ = ("columns", "cols", "nrows", "_np_cache")

    def __init__(
        self,
        columns: Sequence[str],
        cols: Sequence[List[Value]],
        nrows: Optional[int] = None,
    ) -> None:
        self.columns = list(columns)
        self.cols = list(cols)
        if nrows is None:
            nrows = len(self.cols[0]) if self.cols else 0
        self.nrows = nrows
        self._np_cache: Dict[int, Any] = {}

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Sequence[Row]) -> "ColumnBatch":
        if rows:
            cols: List[List[Value]] = [list(values) for values in zip(*rows)]
        else:
            cols = [[] for _ in columns]
        return cls(columns, cols, len(rows))

    def to_rows(self) -> List[Row]:
        if not self.cols or not self.nrows:
            return [()] * self.nrows if not self.cols else []
        return list(zip(*self.cols))

    def __len__(self) -> int:
        return self.nrows

    def rename(self, columns: Sequence[str]) -> "ColumnBatch":
        """Same data under different column names (columns are shared)."""
        renamed = ColumnBatch(columns, self.cols, self.nrows)
        renamed._np_cache = self._np_cache  # same columns, same arrays
        return renamed

    def gather(self, indices: IndexSeq) -> "ColumnBatch":
        """Rows at ``indices`` (with repetition), as a new batch."""
        return ColumnBatch(
            self.columns,
            [gather_column(col, indices) for col in self.cols],
            _index_count(indices),
        )

    def head(self, count: int) -> "ColumnBatch":
        return ColumnBatch(
            self.columns, [col[:count] for col in self.cols],
            min(count, self.nrows),
        )

    # -- numpy views -------------------------------------------------------

    def _raw_array(self, pos: int) -> Any:
        """``np.asarray`` of a column, cached; None if not convertible."""
        np = get_numpy()
        if np is None:
            return None
        cached = self._np_cache.get(pos)
        if cached is not None:
            return None if cached is _NOT_CONVERTIBLE else cached
        try:
            arr = np.asarray(self.cols[pos])
        except (ValueError, OverflowError, TypeError):
            arr = None
        if arr is not None and (arr.ndim != 1 or arr.dtype.kind == "O"):
            arr = None
        self._np_cache[pos] = arr if arr is not None else _NOT_CONVERTIBLE
        return arr

    def int_array(self, pos: int) -> Any:
        """Column as an ``int64`` array, or None.

        Only pure int/bool columns qualify: floats are excluded so the
        encoding can never equate ``2**60`` with ``2.0**60``'s rounding
        neighbours, and NULLs force the object dtype (excluded).
        """
        arr = self._raw_array(pos)
        if arr is None or arr.dtype.kind not in "bi":
            return None
        np = get_numpy()
        return arr.astype(np.int64, copy=False)

    def num_array(self, pos: int) -> Any:
        """Column as a numeric array (int/float/bool), or None."""
        arr = self._raw_array(pos)
        if arr is None or arr.dtype.kind not in "bif":
            return None
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBatch({self.columns}, {self.nrows} rows)"


def _index_count(indices: IndexSeq) -> int:
    size = getattr(indices, "size", None)
    return int(size) if size is not None else len(indices)


def gather_column(col: List[Value], indices: IndexSeq) -> List[Value]:
    """``[col[i] for i in indices]``, vectorized when indices is an array."""
    np = get_numpy()
    if np is not None and isinstance(indices, np.ndarray):
        arr = np.empty(len(col), dtype=object)
        arr[:] = col
        return list(arr[indices])
    return [col[i] for i in indices]


# -- integer key encoding ----------------------------------------------------


def _encode_pair(
    left: ColumnBatch,
    right: ColumnBatch,
    lpos: Sequence[int],
    rpos: Sequence[int],
) -> Optional[Tuple[Any, Any]]:
    """Encode both sides' key columns into comparable int64 code arrays.

    Returns None (→ pure-Python fallback) unless every key column on
    both sides is int64-convertible and the combined key range fits in
    an int64.  Offsets/ranges are computed over the union of both
    sides, so equal tuples — and only equal tuples — get equal codes.
    """
    np = get_numpy()
    if np is None or not left.nrows or not right.nrows:
        return None
    larrs = [left.int_array(pos) for pos in lpos]
    rarrs = [right.int_array(pos) for pos in rpos]
    if any(a is None for a in larrs) or any(a is None for a in rarrs):
        return None
    lcode = np.zeros(left.nrows, dtype=np.int64)
    rcode = np.zeros(right.nrows, dtype=np.int64)
    total = 1
    for la, ra in zip(larrs, rarrs):
        low = min(int(la.min()), int(ra.min()))
        high = max(int(la.max()), int(ra.max()))
        span = high - low + 1
        total *= span
        if total > _MAX_CODE_RANGE:
            return None
        lcode = lcode * span + (la - low)
        rcode = rcode * span + (ra - low)
    return lcode, rcode


def _encode_one(batch: ColumnBatch, positions: Sequence[int]) -> Any:
    """Encode one side's key columns into an int64 code array, or None."""
    np = get_numpy()
    if np is None or not batch.nrows:
        return None
    arrays = [batch.int_array(pos) for pos in positions]
    if any(a is None for a in arrays):
        return None
    code = np.zeros(batch.nrows, dtype=np.int64)
    total = 1
    for arr in arrays:
        low = int(arr.min())
        span = int(arr.max()) - low + 1
        total *= span
        if total > _MAX_CODE_RANGE:
            return None
        code = code * span + (arr - low)
    return code


# -- join kernels ------------------------------------------------------------


def join_indices(
    left: ColumnBatch,
    right: ColumnBatch,
    lpos: Sequence[int],
    rpos: Sequence[int],
) -> Tuple[IndexSeq, IndexSeq, int, int]:
    """Matching (left_idx, right_idx) pairs of an equi-join.

    Returns ``(left_idx, right_idx, built, probed)`` where the clock
    charges mirror the row engine: the smaller input (ties: left) is
    the build side.  Pair order is exactly the row engine's — probe
    rows in input order, matches within a key in build-input order —
    so downstream operators see identical row streams.  NULL keys
    never match.
    """
    build_left = left.nrows <= right.nrows
    if build_left:
        build, probe = left, right
        bpos, ppos = lpos, rpos
    else:
        build, probe = right, left
        bpos, ppos = rpos, lpos

    pair = _encode_pair(build, probe, bpos, ppos)
    if pair is not None:
        build_idx, probe_idx = _np_join(pair[0], pair[1])
    else:
        build_idx, probe_idx = _dict_join(build, probe, bpos, ppos)
    if build_left:
        return build_idx, probe_idx, build.nrows, probe.nrows
    return probe_idx, build_idx, build.nrows, probe.nrows


def _np_join(bcode: Any, pcode: Any) -> Tuple[Any, Any]:
    np = get_numpy()
    order = np.argsort(bcode, kind="stable")
    sorted_codes = bcode[order]
    lo = np.searchsorted(sorted_codes, pcode, side="left")
    hi = np.searchsorted(sorted_codes, pcode, side="right")
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(pcode.size), counts)
    cum = np.cumsum(counts)
    # position within each probe row's run of matches
    intra = np.arange(total) - np.repeat(cum - counts, counts)
    build_idx = order[np.repeat(lo, counts) + intra]
    return build_idx, probe_idx


def _dict_join(
    build: ColumnBatch,
    probe: ColumnBatch,
    bpos: Sequence[int],
    ppos: Sequence[int],
) -> Tuple[List[int], List[int]]:
    table: Dict[Tuple[Value, ...], List[int]] = defaultdict(list)
    for i, key in enumerate(zip(*[build.cols[pos] for pos in bpos])):
        if None in key:
            continue  # SQL semantics: NULL keys never join
        table[key].append(i)
    build_idx: List[int] = []
    probe_idx: List[int] = []
    for j, key in enumerate(zip(*[probe.cols[pos] for pos in ppos])):
        matches = table.get(key)
        if not matches:
            continue
        build_idx.extend(matches)
        probe_idx.extend([j] * len(matches))
    return build_idx, probe_idx


def anti_join_indices(
    left: ColumnBatch,
    right: ColumnBatch,
    lpos: Sequence[int],
    rpos: Sequence[int],
) -> IndexSeq:
    """Indices of left rows with no key match on the right.

    Matches the row engine's set semantics exactly: *every* right key
    tuple (including NULL-bearing ones) enters the existing-set, and a
    left row survives iff its tuple is absent.
    """
    np = get_numpy()
    if not left.nrows:
        return []
    if not right.nrows:
        return np.arange(left.nrows) if np is not None else list(range(left.nrows))
    pair = _encode_pair(left, right, lpos, rpos)
    if pair is not None:
        lcode, rcode = pair
        kept = ~np.isin(lcode, rcode)
        return np.nonzero(kept)[0]
    existing = set(zip(*[right.cols[pos] for pos in rpos]))
    return [
        i
        for i, key in enumerate(zip(*[left.cols[pos] for pos in lpos]))
        if key not in existing
    ]


# -- distinct / grouping -----------------------------------------------------


def distinct_indices(batch: ColumnBatch) -> IndexSeq:
    """Indices of the first occurrence of each distinct row, in input
    order (first writer wins, as in the row engine's set-based dedup)."""
    if not batch.nrows:
        return []
    code = _encode_one(batch, range(len(batch.cols)))
    if code is not None:
        np = get_numpy()
        _, first = np.unique(code, return_index=True)
        return np.sort(first)
    seen: set = set()
    kept: List[int] = []
    for i, row in enumerate(zip(*batch.cols)):
        if row not in seen:
            seen.add(row)
            kept.append(i)
    return kept


def group_indices(
    batch: ColumnBatch, group_pos: Sequence[int]
) -> "Dict[Tuple[Value, ...], List[int]]":
    """Row indices per group key, keys in first-occurrence order
    (matching the row engine's dict-insertion iteration order)."""
    groups: Dict[Tuple[Value, ...], List[int]] = defaultdict(list)
    if not group_pos:
        groups[()] = list(range(batch.nrows))
        if not batch.nrows:
            groups[()] = []
        return groups
    for i, key in enumerate(zip(*[batch.cols[pos] for pos in group_pos])):
        groups[key].append(i)
    return dict(groups)


def aggregate_column(
    func: str, col: Optional[List[Value]], indices: Sequence[int]
) -> Value:
    """One aggregate over one group, columnar form of executor._aggregate."""
    if func == "count":
        if col is None:
            return len(indices)
        return sum(1 for i in indices if col[i] is not None)
    if col is None:
        raise ExecutionError(f"aggregate {func!r} requires a column")
    values = [col[i] for i in indices if col[i] is not None]
    if func == "count_distinct":
        return len(set(values))
    if not values:
        return None
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "sum":
        return sum(values)
    raise ExecutionError(f"unknown aggregate {func!r}")


# -- sort --------------------------------------------------------------------


def null_first_sort_key(pos: int, descending: bool) -> Callable[[Row], Tuple[bool, Value]]:
    """Per-key sort key pinning NULLS FIRST in *both* directions.

    Ascending sorts on ``(value is not None, value)`` unreversed;
    descending sorts on ``(value is None, value)`` reversed — either
    way every NULL lands before every non-NULL.
    """
    if descending:
        return lambda row: (row[pos] is None, row[pos])
    return lambda row: (row[pos] is not None, row[pos])


def sort_indices(
    batch: ColumnBatch, keys: Sequence[Tuple[int, bool]]
) -> IndexSeq:
    """Stable multi-key sort permutation, NULLS FIRST both directions."""
    np = get_numpy()
    if np is not None:
        perm = _np_sort(batch, keys)
        if perm is not None:
            return perm
    indices = list(range(batch.nrows))
    cols = batch.cols
    for pos, descending in reversed(list(keys)):
        col = cols[pos]
        if descending:
            indices.sort(key=lambda i: (col[i] is None, col[i]), reverse=True)
        else:
            indices.sort(key=lambda i: (col[i] is not None, col[i]))
    return indices


def _np_sort(batch: ColumnBatch, keys: Sequence[Tuple[int, bool]]) -> Any:
    """Int-only numpy sort path (no NULLs possible), or None."""
    np = get_numpy()
    arrays = []
    for pos, descending in keys:
        arr = batch.int_array(pos)
        if arr is None:
            return None
        if descending and arr.size and int(arr.min()) == -(2 ** 63):
            return None  # negation would overflow
        arrays.append((arr, descending))
    indices = np.arange(batch.nrows)
    for arr, descending in reversed(arrays):
        key = arr[indices]
        order = np.argsort(-key if descending else key, kind="stable")
        indices = indices[order]
    return indices


# -- vectorized predicates ---------------------------------------------------


def predicate_mask(expr: Expr, batch: ColumnBatch) -> Any:
    """A boolean selection array for ``expr`` over ``batch``, or None.

    Only shapes whose NULL semantics are provably identical to the
    bound-row evaluator vectorize: comparisons between numeric columns
    and numeric columns/constants (numeric dtypes cannot hold NULLs;
    IEEE NaN comparisons agree elementwise with Python's), IS [NOT]
    NULL over numeric columns, and AND/OR/NOT over vectorizable
    operands.  Anything else returns None and the caller falls back to
    the row loop.
    """
    np = get_numpy()
    if np is None or not batch.nrows:
        return None
    return _mask(expr, batch)


def _operand_array(expr: Expr, batch: ColumnBatch) -> Any:
    np = get_numpy()
    if isinstance(expr, Col):
        from .expr import resolve_column

        try:
            pos = resolve_column(expr.name, batch.columns)
        except Exception:
            return None
        return batch.num_array(pos)
    if isinstance(expr, Const) and isinstance(expr.value, (int, float, bool)):
        return np.asarray(expr.value)
    return None


def _mask(expr: Expr, batch: ColumnBatch) -> Any:
    np = get_numpy()
    if isinstance(expr, Compare):
        left = _operand_array(expr.left, batch)
        right = _operand_array(expr.right, batch)
        if left is None or right is None:
            return None
        if left.ndim == 0 and right.ndim == 0:
            return None  # const-vs-const: leave to the row path
        with np.errstate(invalid="ignore"):
            if expr.op == "=":
                result = left == right
            elif expr.op == "<>":
                result = left != right
            elif expr.op == "<":
                result = left < right
            elif expr.op == "<=":
                result = left <= right
            elif expr.op == ">":
                result = left > right
            else:
                result = left >= right
        return result
    if isinstance(expr, IsNull):
        if not isinstance(expr.operand, Col):
            return None
        operand = _operand_array(expr.operand, batch)
        if operand is None:
            return None  # column may hold NULLs: row path decides
        # numeric dtype → no NULLs in the column
        value = bool(expr.negated)
        return np.full(batch.nrows, value, dtype=bool)
    if isinstance(expr, And):
        masks = [_mask(op, batch) for op in expr.operands]
        if any(m is None for m in masks):
            return None
        combined = masks[0]
        for m in masks[1:]:
            combined = combined & m
        return combined
    if isinstance(expr, Or):
        masks = [_mask(op, batch) for op in expr.operands]
        if any(m is None for m in masks):
            return None
        combined = masks[0]
        for m in masks[1:]:
            combined = combined | m
        return combined
    if isinstance(expr, Not):
        inner = _mask(expr.operand, batch)
        return None if inner is None else ~inner
    return None


def filter_batch_indices(
    predicate: Expr,
    bound: Callable[[Row], Value],
    batch: ColumnBatch,
) -> IndexSeq:
    """Indices of rows satisfying ``predicate`` (vectorized if possible)."""
    mask = predicate_mask(predicate, batch)
    if mask is not None:
        np = get_numpy()
        return np.nonzero(mask)[0]
    return [i for i, row in enumerate(zip(*batch.cols)) if bound(row)]


# -- row-list wrappers (shared with repro.mpp.rowops) ------------------------
#
# The MPP segment executor works on per-segment row lists.  These
# wrappers convert rows → columns, run the columnar kernel, and convert
# back, charging the clock exactly like the row loops they replace.


def _anon(width: int) -> List[str]:
    return [f"c{i}" for i in range(width)]


def _batch_of(rows: Sequence[Row], width: int) -> ColumnBatch:
    return ColumnBatch.from_rows(_anon(width), rows)


def _width_of(rows: Sequence[Row], positions: Sequence[int]) -> int:
    if rows:
        return len(rows[0])
    return (max(positions) + 1) if positions else 0


def join_rows(
    left_rows: List[Row],
    right_rows: List[Row],
    lpos: List[int],
    rpos: List[int],
    residual: Optional[Callable[[Row], bool]],
    clock: Any,
) -> List[Row]:
    """Columnar twin of :func:`repro.mpp.rowops.hash_join_rows`."""
    left = _batch_of(left_rows, _width_of(left_rows, lpos))
    right = _batch_of(right_rows, _width_of(right_rows, rpos))
    lidx, ridx, built, probed = join_indices(left, right, lpos, rpos)
    out_cols = [gather_column(col, lidx) for col in left.cols]
    out_cols += [gather_column(col, ridx) for col in right.cols]
    out = list(zip(*out_cols)) if out_cols else []
    clock.rows_built += built
    clock.rows_probed += probed
    clock.rows_output += len(out)
    if residual is not None:
        out = [row for row in out if residual(row)]
    return out


def anti_join_rows(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    lpos: Sequence[int],
    rpos: Sequence[int],
    clock: Any,
) -> List[Row]:
    """Columnar twin of :func:`repro.mpp.rowops.anti_join_rows`."""
    left = _batch_of(left_rows, _width_of(left_rows, lpos))
    right = _batch_of(right_rows, _width_of(right_rows, rpos))
    kept_idx = anti_join_indices(left, right, lpos, rpos)
    kept = left.gather(kept_idx).to_rows()
    clock.rows_built += len(right_rows)
    clock.rows_probed += len(left_rows)
    clock.rows_output += len(kept)
    return kept


def distinct_rows(rows: Sequence[Row], clock: Any) -> List[Row]:
    """Columnar twin of :func:`repro.mpp.rowops.distinct_rows`."""
    batch = _batch_of(rows, len(rows[0]) if rows else 0)
    deduped = batch.gather(distinct_indices(batch)).to_rows()
    clock.rows_probed += len(rows)
    clock.rows_output += len(deduped)
    return deduped


def sort_rows(
    rows: Sequence[Row],
    positions: Sequence[Tuple[int, bool]],
    clock: Any,
) -> List[Row]:
    """Columnar twin of :func:`repro.mpp.rowops.sort_rows`."""
    width = len(rows[0]) if rows else 0
    batch = _batch_of(rows, width)
    ordered = batch.gather(sort_indices(batch, positions)).to_rows()
    clock.rows_probed += len(ordered)
    clock.rows_output += len(ordered)
    return ordered


def filter_rows(
    rows: Sequence[Row],
    predicate: Callable[[Row], bool],
    clock: Any,
) -> List[Row]:
    """Columnar twin of :func:`repro.mpp.rowops.filter_rows`.

    The MPP path only ships a bound predicate (no expression tree), so
    this cannot vectorize the predicate itself — it exists so the
    engine switch covers every rowop uniformly.
    """
    kept = [row for row in rows if predicate(row)]
    clock.rows_probed += len(rows)
    clock.rows_output += len(kept)
    return kept
