"""Rule cleaning (Section 5.3).

"We perform rule cleaning by ranking the rules by their statistical
significance and taking the top θ rules (θ ∈ [0, 1])."

The score is the rule learner's confidence (Sherlock's statistical
significance), carried on :attr:`HornClause.score`; as the paper notes,
it does not always reflect real rule quality, so cleaning trades recall
for precision.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ClauseError, HornClause, KnowledgeBase, classify_clause


def clean_rules(rules: Sequence[HornClause], theta: float) -> List[HornClause]:
    """Keep the top-θ fraction of rules by score (θ=1 keeps all).

    Ties are broken deterministically by the rule's textual form so the
    pipeline is reproducible.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    ranked = sorted(rules, key=lambda rule: (-rule.score, str(rule)))
    keep = max(1, math.ceil(theta * len(ranked))) if ranked else 0
    return ranked[:keep]


def merge_duplicate_rules(rules: Sequence[HornClause]) -> List[HornClause]:
    """Collapse structurally equivalent rules (Definition 6) into one.

    The relational load keeps only the first rule per identifier tuple
    (Proposition 1 requires the M_i duplicate-free), silently dropping
    the other copies' weights — the analyzer flags this as PKB008.  This
    opt-in pre-pass merges instead of dropping: the surviving rule's
    weight is the sum of the copies' weights (MLN semantics — weights of
    identical formulas add) and its score the maximum.  Rules outside
    the six partition shapes pass through unchanged, in order.
    """
    merged: List[HornClause] = []
    position: Dict[Tuple, int] = {}
    for rule in rules:
        try:
            classified = classify_clause(rule)
        except ClauseError:
            merged.append(rule)
            continue
        key = (classified.partition, classified.relations, classified.classes)
        at = position.get(key)
        if at is None:
            position[key] = len(merged)
            merged.append(rule)
        else:
            kept = merged[at]
            merged[at] = replace(
                kept,
                weight=kept.weight + rule.weight,
                score=max(kept.score, rule.score),
            )
    return merged


def cleaned_kb(kb: KnowledgeBase, theta: float) -> KnowledgeBase:
    """A copy of the KB with only the top-θ rules."""
    return KnowledgeBase(
        classes=kb.classes,
        relations=kb.relations.values(),
        facts=kb.facts,
        rules=clean_rules(kb.rules, theta),
        constraints=kb.constraints,
        validate=False,
    )


def cleaning_report(
    rules: Sequence[HornClause],
    theta: float,
    rule_is_correct: Optional[Dict[HornClause, bool]] = None,
) -> Dict[str, float]:
    """How well score-based cleaning separates correct from wrong rules.

    With ground-truth labels available (the generator provides them),
    reports the precision/recall of the kept rule set — quantifying the
    paper's observation that "the learned scores do not always reflect
    the real quality of the rules"."""
    kept = clean_rules(rules, theta)
    report: Dict[str, float] = {
        "total": len(rules),
        "kept": len(kept),
        "theta": theta,
    }
    if rule_is_correct is not None:
        kept_correct = sum(1 for rule in kept if rule_is_correct.get(rule, False))
        all_correct = sum(1 for rule in rules if rule_is_correct.get(rule, False))
        report["kept_correct"] = kept_correct
        report["rule_precision"] = kept_correct / len(kept) if kept else 0.0
        report["rule_recall"] = kept_correct / all_correct if all_correct else 0.0
    return report
