"""Dataset-level constraint application.

Section 6.1.1 runs Query 3 once *before* the performance case study and
then grounds without further quality control ("We run Query 3 once
before inference starts...  This results in a KB with 396K facts").
:func:`precleaned_kb` materializes that cleaned KB so every system under
comparison starts from identical facts.
"""

from __future__ import annotations

from ..core import GroundingConfig, KnowledgeBase, ProbKB


def precleaned_kb(kb: KnowledgeBase) -> KnowledgeBase:
    """The KB after one up-front application of its semantic constraints."""
    if not kb.constraints:
        return kb
    system = ProbKB(kb, grounding=GroundingConfig(apply_constraints=False))
    system.apply_constraints()
    return KnowledgeBase(
        classes=kb.classes,
        relations=kb.relations.values(),
        facts=system.all_facts(),
        rules=kb.rules,
        constraints=kb.constraints,
        validate=False,
    )
